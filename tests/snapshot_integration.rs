//! Cross-crate integration: the snapshot layer (related-work system)
//! through the `twostep` facade, exercised together with the foundation
//! types the rest of the workspace uses.
//!
//! These tests pin the public API surface a downstream user sees:
//! `twostep::snapshot::*` over `twostep::model::ProcessId`, with the
//! events kernel's delay models, and the paper-facing analogy (marker
//! cost = commit cost) stated as an executable assertion.

use twostep::model::{ProcessId, SystemConfig};
use twostep::prelude::*;
use twostep::snapshot::{
    collect, collect_instance, run_snapshot, tokens_in_cut, verify_flow, BankApp, Repeat,
    SnapshotSetup, TokenRing,
};
use twostep_events::DelayModel;

/// The §1 analogy, as numbers: one snapshot instance costs exactly the
/// synchronization messages a failure-free CRW round costs — `n-1`
/// one-bit sends per emitting process (markers there, commits here).
#[test]
fn marker_cost_equals_commit_cost_per_emitter() {
    let n = 7;

    // CRW failure-free: the single coordinator emits n-1 commits.
    let config = SystemConfig::new(n, 2).unwrap();
    let schedule = CrashSchedule::none(n);
    let proposals: Vec<u64> = (0..n as u64).collect();
    let report = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();
    let commits = report.metrics.control_messages;

    // Snapshot: every process emits n-1 markers once the wave reaches it.
    let run = run_snapshot(
        BankApp::cluster_until(n, 100, 1, 0),
        DelayModel::Fixed(10),
        SnapshotSetup::default(),
    );
    let per_emitter: Vec<u64> = run.wrappers.iter().map(|w| w.markers_sent()).collect();

    assert_eq!(commits, (n - 1) as u64, "one commit wave");
    assert!(
        per_emitter.iter().all(|&m| m == (n - 1) as u64),
        "one marker wave per process: {per_emitter:?}"
    );
}

/// Consensus and snapshots composed: agree on a config value with CRW,
/// apply it as bank balances, then certify the deployment with a cut.
#[test]
fn consensus_then_snapshot_pipeline() {
    let n = 5;
    let config = SystemConfig::new(n, 2).unwrap();
    let schedule = CrashSchedule::none(n);
    let proposals: Vec<u64> = vec![640, 480, 800, 600, 1024];
    let report = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();
    let agreed = report.decisions[0].as_ref().unwrap().value;
    assert_eq!(agreed, 640, "first coordinator's proposal wins");

    // Deploy `agreed` as everyone's budget, then audit under traffic.
    let apps = BankApp::cluster(n, agreed, 99);
    let run = run_snapshot(
        apps,
        DelayModel::Uniform {
            min: 5,
            max: 55,
            seed: 21,
        },
        SnapshotSetup {
            initiators: vec![ProcessId::new(2)],
            initiate_at: 650,
            repeat: None,
            horizon: 200_000,
            fifo: true,
        },
    );
    let snap = collect(&run.wrappers).unwrap();
    verify_flow(&snap, &run.wrappers).unwrap();
    assert_eq!(
        snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m),
        n as u64 * agreed,
        "the audited total is exactly the agreed budget times n"
    );
}

/// The facade re-exports are usable end to end for the repeated mode.
#[test]
fn facade_periodic_snapshots_on_token_ring() {
    let run = run_snapshot(
        TokenRing::ring(4, 12, 900),
        DelayModel::Fixed(7),
        SnapshotSetup {
            initiators: vec![ProcessId::new(3)],
            initiate_at: 100,
            repeat: Some(Repeat {
                count: 3,
                every: 50,
            }),
            horizon: 100_000,
            fifo: true,
        },
    );
    assert_eq!(run.instance_count(), 4);
    for k in 0..4 {
        let snap = collect_instance(&run.wrappers, k).unwrap();
        verify_flow(&snap, &run.wrappers).unwrap();
        assert_eq!(tokens_in_cut(&snap), 1, "instance {k}");
    }
}
