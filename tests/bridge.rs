//! Integration tests for the timed/asynchronous comparators: the fast-FD
//! baseline and MR99 satisfy uniform consensus across randomized delay
//! and crash scenarios, and their decision-time/round shapes match the
//! bounds the paper's §2.2 and §4 discussions use.

use twostep::asynch::mr99_processes;
use twostep::baselines::fastfd_processes;
use twostep::events::{DelayModel, FdSpec, TimedCrash, TimedKernel};
use twostep::prelude::*;

const D: u64 = 1000;
const SMALL: u64 = 50;

#[test]
fn fastfd_time_shape_is_d_plus_f_d() {
    let n = 8;
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    for f in 0..=5usize {
        let mut kernel = TimedKernel::new(
            fastfd_processes(n, D, SMALL, &proposals),
            DelayModel::Fixed(D),
        )
        .fd(FdSpec::accurate(SMALL));
        for k in 1..=f {
            kernel = kernel.crash(
                ProcessId::new(k as u32),
                TimedCrash {
                    at: 0,
                    keep_sends: 0,
                },
            );
        }
        let report = kernel.run();
        assert_eq!(
            report.last_decision_time(),
            Some(D + f as u64 * SMALL),
            "f={f}"
        );
        assert_eq!(report.decided_values().len(), 1, "f={f}");
        assert_eq!(
            report.decisions.iter().flatten().count(),
            n - f,
            "all survivors decide (f={f})"
        );
    }
}

#[test]
fn fastfd_uniform_under_partial_broadcasts() {
    let n = 6;
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    for keep in 0..n {
        let report = TimedKernel::new(
            fastfd_processes(n, D, SMALL, &proposals),
            DelayModel::Fixed(D),
        )
        .fd(FdSpec::accurate(SMALL))
        .crash(
            ProcessId::new(1),
            TimedCrash {
                at: 0,
                keep_sends: keep,
            },
        )
        .run();
        let vals = report.decided_values();
        assert_eq!(vals.len(), 1, "keep={keep}: {vals:?}");
        assert_eq!(
            vals[0], 101,
            "p1 is suspected by every deadline, so its value is excluded \
             uniformly regardless of who received it (keep={keep})"
        );
    }
}

#[test]
fn mr99_decides_like_crw_one_coordinator_per_failure() {
    // The §4 structural correspondence: with the first k coordinators
    // dead-on-arrival, both algorithms decide through coordinator k+1.
    let n = 7;
    let t = (n / 2).min(3); // t < n/2 → 3 for n=7
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    for f in 0..=t {
        let mut kernel = TimedKernel::new(mr99_processes(n, 3, &proposals), DelayModel::Fixed(100))
            .fd(FdSpec::accurate(10));
        for k in 1..=f {
            kernel = kernel.crash(
                ProcessId::new(k as u32),
                TimedCrash {
                    at: 0,
                    keep_sends: 0,
                },
            );
        }
        let (report, states) = kernel.run_with_states();
        let vals = report.decided_values();
        assert_eq!(vals.len(), 1, "f={f}");
        assert_eq!(vals[0], 100 + f as u64, "coordinator f+1 imposes its value");
        let max_round = states.iter().filter_map(|s| s.decided_round()).max();
        assert_eq!(max_round, Some(f as u64 + 1), "decides in async round f+1");
    }
}

#[test]
fn mr99_survives_random_asynchrony_with_crashes() {
    let n = 9;
    let t = 4; // < n/2
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    for seed in 0..40u64 {
        let (report, _) = TimedKernel::new(
            mr99_processes(n, t, &proposals),
            DelayModel::Uniform {
                min: 1,
                max: 400,
                seed,
            },
        )
        .fd(FdSpec::accurate(10))
        .crash(
            ProcessId::new(2),
            TimedCrash {
                at: 0,
                keep_sends: 3,
            },
        )
        .crash(
            ProcessId::new(5),
            TimedCrash {
                at: 120,
                keep_sends: 1,
            },
        )
        .run_with_states();
        let vals = report.decided_values();
        assert!(vals.len() <= 1, "seed {seed}: {vals:?}");
        // Correct processes: all except p2 and p5.
        let deciders = report.decisions.iter().flatten().count();
        assert!(deciders >= n - 2, "seed {seed}: {deciders} deciders");
    }
}

#[test]
fn mr99_tolerates_false_suspicions() {
    let n = 5;
    let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    // Everyone falsely suspects p1 immediately; p1 is healthy.
    let mut fd = FdSpec::accurate(10);
    for obs in 2..=n as u32 {
        fd.injected_suspicions
            .push((1, ProcessId::new(obs), ProcessId::new(1)));
    }
    let (report, _) = TimedKernel::new(mr99_processes(n, 2, &proposals), DelayModel::Fixed(100))
        .fd(fd)
        .run_with_states();
    let vals = report.decided_values();
    assert_eq!(vals.len(), 1, "◇S lies are tolerated: {vals:?}");
    assert_eq!(
        report.decisions.iter().flatten().count(),
        n,
        "everyone decides"
    );
}
