//! Property-based verification of the uniform-consensus specification and
//! the round/bit bounds, across all three round-based algorithms, under
//! arbitrary seeded crash schedules.

use proptest::prelude::*;
use twostep::adversary::{random_schedule, random_wide_proposals, RandomScheduleSpec};
use twostep::baselines::{earlystop_processes, floodset_processes};
use twostep::core::check_value_locking;
use twostep::model::theorem2;
use twostep::prelude::*;
use twostep::sim::Simulation;

/// Strategy: a system size, a resilience bound, and a schedule seed.
fn system_strategy() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..=10).prop_flat_map(|n| (Just(n), 0usize..n, any::<u64>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn crw_satisfies_spec_and_theorem1((n, t, seed) in system_strategy()) {
        let config = SystemConfig::new(n, t).unwrap();
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        let proposals: Vec<u64> = (0..n as u64).map(|i| seed.wrapping_add(i * 7919)).collect();

        let report = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();
        prop_assert!(!report.hit_round_cap, "CRW must terminate within n+1 rounds");

        let spec = check_uniform_consensus(
            &proposals,
            &report.decisions,
            &schedule,
            Some(schedule.f() as u32 + 1),
        );
        prop_assert!(spec.ok(), "{}", spec);
    }

    #[test]
    fn earlystop_satisfies_spec_and_bound((n, t, seed) in system_strategy()) {
        let config = SystemConfig::new(n, t).unwrap();
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        let proposals: Vec<u64> = (0..n as u64).map(|i| seed.wrapping_add(i * 104729)).collect();

        let report = Simulation::new(config, ModelKind::Classic, &schedule)
            .max_rounds(t as u32 + 2)
            .run(earlystop_processes(n, t, &proposals))
            .unwrap();
        prop_assert!(!report.hit_round_cap);

        let bound = ((schedule.f() + 2).min(t + 1)) as u32;
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(bound));
        prop_assert!(spec.ok(), "{}", spec);
    }

    #[test]
    fn floodset_satisfies_spec_and_bound((n, t, seed) in system_strategy()) {
        let config = SystemConfig::new(n, t).unwrap();
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        let proposals: Vec<u64> = (0..n as u64).map(|i| seed.wrapping_add(i * 31)).collect();

        let report = Simulation::new(config, ModelKind::Classic, &schedule)
            .max_rounds(t as u32 + 2)
            .run(floodset_processes(n, t, &proposals))
            .unwrap();
        prop_assert!(!report.hit_round_cap);

        let spec = check_uniform_consensus(
            &proposals,
            &report.decisions,
            &schedule,
            Some(t as u32 + 1),
        );
        prop_assert!(spec.ok(), "{}", spec);

        // FloodSet decides the global minimum of the values that survive;
        // failure-free it is exactly the minimum of all proposals.
        if schedule.f() == 0 {
            let min = proposals.iter().min().unwrap();
            for d in report.decisions.iter().flatten() {
                prop_assert_eq!(&d.value, min);
            }
        }
    }

    #[test]
    fn crw_bit_accounting_matches_theorem2_in_clean_runs(
        n in 2usize..=24,
        b in 1u32..=256,
        seed in any::<u64>(),
    ) {
        let config = SystemConfig::max_resilience(n).unwrap();
        let schedule = CrashSchedule::none(n);
        let proposals = random_wide_proposals(n, b, seed);
        let report = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();
        prop_assert_eq!(report.metrics.total_bits(), theorem2::best_case_bits(n, b as u64));
        prop_assert_eq!(report.metrics.total_messages(), theorem2::best_case_messages(n));
    }

    #[test]
    fn lemma2_value_locking_holds_on_random_runs((n, t, seed) in system_strategy()) {
        // The paper's §3.3 proof structure (claims C1/C2 + Lemma 2),
        // checked on the observed execution: the first coordinator that
        // completes line 4 locks its estimate; nobody decides earlier;
        // every decision equals the locked value.
        let config = SystemConfig::new(n, t).unwrap();
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        let proposals: Vec<u64> = (0..n as u64).map(|i| seed ^ (i * 6151)).collect();
        let report = run_crw(&config, &schedule, &proposals, TraceLevel::Full).unwrap();
        let lock = check_value_locking(n, &report);
        prop_assert!(lock.ok(), "{:?}", lock.violations);
    }

    #[test]
    fn commit_delivery_is_always_a_prefix_and_implies_data(
        n in 3usize..=8,
        seed in any::<u64>(),
    ) {
        // Model-level invariant, observed through full traces: the set of
        // delivered commits of any sender in any round is a prefix of its
        // ordered control list, and a delivered commit implies the
        // destination also received the sender's data that round.
        let config = SystemConfig::max_resilience(n).unwrap();
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        let proposals: Vec<u64> = (0..n as u64).collect();
        let report = run_crw(&config, &schedule, &proposals, TraceLevel::Full).unwrap();

        let data: Vec<_> = report.trace.delivered_data().collect();
        for (round, from, to) in report.trace.delivered_control() {
            prop_assert!(
                data.contains(&(round, from, to)),
                "commit without data: {} -> {} in round {}", from, to, round
            );
        }
        // Prefix property: per (round, sender), *transmitted* commits must
        // be a contiguous leading segment of the highest-first order
        // n, n-1, …, r+1.  (Delivered commits can have gaps where the
        // receiver already halted; transmission is what the ordered-send
        // semantics constrains.)
        for r in 1..=n as u32 {
            let round = Round::new(r);
            let coord = ProcessId::new(r);
            let transmitted: Vec<u32> = report
                .trace
                .transmitted_control()
                .filter(|(rr, from, _)| *rr == round && *from == coord)
                .map(|(_, _, to)| to.rank())
                .collect();
            for (k, rank) in transmitted.iter().enumerate() {
                prop_assert_eq!(*rank, n as u32 - k as u32, "prefix broken in round {}", r);
            }
            // And delivery implies transmission.
            for (rr, from, to) in report.trace.delivered_control() {
                if rr == round && from == coord {
                    prop_assert!(transmitted.contains(&to.rank()));
                }
            }
        }
    }
}
