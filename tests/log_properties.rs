//! Property tests for the replicated-log layer: per-slot validity, uniform
//! commits, prefix consistency and budget accounting under random
//! multi-slot crash schedules.

use proptest::prelude::*;
use twostep::adversary::{random_schedule, RandomScheduleSpec};
use twostep::core::ReplicatedLog;
use twostep::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn multi_slot_logs_stay_consistent(
        n in 3usize..=8,
        slots in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let t = n - 1;
        let config = SystemConfig::new(n, t).unwrap();
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(config);

        for slot in 0..slots {
            let proposals: Vec<u64> = (0..n as u64)
                .map(|i| (slot as u64) * 1000 + 100 + i)
                .collect();

            // Draw a fresh-slot schedule within the remaining budget.
            let budget = log.remaining_resilience();
            let sub_config = SystemConfig::new(n, budget).ok();
            let schedule = match (&sub_config, budget) {
                (Some(c), b) if b > 0 => {
                    random_schedule(c, RandomScheduleSpec::uniform(c), seed ^ slot as u64)
                }
                _ => CrashSchedule::none(n),
            };
            // Skip fresh crashes of already-dead processes (they would not
            // count as fresh anyway, but keep the schedule clean).
            let mut clean = CrashSchedule::none(n);
            for pid in config.pids() {
                if let Some(cp) = schedule.crash_point(pid) {
                    if !log.crashed().contains(pid) {
                        clean.set(pid, Some(cp.clone()));
                    }
                }
            }

            let before_committed = log.committed().len();
            let report = log.append(&proposals, &clean);
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    // Only the budget error is acceptable, and only if the
                    // clean schedule really overdrew it.
                    prop_assert!(
                        matches!(e, twostep::core::LogError::ResilienceExhausted { .. }),
                        "unexpected error: {e}"
                    );
                    prop_assert_eq!(log.committed().len(), before_committed,
                        "failed append must not mutate");
                    continue;
                }
            };

            // Per-slot validity: the committed value was proposed this slot.
            prop_assert!(proposals.contains(&report.value));
            // Per-slot uniformity: every decision equals the committed one.
            for d in report.decisions.iter().flatten() {
                prop_assert_eq!(d.value, report.value);
            }
            // Latency bound: f_slot + 1 where f_slot counts every crashed
            // process (carried-over ones occupy silent coordinator rounds).
            let f_total = log.crashed().len();
            prop_assert!(report.rounds <= f_total as u32 + 1);
        }

        prop_assert!(log.check_prefix_consistency());
        prop_assert!(log.crashed().len() <= t);
        // Prefix lengths: correct processes hold the full log.
        for pid in config.pids() {
            if !log.crashed().contains(pid) {
                prop_assert_eq!(log.committed_upto()[pid.idx()], log.committed().len());
            }
        }
    }
}
