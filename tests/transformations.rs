//! End-to-end verification of the §2.2 computability constructions: for
//! random extended-model schedules, running the algorithm natively and
//! through the extended-on-classic block simulation must decide
//! identically, block-aligned — the two models have the same power.

use proptest::prelude::*;
use twostep::adversary::{random_schedule, RandomScheduleSpec};
use twostep::core::{translate_schedule, Crw, ExtendedOnClassic};
use twostep::prelude::*;
use twostep::sim::Simulation;

fn run_both(n: usize, t: usize, seed: u64) -> Result<(), TestCaseError> {
    let config = SystemConfig::new(n, t).unwrap();
    let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
    let proposals: Vec<u64> = (0..n as u64).map(|i| seed ^ (i * 2654435761)).collect();

    let native = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();

    let wrapped: Vec<ExtendedOnClassic<Crw<u64>>> = crw_processes(&config, &proposals)
        .into_iter()
        .map(|p| ExtendedOnClassic::new(p, n))
        .collect();
    let classic_schedule = translate_schedule(&schedule, n);
    let simulated = Simulation::new(config, ModelKind::Classic, &classic_schedule)
        .max_rounds((n as u32 + 1) * n as u32)
        .run(wrapped)
        .unwrap();

    for i in 0..n {
        let nv = native.decisions[i].as_ref().map(|d| d.value);
        let sv = simulated.decisions[i].as_ref().map(|d| d.value);
        prop_assert_eq!(nv, sv, "p{} value differs (seed {})", i + 1, seed);

        if let (Some(nd), Some(sd)) = (&native.decisions[i], &simulated.decisions[i]) {
            let (block_round, _slot) = ExtendedOnClassic::<Crw<u64>>::decompose(sd.round, n);
            prop_assert_eq!(
                block_round,
                nd.round,
                "p{} decision block differs (seed {})",
                i + 1,
                seed
            );
        }
    }

    // The simulated run satisfies the same spec under the original
    // (extended) schedule's correct set.
    let spec = check_uniform_consensus(&proposals, &simulated.decisions, &schedule, None);
    prop_assert!(spec.ok(), "{}", spec);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn extended_on_classic_is_decision_equivalent(
        n in 2usize..=8,
        seed in any::<u64>(),
    ) {
        run_both(n, n - 1, seed)?;
    }

    #[test]
    fn equivalence_holds_at_low_resilience(
        n in 3usize..=8,
        seed in any::<u64>(),
    ) {
        run_both(n, 1, seed)?;
    }
}
