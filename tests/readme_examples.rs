//! The README's code snippets, as compiled tests — so the front-page
//! examples can never rot.

use twostep::prelude::*;

#[test]
fn readme_quickstart() {
    let config = SystemConfig::new(5, 2).unwrap();
    let schedule = CrashSchedule::none(5);
    let proposals = vec![7u64, 3, 9, 1, 5];

    let report = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();
    for d in report.decisions.iter().flatten() {
        assert_eq!(d.value, 7);
        assert_eq!(d.round.get(), 1);
    }

    let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(1));
    assert!(spec.ok());
}

#[test]
fn readme_mid_commit_crash() {
    let config = SystemConfig::new(5, 2).unwrap();
    let schedule = CrashSchedule::none(5).with_crash(
        ProcessId::new(1),
        CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
    );
    let report = run_crw(&config, &schedule, &[7u64, 3, 9, 1, 5], TraceLevel::Off).unwrap();
    assert!(report.decisions.iter().flatten().all(|d| d.value == 7));
    // Highest-rank-first: exactly p5 decided in round 1, the rest at f+1=2.
    assert_eq!(report.decisions[4].as_ref().unwrap().round, Round::new(1));
    assert_eq!(report.decisions[1].as_ref().unwrap().round, Round::new(2));
}

#[test]
fn readme_schedule_text_round_trip() {
    // The CLI schedule format shown in the README/fig1 docs.
    let schedule = parse_schedule(5, "p1@r1:mid-control/2,p3@r2:mid-data{4,5}").unwrap();
    assert_eq!(schedule.f(), 2);
    let text = format_schedule(&schedule);
    assert_eq!(parse_schedule(5, &text).unwrap(), schedule);
}

#[test]
fn readme_replicated_log() {
    let config = SystemConfig::new(4, 1).unwrap();
    let mut log: ReplicatedLog<u64> = ReplicatedLog::new(config);
    log.append(&[11, 12, 13, 14], &CrashSchedule::none(4))
        .unwrap();
    log.append(&[21, 22, 23, 24], &CrashSchedule::none(4))
        .unwrap();
    assert_eq!(log.committed(), &[11, 21]);
    assert!(log.check_prefix_consistency());
}

#[test]
fn readme_lemma_checker() {
    // The §3.3 value-locking analysis exposed through the prelude.
    let config = SystemConfig::new(4, 2).unwrap();
    let schedule = CrashSchedule::none(4);
    let proposals = vec![4u64, 3, 2, 1];
    let report = run_crw(&config, &schedule, &proposals, TraceLevel::Full).unwrap();
    let lock = check_value_locking(4, &report);
    assert!(lock.ok());
    assert_eq!(lock.locking.unwrap().2, 4, "p1 locks its own proposal");
}
