//! Cross-substrate equivalence: the same protocol under the same crash
//! schedule must produce identical decisions on the deterministic
//! simulator and on the threaded lockstep runtime — the model, not the
//! substrate, determines the outcome.

use twostep::adversary::{
    commit_tease_cascade, data_heavy_cascade, decide_then_die_cascade, random_schedule,
    silent_cascade, RandomScheduleSpec,
};
use twostep::prelude::*;
use twostep::runtime::ThreadedRuntime;

fn assert_equivalent(n: usize, t: usize, schedule: &CrashSchedule, tag: &str) {
    let config = SystemConfig::new(n, t).unwrap();
    let proposals: Vec<u64> = (1..=n as u64).map(|i| 900 + i).collect();

    let sim = run_crw(&config, schedule, &proposals, TraceLevel::Off).unwrap();
    let thr = ThreadedRuntime::new(config, schedule)
        .run(crw_processes(&config, &proposals))
        .unwrap();

    for i in 0..n {
        let a = sim.decisions[i].as_ref().map(|d| (d.value, d.round));
        let b = thr.decisions[i].as_ref().map(|d| (d.value, d.round));
        assert_eq!(a, b, "{tag}: p{} differs (sim vs threads)", i + 1);
    }
    assert_eq!(sim.crashed, thr.crashed, "{tag}: crashed sets differ");
    assert_eq!(
        sim.metrics.data_messages, thr.metrics.data_messages,
        "{tag}: data transmission counts differ"
    );
    assert_eq!(
        sim.metrics.control_messages, thr.metrics.control_messages,
        "{tag}: control transmission counts differ"
    );

    let spec = check_uniform_consensus(
        &proposals,
        &thr.decisions,
        schedule,
        Some(schedule.f() as u32 + 1),
    );
    assert!(spec.ok(), "{tag}: {spec}");
}

#[test]
fn failure_free_runs_match() {
    for n in [2usize, 3, 5, 8, 12] {
        let schedule = CrashSchedule::none(n);
        assert_equivalent(n, n - 1, &schedule, &format!("n={n} clean"));
    }
}

#[test]
fn silent_cascades_match() {
    for f in 0..=4usize {
        let schedule = silent_cascade(8, f);
        assert_equivalent(8, 7, &schedule, &format!("silent f={f}"));
    }
}

#[test]
fn data_heavy_cascades_match() {
    for f in 0..=4usize {
        let schedule = data_heavy_cascade(8, f);
        assert_equivalent(8, 7, &schedule, &format!("data-heavy f={f}"));
    }
}

#[test]
fn commit_teasing_matches() {
    for prefix in 0..=3usize {
        let schedule = commit_tease_cascade(7, 3, |_| prefix);
        assert_equivalent(7, 6, &schedule, &format!("tease prefix={prefix}"));
    }
}

#[test]
fn decide_then_die_matches() {
    let schedule = decide_then_die_cascade(6, 2);
    assert_equivalent(6, 5, &schedule, "decide-then-die");
}

#[test]
fn random_schedules_match() {
    let config = SystemConfig::new(7, 4).unwrap();
    for seed in 0..200u64 {
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        assert_equivalent(7, 4, &schedule, &format!("random seed={seed}"));
    }
}
