#!/usr/bin/env bash
# CI entry point: build, test, lint, format check.
#
# Usage: ./ci.sh [--quick]
#   --quick   lighter property-test load (PROPTEST_CASES=32) for smoke runs
#
# Knobs respected by the test suite:
#   TWOSTEP_THREADS       worker count for sweeps + the parallel explorer
#   PROPTEST_CASES        per-test case count for property tests
#   CRITERION_SAMPLES     samples per benchmark (criterion benches are not
#                         run here; the quick explorer bench below is)
#   TWOSTEP_BENCH_N/T     (n, t) for the explorer bench (raise toward (7, 6)
#                         as runners allow)
#   TWOSTEP_DONATE_DEPTH  donation cutoff for the bench's "donate" row
#   TWOSTEP_BENCH_SKIP_GATE=1  skip the serial states/sec regression gate
#                         (escape hatch for slow or heavily shared runners)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--quick" ]]; then
    export PROPTEST_CASES="${PROPTEST_CASES:-32}"
fi

echo "== cargo build --release"
cargo build --release --workspace --all-targets

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== explorer bench (quick) -> BENCH_explorer.json (+ BENCH_history.jsonl)"
# The perf gate below compares the fresh serial states/sec against the
# **committed** baseline (git HEAD, not the working tree — the bench
# overwrites the working-tree file, so reading it back would silently
# rebaseline every rerun onto the previous local result).  Fall back to
# the working-tree copy only when git can't produce one (shallow tools,
# first commit).
baseline_json="$(git show HEAD:BENCH_explorer.json 2>/dev/null || true)"
if [[ -z "$baseline_json" && -f BENCH_explorer.json ]]; then
    baseline_json="$(cat BENCH_explorer.json)"
fi
baseline_serial=""
baseline_n=""
baseline_t=""
baseline_file_present=0
baseline_symmetry=""
baseline_symmetry_raw=""
baseline_serial_seconds=""
if [[ -n "$baseline_json" ]]; then
    baseline_file_present=1
    baseline_serial="$(sed -n 's/.*"engine": "serial".*"states_per_sec": \([0-9.]*\).*/\1/p' <<<"$baseline_json" | head -1)"
    baseline_serial_seconds="$(sed -n 's/.*"engine": "serial".*"best_seconds": \([0-9.]*\).*/\1/p' <<<"$baseline_json" | head -1)"
    baseline_symmetry="$(sed -n 's/.*"engine": "symmetry".*"states_per_sec": \([0-9.]*\).*/\1/p' <<<"$baseline_json" | head -1)"
    baseline_symmetry_raw="$(sed -n 's/.*"engine": "symmetry".*"raw_states_per_sec": \([0-9.]*\).*/\1/p' <<<"$baseline_json" | head -1)"
    baseline_n="$(sed -n 's/^  "n": \([0-9]*\),$/\1/p' <<<"$baseline_json")"
    baseline_t="$(sed -n 's/^  "t": \([0-9]*\),$/\1/p' <<<"$baseline_json")"
fi
commit_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
cargo run --release -q -p twostep-bench --bin explorer_bench -- --quick \
    --history BENCH_history.jsonl --commit "$commit_sha"
cat BENCH_explorer.json

echo "== symmetry row: both modes ran, verdicts identical"
# The bench runs the pinned system with symmetry off (the baseline
# rows) and at the strongest sound tier (the `symmetry` row,
# partial+value for CRW) and asserts the verdict summaries are equal
# in-process; the marker it writes is the committed witness of that
# assertion, so its absence means the symmetry row silently
# disappeared.
grep '"engine": "symmetry"' BENCH_explorer.json >/dev/null \
    || { echo "FAIL: BENCH_explorer.json is missing the symmetry row" >&2; exit 1; }
grep '"verdicts_identical": true' BENCH_explorer.json >/dev/null \
    || { echo "FAIL: symmetry row lost its verdict-equality witness" >&2; exit 1; }
sed -n 's/.*"symmetry": {\("mode[^}]*\)}.*/symmetry OK: \1/p' BENCH_explorer.json

echo "== perf smoke-gate (serial states/sec vs committed baseline)"
new_serial="$(sed -n 's/.*"engine": "serial".*"states_per_sec": \([0-9.]*\).*/\1/p' BENCH_explorer.json | head -1)"
new_n="$(sed -n 's/^  "n": \([0-9]*\),$/\1/p' BENCH_explorer.json)"
new_t="$(sed -n 's/^  "t": \([0-9]*\),$/\1/p' BENCH_explorer.json)"
if [[ "${TWOSTEP_BENCH_SKIP_GATE:-0}" == "1" ]]; then
    echo "perf gate skipped (TWOSTEP_BENCH_SKIP_GATE=1): serial=$new_serial states/sec"
elif [[ "$baseline_file_present" == "0" ]]; then
    echo "perf gate: no committed baseline to compare against (first run); serial=$new_serial states/sec"
elif [[ -z "$baseline_serial" || -z "$new_serial" ]]; then
    # A baseline file that exists but cannot be parsed must fail, not
    # silently disarm the gate forever after a format change.
    echo "FAIL: perf gate could not parse a serial states/sec value" >&2
    echo "      (baseline='$baseline_serial', current='$new_serial') — update the sed extraction in ci.sh alongside the bench JSON format." >&2
    exit 1
elif [[ "$baseline_n" != "$new_n" || "$baseline_t" != "$new_t" ]]; then
    echo "perf gate: baseline is ($baseline_n, $baseline_t), this run is ($new_n, $new_t) — not comparable; serial=$new_serial states/sec"
else
    awk -v new="$new_serial" -v base="$baseline_serial" 'BEGIN {
        floor = 0.7 * base;
        if (new < floor) {
            printf "FAIL: serial throughput regressed >30%%: %.1f states/sec vs committed baseline %.1f (floor %.1f).\n", new, base, floor;
            printf "      Investigate before committing, or rerun with TWOSTEP_BENCH_SKIP_GATE=1 on a known-slow runner.\n";
            exit 1;
        }
        printf "perf gate OK: %.1f states/sec vs baseline %.1f (floor %.1f)\n", new, base, floor;
    }' >&2 || exit 1
fi

echo "== perf gate (stepped driver within 10% of the owned-loop serial walk, same run)"
# Both rows come from the same bench invocation (same machine state,
# best-of-N), so this is a same-run overhead bound on the frame-stepped
# core — one step() call plus one arbiter inspection per configuration —
# not a cross-commit trend gate.
new_stepped="$(sed -n 's/.*"engine": "stepped".*"states_per_sec": \([0-9.]*\).*/\1/p' BENCH_explorer.json | head -1)"
if [[ -z "$new_stepped" ]]; then
    echo "FAIL: BENCH_explorer.json is missing the stepped row" >&2
    exit 1
elif [[ "${TWOSTEP_BENCH_SKIP_GATE:-0}" == "1" ]]; then
    echo "stepped gate skipped (TWOSTEP_BENCH_SKIP_GATE=1): stepped=$new_stepped states/sec"
else
    awk -v stepped="$new_stepped" -v serial="$new_serial" 'BEGIN {
        floor = 0.9 * serial;
        if (stepped < floor) {
            printf "FAIL: frame-stepped driver overhead exceeds 10%%: %.1f states/sec vs serial %.1f (floor %.1f).\n", stepped, serial, floor;
            exit 1;
        }
        printf "stepped gate OK: %.1f states/sec vs serial %.1f (floor %.1f)\n", stepped, serial, floor;
    }' >&2 || exit 1
fi

echo "== perf smoke-gate (symmetry raw states/sec vs committed baseline)"
# Orbit-count throughput is only comparable between runs at the *same*
# canonicalization strength, and the strength has been deepened across
# releases (full -> partial+value).  The trend gate therefore compares
# the raw-equivalent figure — raw states stood in for per second —
# which is mode-independent; it is armed only once a committed baseline
# carries `raw_states_per_sec` (older baselines predate the field, and
# their orbit figure is not comparable).
new_symmetry="$(sed -n 's/.*"engine": "symmetry".*"states_per_sec": \([0-9.]*\).*/\1/p' BENCH_explorer.json | head -1)"
new_symmetry_raw="$(sed -n 's/.*"engine": "symmetry".*"raw_states_per_sec": \([0-9.]*\).*/\1/p' BENCH_explorer.json | head -1)"
if [[ "${TWOSTEP_BENCH_SKIP_GATE:-0}" == "1" ]]; then
    echo "symmetry gate skipped (TWOSTEP_BENCH_SKIP_GATE=1): symmetry=$new_symmetry_raw raw states/sec"
elif [[ -z "$new_symmetry_raw" ]]; then
    echo "FAIL: BENCH_explorer.json symmetry row is missing raw_states_per_sec" >&2
    exit 1
elif [[ -z "$baseline_symmetry_raw" ]]; then
    echo "symmetry gate: committed baseline has no raw_states_per_sec yet (pre-partial format); symmetry=$new_symmetry_raw raw states/sec"
elif [[ "$baseline_n" != "$new_n" || "$baseline_t" != "$new_t" ]]; then
    echo "symmetry gate: baseline is ($baseline_n, $baseline_t), this run is ($new_n, $new_t) — not comparable"
else
    awk -v new="$new_symmetry_raw" -v base="$baseline_symmetry_raw" 'BEGIN {
        floor = 0.7 * base;
        if (new < floor) {
            printf "FAIL: symmetry raw-equivalent throughput regressed >30%%: %.1f raw states/sec vs committed baseline %.1f (floor %.1f).\n", new, base, floor;
            exit 1;
        }
        printf "symmetry gate OK: %.1f raw states/sec vs baseline %.1f (floor %.1f)\n", new, base, floor;
    }' >&2 || exit 1
fi

echo "== perf gate (symmetry wall clock beats the committed serial row)"
# The point of the quotient is to *win on wall clock*, not only on
# state counts: one full symmetry-reduced exploration of the pinned
# system must finish faster than the committed serial row's best time.
# Comparing against the committed (not same-run) serial figure keeps
# the bar absolute across commits; the usual skip knob covers slow
# shared runners.
new_symmetry_seconds="$(sed -n 's/.*"engine": "symmetry".*"best_seconds": \([0-9.]*\).*/\1/p' BENCH_explorer.json | head -1)"
if [[ "${TWOSTEP_BENCH_SKIP_GATE:-0}" == "1" ]]; then
    echo "symmetry wall-clock gate skipped (TWOSTEP_BENCH_SKIP_GATE=1): symmetry=$new_symmetry_seconds s"
elif [[ "$baseline_file_present" == "0" ]]; then
    echo "symmetry wall-clock gate: no committed baseline to compare against (first run); symmetry=$new_symmetry_seconds s"
elif [[ -z "$baseline_serial_seconds" || -z "$new_symmetry_seconds" ]]; then
    echo "FAIL: symmetry wall-clock gate could not parse best_seconds" >&2
    echo "      (baseline serial='$baseline_serial_seconds', current symmetry='$new_symmetry_seconds') — update the sed extraction in ci.sh alongside the bench JSON format." >&2
    exit 1
elif [[ "$baseline_n" != "$new_n" || "$baseline_t" != "$new_t" ]]; then
    echo "symmetry wall-clock gate: baseline is ($baseline_n, $baseline_t), this run is ($new_n, $new_t) — not comparable"
else
    awk -v sym="$new_symmetry_seconds" -v serial="$baseline_serial_seconds" 'BEGIN {
        if (sym > serial) {
            printf "FAIL: symmetry-reduced exploration (%.6f s) is slower than the committed serial row (%.6f s).\n", sym, serial;
            printf "      The quotient must win on wall clock — investigate before committing, or rerun with TWOSTEP_BENCH_SKIP_GATE=1 on a known-slow runner.\n";
            exit 1;
        }
        printf "symmetry wall-clock gate OK: %.6f s vs committed serial %.6f s\n", sym, serial;
    }' >&2 || exit 1
fi

echo "== perf gate (elastic steal engine vs the committed partitioned row)"
# The steal row is the elastic engine with its lazy default policy: on
# the sub-second pinned system it never offloads, so its states/sec is
# the cost of elasticity when idle.  The floor is the *committed*
# partitioned row — elastic-when-idle must never be slower than the
# static fan-out it replaces, or the "costs nothing until needed" pitch
# is broken.
new_steal="$(sed -n 's/.*"engine": "steal".*"states_per_sec": \([0-9.]*\).*/\1/p' BENCH_explorer.json | head -1)"
baseline_partitioned=""
if [[ -n "$baseline_json" ]]; then
    baseline_partitioned="$(sed -n 's/.*"engine": "partitioned".*"states_per_sec": \([0-9.]*\).*/\1/p' <<<"$baseline_json" | head -1)"
fi
if [[ -z "$new_steal" ]]; then
    echo "FAIL: BENCH_explorer.json is missing the steal row" >&2
    exit 1
elif [[ "${TWOSTEP_BENCH_SKIP_GATE:-0}" == "1" ]]; then
    echo "steal gate skipped (TWOSTEP_BENCH_SKIP_GATE=1): steal=$new_steal states/sec"
elif [[ "$baseline_file_present" == "0" ]]; then
    echo "steal gate: no committed baseline to compare against (first run); steal=$new_steal states/sec"
elif [[ -z "$baseline_partitioned" ]]; then
    # The committed baseline has carried a partitioned row for several
    # releases; failing to parse one means the JSON format changed and
    # the gate must not silently disarm.
    echo "FAIL: steal gate could not parse the committed partitioned states/sec" >&2
    echo "      — update the sed extraction in ci.sh alongside the bench JSON format." >&2
    exit 1
elif [[ "$baseline_n" != "$new_n" || "$baseline_t" != "$new_t" ]]; then
    echo "steal gate: baseline is ($baseline_n, $baseline_t), this run is ($new_n, $new_t) — not comparable; steal=$new_steal states/sec"
else
    awk -v steal="$new_steal" -v part="$baseline_partitioned" 'BEGIN {
        if (steal < part) {
            printf "FAIL: elastic steal engine is slower than the committed static partitioned row: %.1f vs %.1f states/sec.\n", steal, part;
            printf "      Idle elasticity must beat the fan-out it replaces — investigate before committing.\n";
            exit 1;
        }
        printf "steal gate OK: %.1f states/sec vs committed partitioned %.1f\n", steal, part;
    }' >&2 || exit 1
fi

echo "== partitioned exploration (2 worker processes, quick, all symmetry strengths)"
dist_off_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- --quick --partitions 2 --symmetry off)"
dist_full_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- --quick --partitions 2 --symmetry full)"
dist_pv_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- --quick --partitions 2 --symmetry partial+value)"
grep '^twostep-dist: result' <<<"$dist_off_out"
grep '^twostep-dist: result' <<<"$dist_full_out"
grep '^twostep-dist: result' <<<"$dist_pv_out"
# Verdict equality across modes: everything except the state count —
# which symmetry exists to shrink — must agree at every strength.
verdict_of() { sed -n 's/^twostep-dist: result .*\(terminals=.*\)$/\1/p' <<<"$1"; }
states_of() { sed -n 's/^twostep-dist: result .* distinct_states=\([0-9]*\) .*/\1/p' <<<"$1"; }
if [[ "$(verdict_of "$dist_off_out")" != "$(verdict_of "$dist_full_out")" ]]; then
    echo "FAIL: symmetry-reduced partitioned verdict differs from the raw one" >&2
    exit 1
fi
if [[ "$(verdict_of "$dist_off_out")" != "$(verdict_of "$dist_pv_out")" ]]; then
    echo "FAIL: partial+value partitioned verdict differs from the raw one" >&2
    exit 1
fi
# The deeper quotient must shrink monotonically:
# distinct(partial+value) <= distinct(full) <= distinct(off).
if (( $(states_of "$dist_full_out") > $(states_of "$dist_off_out") )); then
    echo "FAIL: symmetry reduction must never add states" >&2
    exit 1
fi
if (( $(states_of "$dist_pv_out") > $(states_of "$dist_full_out") )); then
    echo "FAIL: the partial+value quotient must be at least as coarse as full" >&2
    exit 1
fi
echo "symmetry modes agree: $(verdict_of "$dist_off_out") ($(states_of "$dist_off_out") raw -> $(states_of "$dist_full_out") settled -> $(states_of "$dist_pv_out") partial+value orbit states)"

echo "== elastic steal run (forced policy, quick): bit-identical to the classic engine"
# Zero warm-up + any-size frontier forces the full steal machinery over
# real OS worker processes — offload, preempt handshake, frontier
# re-split, seeded relaunch — on the same quick system; the timing-free
# result line must match the classic partitioned run byte for byte.
steal_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --symmetry off \
    --steal --steal-poll-ms 0 --steal-min-frontier 1 --steal-yield-every 64)"
grep '^twostep-dist: steal workers=' <<<"$steal_out"
grep '^twostep-dist: steal workers=.* offloaded=true' <<<"$steal_out" >/dev/null \
    || { echo "FAIL: forced steal policy never offloaded — the elastic path was not exercised" >&2; exit 1; }
steal_result="$(grep '^twostep-dist: result' <<<"$steal_out")"
classic_result="$(grep '^twostep-dist: result' <<<"$dist_off_out")"
echo "steal:   $steal_result"
echo "classic: $classic_result"
if [[ "$steal_result" != "$classic_result" ]]; then
    echo "FAIL: elastic steal report differs from the classic partitioned one" >&2
    exit 1
fi
echo "elastic OK: forced-steal run is bit-identical to the classic engine"

echo "== fault storm (quick): crash + corrupt + hang survive retries, report untouched"
# A survivable chaos plan over the same quick system: partition 0 crashes
# mid-walk on its first launch and hangs on its second (ended by the
# 2-second attempt timeout), partition 1 corrupts its first export
# (caught by the segment checksum).  Both recover within the 3-attempt
# budget, so the timing-free result line must be byte-identical to the
# clean run above and the supervision marker must show zero degraded
# partitions.
storm_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --symmetry off --attempt-timeout-ms 2000 --backoff-ms 1 \
    --fault 'p0a0=crash@walk;p0a1=hang@walk;p1a0=corrupt-export' 2>/dev/null)"
storm_result="$(grep '^twostep-dist: result' <<<"$storm_out")"
clean_result="$(grep '^twostep-dist: result' <<<"$dist_off_out")"
echo "storm: $storm_result"
echo "clean: $clean_result"
if [[ "$storm_result" != "$clean_result" ]]; then
    echo "FAIL: fault-storm report differs from the clean run" >&2
    exit 1
fi
grep '^twostep-dist: supervision degraded=0 ' <<<"$storm_out" >/dev/null \
    || { echo "FAIL: survivable fault storm must not degrade any partition" >&2; exit 1; }
echo "fault storm OK: survivable chaos is report-invisible (degraded=0)"

echo "== fault storm (quick): retry exhaustion degrades to a local walk, report untouched"
# Partition 0 crashes on every one of its 3 launch attempts; the
# coordinator must give up on remote execution, walk that partition
# locally, and still produce the identical report — degradation, not
# failure.
exhaust_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --symmetry off --backoff-ms 1 \
    --fault 'p0a0=crash@walk;p0a1=crash@export;p0a2=crash@seed' 2>/dev/null)"
exhaust_result="$(grep '^twostep-dist: result' <<<"$exhaust_out")"
echo "degraded: $exhaust_result"
echo "clean:    $clean_result"
if [[ "$exhaust_result" != "$clean_result" ]]; then
    echo "FAIL: degraded (locally walked) report differs from the clean run" >&2
    exit 1
fi
grep '^twostep-dist: supervision degraded=1 ' <<<"$exhaust_out" >/dev/null \
    || { echo "FAIL: retry exhaustion must report exactly one degraded partition" >&2; exit 1; }
echo "fault storm OK: retry exhaustion degraded to a local walk (degraded=1), report identical"

echo "== persistent cache: cold-then-warm partitioned exploration (quick)"
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
cold_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --cache-dir "$CACHE_DIR")"
warm_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --cache-dir "$CACHE_DIR")"
cold_result="$(grep '^twostep-dist: result' <<<"$cold_out")"
warm_result="$(grep '^twostep-dist: result' <<<"$warm_out")"
echo "cold: $cold_result"
echo "warm: $warm_result"
if [[ "$cold_result" != "$warm_result" ]]; then
    echo "FAIL: warm cached report differs from cold report" >&2
    exit 1
fi
grep '^twostep-dist: cache cache_hits=0 ' <<<"$cold_out" >/dev/null \
    || { echo "FAIL: cold run must start with zero cache hits" >&2; exit 1; }
distinct="$(sed -n 's/.* distinct_states=\([0-9]*\).*/\1/p' <<<"$warm_result")"
grep "^twostep-dist: cache cache_hits=$distinct fresh_states=0$" <<<"$warm_out" >/dev/null \
    || { echo "FAIL: warm run must be answered entirely by the cache" >&2; exit 1; }
echo "cache OK: warm run reused all $distinct states"

echo "== checkpoint/resume: deadline-interrupted then resumed partitioned run (quick)"
CKPT_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR" "$CKPT_DIR"' EXIT
# An already-hopeless 1ms deadline over the whole pipeline: the run must
# suspend (exit 3) at a phase boundary with a parseable line and a
# resumable artifact, never a hard failure.
set +e
suspended_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --symmetry off --deadline-ms 1 --checkpoint-dir "$CKPT_DIR")"
suspended_code=$?
set -e
if [[ "$suspended_code" != "3" ]]; then
    echo "FAIL: deadline-budgeted run should suspend with exit 3, got $suspended_code" >&2
    echo "$suspended_out" >&2
    exit 1
fi
grep '^twostep-dist: suspended reason=deadline .*checkpoint=' <<<"$suspended_out" >/dev/null \
    || { echo "FAIL: suspended run must print a parseable suspension line" >&2; exit 1; }
[[ -f "$CKPT_DIR/manifest.twockpt" ]] \
    || { echo "FAIL: suspension left no checkpoint manifest in $CKPT_DIR" >&2; exit 1; }
# Resume without a deadline: the composed report must be byte-identical
# to the uninterrupted run of the same system from earlier in this
# script, and the consumed artifact must be gone.
resumed_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --symmetry off --checkpoint-dir "$CKPT_DIR")"
resumed_result="$(grep '^twostep-dist: result' <<<"$resumed_out")"
uninterrupted_result="$(grep '^twostep-dist: result' <<<"$dist_off_out")"
echo "resumed:       $resumed_result"
echo "uninterrupted: $uninterrupted_result"
if [[ "$resumed_result" != "$uninterrupted_result" ]]; then
    echo "FAIL: resumed report differs from the uninterrupted one" >&2
    exit 1
fi
if [[ -f "$CKPT_DIR/manifest.twockpt" ]]; then
    echo "FAIL: successful resume must consume the checkpoint artifact" >&2
    exit 1
fi
echo "checkpoint OK: suspended at reason=deadline, resumed to an identical report"

echo "== allocation probe (plain and stepped drivers pinned to the allocs/state budget)"
cargo run --release -q --example alloc_probe

echo "CI OK"
