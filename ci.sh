#!/usr/bin/env bash
# CI entry point: build, test, lint, format check.
#
# Usage: ./ci.sh [--quick]
#   --quick   lighter property-test load (PROPTEST_CASES=32) for smoke runs
#
# Knobs respected by the test suite:
#   TWOSTEP_THREADS       worker count for sweeps + the parallel explorer
#   PROPTEST_CASES        per-test case count for property tests
#   CRITERION_SAMPLES     samples per benchmark (criterion benches are not
#                         run here; the quick explorer bench below is)
#   TWOSTEP_BENCH_N/T     (n, t) for the explorer bench (raise toward (7, 6)
#                         as runners allow)
#   TWOSTEP_DONATE_DEPTH  donation cutoff for the bench's "donate" row
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--quick" ]]; then
    export PROPTEST_CASES="${PROPTEST_CASES:-32}"
fi

echo "== cargo build --release"
cargo build --release --workspace --all-targets

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== explorer bench (quick) -> BENCH_explorer.json"
cargo run --release -q -p twostep-bench --bin explorer_bench -- --quick
cat BENCH_explorer.json

echo "== partitioned exploration (2 worker processes, quick)"
cargo run --release -q -p twostep-bench --bin twostep-dist -- --quick --partitions 2

echo "== persistent cache: cold-then-warm partitioned exploration (quick)"
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
cold_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --cache-dir "$CACHE_DIR")"
warm_out="$(cargo run --release -q -p twostep-bench --bin twostep-dist -- \
    --quick --partitions 2 --cache-dir "$CACHE_DIR")"
cold_result="$(grep '^twostep-dist: result' <<<"$cold_out")"
warm_result="$(grep '^twostep-dist: result' <<<"$warm_out")"
echo "cold: $cold_result"
echo "warm: $warm_result"
if [[ "$cold_result" != "$warm_result" ]]; then
    echo "FAIL: warm cached report differs from cold report" >&2
    exit 1
fi
grep '^twostep-dist: cache cache_hits=0 ' <<<"$cold_out" >/dev/null \
    || { echo "FAIL: cold run must start with zero cache hits" >&2; exit 1; }
distinct="$(sed -n 's/.* distinct_states=\([0-9]*\).*/\1/p' <<<"$warm_result")"
grep "^twostep-dist: cache cache_hits=$distinct fresh_states=0$" <<<"$warm_out" >/dev/null \
    || { echo "FAIL: warm run must be answered entirely by the cache" >&2; exit 1; }
echo "cache OK: warm run reused all $distinct states"

echo "CI OK"
