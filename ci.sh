#!/usr/bin/env bash
# CI entry point: build, test, lint, format check.
#
# Usage: ./ci.sh [--quick]
#   --quick   lighter property-test load (PROPTEST_CASES=32) for smoke runs
#
# Knobs respected by the test suite:
#   TWOSTEP_THREADS       worker count for sweeps + the parallel explorer
#   PROPTEST_CASES        per-test case count for property tests
#   CRITERION_SAMPLES     samples per benchmark (criterion benches are not
#                         run here; the quick explorer bench below is)
#   TWOSTEP_BENCH_N/T     (n, t) for the explorer bench (raise toward (7, 6)
#                         as runners allow)
#   TWOSTEP_DONATE_DEPTH  donation cutoff for the bench's "donate" row
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--quick" ]]; then
    export PROPTEST_CASES="${PROPTEST_CASES:-32}"
fi

echo "== cargo build --release"
cargo build --release --workspace --all-targets

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== explorer bench (quick) -> BENCH_explorer.json"
cargo run --release -q -p twostep-bench --bin explorer_bench -- --quick
cat BENCH_explorer.json

echo "== partitioned exploration (2 worker processes, quick)"
cargo run --release -q -p twostep-bench --bin twostep-dist -- --quick --partitions 2

echo "CI OK"
