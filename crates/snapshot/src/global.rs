//! Assembling and certifying the global snapshot.
//!
//! A global snapshot is a *cut*: one recorded local state per process plus
//! one recorded message sequence per directed channel.  Chandy–Lamport
//! guarantees the cut is **consistent** — it could have occurred in a
//! legal global state: no message is received before the cut that was
//! sent after it — and that the channel records are exactly the messages
//! in transit across the cut.
//!
//! [`verify_flow`] checks both claims mechanically with a per-channel
//! conservation equation over counters the wrapper maintains live:
//!
//! ```text
//! sent_pre_cut(i → j)  =  recv_pre_cut(i → j)  +  |recorded(i → j)|
//! ```
//!
//! * If a post-cut message overtook the marker (a FIFO violation), the
//!   receiver counted it pre-cut and the right side exceeds the left.
//! * If a pre-cut message escaped the record (marker overtook it), the
//!   right side falls short.
//!
//! So the equation holds iff the cut is consistent *and* the recording is
//! complete — the testable content of the Chandy–Lamport theorem.

use crate::app::LocalApp;
use crate::wrapper::ChandyLamport;
use std::fmt;
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// Why a global snapshot could not be assembled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// A process never recorded its local state (no marker reached it
    /// before the horizon, or no one initiated).
    NotRecorded {
        /// The process still waiting.
        process: ProcessId,
    },
    /// A channel's recording never closed (its marker did not arrive
    /// before the horizon).
    ChannelOpen {
        /// Channel source.
        from: ProcessId,
        /// Channel destination (the recording process).
        to: ProcessId,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NotRecorded { process } => {
                write!(f, "p{} never took its local snapshot", process.rank())
            }
            SnapshotError::ChannelOpen { from, to } => write!(
                f,
                "channel p{} -> p{} was still recording at the horizon",
                from.rank(),
                to.rank()
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A violated flow equation: the cut is inconsistent or the recording
/// incomplete on one channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CutViolation {
    /// Channel source.
    pub from: ProcessId,
    /// Channel destination.
    pub to: ProcessId,
    /// Messages the source sent before its cut.
    pub sent_pre_cut: u64,
    /// Messages the destination received before its cut.
    pub recv_pre_cut: u64,
    /// Messages recorded as in transit.
    pub recorded: u64,
}

impl fmt::Display for CutViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inconsistent cut on p{} -> p{}: sent-pre-cut {} != received-pre-cut {} + recorded {}",
            self.from.rank(),
            self.to.rank(),
            self.sent_pre_cut,
            self.recv_pre_cut,
            self.recorded
        )
    }
}

impl std::error::Error for CutViolation {}

/// The assembled global snapshot (one instance).
#[derive(Clone, Debug)]
pub struct GlobalSnapshot<S, M> {
    /// The snapshot instance this cut belongs to (0 for single-snapshot
    /// runs).
    pub instance: u32,
    /// Recorded local states, index `i` = `p_{i+1}`.
    pub states: Vec<S>,
    /// Recorded channel contents: `channels[i][j]` = messages in transit
    /// on `p_{i+1} -> p_{j+1}` (diagonal empty).
    pub channels: Vec<Vec<Vec<M>>>,
    /// When each process took its local snapshot.
    pub recorded_at: Vec<Ticks>,
}

impl<S, M> GlobalSnapshot<S, M> {
    /// Number of processes in the cut.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// The recorded content of channel `from -> to`.
    pub fn channel(&self, from: ProcessId, to: ProcessId) -> &[M] {
        &self.channels[from.idx()][to.idx()]
    }

    /// Total messages recorded in transit across the cut.
    pub fn in_transit_count(&self) -> usize {
        self.channels
            .iter()
            .flat_map(|row| row.iter())
            .map(Vec::len)
            .sum()
    }

    /// Folds a numeric measure over every in-transit message — e.g. the
    /// money riding the wires in the [`BankApp`](crate::BankApp) demo.
    pub fn in_transit_sum<F>(&self, measure: F) -> u64
    where
        F: FnMut(&M) -> u64,
    {
        self.channels
            .iter()
            .flat_map(|row| row.iter())
            .flat_map(|msgs| msgs.iter())
            .map(measure)
            .sum()
    }

    /// The spread between the earliest and latest local cut times — how
    /// "non-instantaneous" the consistent cut is.
    pub fn cut_skew(&self) -> Ticks {
        let min = self.recorded_at.iter().copied().min().unwrap_or(0);
        let max = self.recorded_at.iter().copied().max().unwrap_or(0);
        max - min
    }
}

/// Assembles the global snapshot of **instance 0** from the final wrapper
/// states, failing if any local snapshot or channel record is incomplete.
pub fn collect<A: LocalApp>(
    wrappers: &[ChandyLamport<A>],
) -> Result<GlobalSnapshot<A::State, A::Msg>, SnapshotError> {
    collect_instance(wrappers, 0)
}

/// Assembles the global snapshot of instance `snap` (repeated-snapshot
/// runs initiate several; each yields its own cut).
pub fn collect_instance<A: LocalApp>(
    wrappers: &[ChandyLamport<A>],
    snap: u32,
) -> Result<GlobalSnapshot<A::State, A::Msg>, SnapshotError> {
    let n = wrappers.len();
    let mut states = Vec::with_capacity(n);
    let mut recorded_at = Vec::with_capacity(n);
    for w in wrappers {
        states.push(
            w.recorded_state_of(snap)
                .cloned()
                .ok_or(SnapshotError::NotRecorded { process: w.id() })?,
        );
        recorded_at.push(w.recorded_at_of(snap).expect("recorded_at set with state"));
    }

    let mut channels = vec![vec![Vec::new(); n]; n];
    for to in wrappers {
        for from in ProcessId::all(n) {
            if from == to.id() {
                continue;
            }
            let rec = to
                .channel_record_of(snap, from)
                .ok_or(SnapshotError::ChannelOpen { from, to: to.id() })?;
            channels[from.idx()][to.id().idx()] = rec.to_vec();
        }
    }

    Ok(GlobalSnapshot {
        instance: snap,
        states,
        channels,
        recorded_at,
    })
}

/// Certifies the cut with the per-channel flow equation (see the module
/// docs), using the at-cut counters of the snapshot's own instance.
/// Returns the first violated channel, if any.
pub fn verify_flow<A: LocalApp>(
    snap: &GlobalSnapshot<A::State, A::Msg>,
    wrappers: &[ChandyLamport<A>],
) -> Result<(), CutViolation> {
    let n = wrappers.len();
    let k = snap.instance;
    for from in ProcessId::all(n) {
        for to in ProcessId::all(n) {
            if from == to {
                continue;
            }
            let sent = wrappers[from.idx()].sent_at_cut(k, to).unwrap_or(0);
            let recv = wrappers[to.idx()].recv_at_cut(k, from).unwrap_or(0);
            let recorded = snap.channel(from, to).len() as u64;
            if sent != recv + recorded {
                return Err(CutViolation {
                    from,
                    to,
                    sent_pre_cut: sent,
                    recv_pre_cut: recv,
                    recorded,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppEffects;
    use crate::wrapper::{run_snapshot, SnapshotSetup};
    use twostep_events::DelayModel;

    /// `p_2` streams `k` unit messages to `p_1` spaced `gap` apart.
    ///
    /// With `p_1` initiating, `p_1`'s cut precedes `p_2`'s by one marker
    /// hop, so the stream crosses the cut on the `p_2 -> p_1` channel —
    /// the canonical "messages caught mid-flight" picture.
    #[derive(Clone, Debug)]
    struct Streamer {
        me: ProcessId,
        k: u64,
        gap: Ticks,
        sent: u64,
        received: u64,
    }
    impl LocalApp for Streamer {
        type Msg = u64;
        type State = u64;
        fn on_start(&mut self, fx: &mut AppEffects<u64>) {
            if self.me == ProcessId::new(2) {
                fx.set_timer(0, self.gap);
            }
        }
        fn on_message(&mut self, _at: Ticks, _f: ProcessId, _m: u64, _fx: &mut AppEffects<u64>) {
            self.received += 1;
        }
        fn on_timer(&mut self, _at: Ticks, _id: u64, fx: &mut AppEffects<u64>) {
            if self.sent < self.k {
                self.sent += 1;
                fx.send(ProcessId::new(1), 1);
                fx.set_timer(0, self.gap);
            }
        }
        fn snapshot_state(&self) -> u64 {
            self.received
        }
    }

    fn streamers() -> Vec<Streamer> {
        (1..=2)
            .map(|r| Streamer {
                me: ProcessId::new(r),
                k: 10,
                gap: 10,
                sent: 0,
                received: 0,
            })
            .collect()
    }

    #[test]
    fn in_transit_messages_are_captured_exactly() {
        // Delay 35, sends at t = 10, 20, …, 100.  p1 cuts at 52, p2 cuts
        // at 87 (marker arrival).  Sent before p2's cut: t ≤ 80 → 8.
        // Received before p1's cut: arrival 45 only → 1.  The channel
        // record must hold exactly the 7 messages that crossed the cut.
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(1)],
            initiate_at: 52,
            repeat: None,
            horizon: 10_000,
            fifo: true,
        };
        let run = run_snapshot(streamers(), DelayModel::Fixed(35), setup);
        let snap = collect(&run.wrappers).unwrap();
        verify_flow(&snap, &run.wrappers).unwrap();

        let recorded = snap.channel(ProcessId::new(2), ProcessId::new(1)).len() as u64;
        let sent = run.wrappers[1].sent_pre_cut(ProcessId::new(1));
        let recv = run.wrappers[0].recv_pre_cut(ProcessId::new(2));
        assert_eq!(sent, 8, "8 sends strictly before p2's cut at t=87");
        assert_eq!(recv, 1, "only the t=45 arrival precedes p1's cut at t=52");
        assert_eq!(recorded, 7, "the seven crossing messages are the record");
        assert_eq!(snap.in_transit_count(), 7);
    }

    #[test]
    fn collect_reports_missing_local_snapshot() {
        let setup = SnapshotSetup {
            initiators: vec![],
            ..SnapshotSetup::default()
        };
        let run = run_snapshot(streamers(), DelayModel::Fixed(5), setup);
        match collect(&run.wrappers) {
            Err(SnapshotError::NotRecorded { process }) => {
                assert_eq!(process, ProcessId::new(1));
            }
            other => panic!("expected NotRecorded, got {other:?}"),
        }
    }

    #[test]
    fn collect_reports_open_channel_at_horizon() {
        // Horizon shorter than one message delay: the initiator records,
        // but no marker ever arrives anywhere.
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(1)],
            initiate_at: 0,
            repeat: None,
            horizon: 3,
            fifo: true,
        };
        let run = run_snapshot(streamers(), DelayModel::Fixed(50), setup);
        let err = collect(&run.wrappers).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::NotRecorded { .. } | SnapshotError::ChannelOpen { .. }
        ));
    }

    #[test]
    fn cut_skew_is_one_marker_hop_for_single_initiator() {
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(1)],
            initiate_at: 52,
            repeat: None,
            horizon: 10_000,
            fifo: true,
        };
        let run = run_snapshot(streamers(), DelayModel::Fixed(35), setup);
        let snap = collect(&run.wrappers).unwrap();
        assert_eq!(snap.cut_skew(), 35);
        assert_eq!(snap.n(), 2);
    }

    #[test]
    fn violation_display_names_the_channel() {
        let v = CutViolation {
            from: ProcessId::new(1),
            to: ProcessId::new(2),
            sent_pre_cut: 5,
            recv_pre_cut: 3,
            recorded: 1,
        };
        let text = v.to_string();
        assert!(text.contains("p1 -> p2"), "{text}");
        assert!(text.contains("5"), "{text}");
    }
}
