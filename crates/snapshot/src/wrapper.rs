//! The Chandy–Lamport snapshot layer: a [`TimedProcess`] wrapped around a
//! [`LocalApp`], superimposing the marker protocol on the application's
//! message flow.
//!
//! The marker rules (Chandy & Lamport 1985, over a complete graph of FIFO
//! channels), per snapshot **instance** `k` — the original algorithm
//! explicitly supports repeated snapshots by tagging markers with an
//! instance id, and so does this layer:
//!
//! * **Initiation / first marker.** When a process takes its local
//!   snapshot for instance `k` — spontaneously at a configured initiation
//!   time, or on the first `k`-marker it receives — it records its
//!   application state *before processing anything else*, starts
//!   recording every incoming channel for `k` (the channel the first
//!   marker arrived on closes immediately, empty), and sends a `k`-marker
//!   on **every outgoing channel**.
//! * **Recording.** An application message arriving on a channel that is
//!   being recorded for `k` is appended to that instance's channel record
//!   (and still delivered to the app — recording copies, never diverts).
//!   With overlapping instances one message can be recorded by several.
//! * **Closing.** A `k`-marker arriving on a recorded channel closes it
//!   for `k`; instance `k` is locally complete when the state is recorded
//!   and every incoming channel is closed.
//!
//! The marker is precisely the paper's "synchronization message": it
//! carries no data beyond its instance tag, and on a FIFO channel it
//! separates pre-cut from post-cut traffic.  To make the kinship visible,
//! markers are emitted **highest rank first** — the same ordered
//! descending sequence as the Figure 1 commit step (the order is
//! immaterial to Chandy–Lamport correctness; the citation is the point).
//!
//! Verification hooks: the wrapper keeps **cumulative** per-channel send
//! and receive counters and samples them at each local cut;
//! [`verify_flow`](crate::verify_flow) turns the sampled counters plus the
//! channel records into a per-channel conservation equation that holds
//! **iff** the recorded cut is consistent — the mechanical replacement for
//! the Chandy–Lamport paper's reachability proof.

use crate::app::{AppEffects, LocalApp};
use std::fmt;
use twostep_events::{DelayModel, Effects, TimedKernel, TimedProcess, TimedReport};
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// Timer ids at or above this value are reserved for snapshot initiation;
/// `SNAP_TIMER_BASE + k` initiates instance `k`.
const SNAP_TIMER_BASE: u64 = u64::MAX - u32::MAX as u64;

/// Wire messages of the wrapped system: application traffic or a marker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClMsg<M> {
    /// An application message, passed through verbatim.
    App(M),
    /// The Chandy–Lamport marker — a pure synchronization message whose
    /// only content is the snapshot instance it belongs to (the paper's
    /// one-bit control message, in the timed world).
    Marker {
        /// Snapshot instance id.
        snap: u32,
    },
}

/// Recording status of one incoming channel, for one instance.
#[derive(Clone, PartialEq, Eq, Debug)]
enum ChannelRec<M> {
    /// Between the local cut and this channel's marker: messages are
    /// copied here.
    Recording(Vec<M>),
    /// Marker received; the record is final.
    Closed(Vec<M>),
}

/// Per-instance local snapshot state.
#[derive(Clone, Debug)]
struct Instance<A: LocalApp> {
    recorded: A::State,
    recorded_at: Ticks,
    /// One slot per peer (self slot unused, kept `Closed(vec![])`).
    channels: Vec<ChannelRec<A::Msg>>,
    /// Cumulative sends to each peer, sampled at the local cut.
    sent_at_cut: Vec<u64>,
    /// Cumulative receives from each peer, sampled at the local cut.
    recv_at_cut: Vec<u64>,
}

/// One process of the snapshotted system: the app plus the marker layer.
///
/// Construct with [`ChandyLamport::new`], arrange spontaneous initiation
/// with [`initiate_at`](Self::initiate_at), and drive the whole cluster
/// with [`run_snapshot`].
#[derive(Clone, Debug)]
pub struct ChandyLamport<A: LocalApp> {
    me: ProcessId,
    n: usize,
    app: A,
    /// `(instance, at)` spontaneous-initiation schedule.
    initiations: Vec<(u32, Ticks)>,
    /// Dense by instance id; `None` = this instance's cut has not passed
    /// here yet.
    instances: Vec<Option<Instance<A>>>,
    /// Cumulative application messages sent to each peer.
    sent_total: Vec<u64>,
    /// Cumulative application messages received from each peer.
    recv_total: Vec<u64>,
    markers_sent: u64,
}

impl<A: LocalApp> ChandyLamport<A> {
    /// Wraps `app` as process `me` of an `n`-process complete graph.
    pub fn new(me: ProcessId, n: usize, app: A) -> Self {
        ChandyLamport {
            me,
            n,
            app,
            initiations: Vec::new(),
            instances: Vec::new(),
            sent_total: vec![0; n],
            recv_total: vec![0; n],
            markers_sent: 0,
        }
    }

    /// Schedules spontaneous initiation of instance 0 at absolute time
    /// `at` (single-snapshot convenience).  Multiple processes may
    /// initiate concurrently; the algorithm produces one coherent cut per
    /// instance regardless (their markers close each other's channels).
    pub fn initiate_at(self, at: Ticks) -> Self {
        self.initiate_instance_at(0, at)
    }

    /// Schedules spontaneous initiation of instance `snap` at `at`.
    pub fn initiate_instance_at(mut self, snap: u32, at: Ticks) -> Self {
        self.initiations.push((snap, at));
        self
    }

    /// The process this wrapper instruments.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Instances whose cut has passed this process.
    pub fn instances_recorded(&self) -> usize {
        self.instances.iter().flatten().count()
    }

    fn instance(&self, snap: u32) -> Option<&Instance<A>> {
        self.instances.get(snap as usize).and_then(Option::as_ref)
    }

    /// The recorded local state of instance `snap`, once its cut has
    /// passed this process.
    pub fn recorded_state_of(&self, snap: u32) -> Option<&A::State> {
        self.instance(snap).map(|i| &i.recorded)
    }

    /// The recorded local state of instance 0.
    pub fn recorded_state(&self) -> Option<&A::State> {
        self.recorded_state_of(0)
    }

    /// When instance `snap` took its local snapshot here.
    pub fn recorded_at_of(&self, snap: u32) -> Option<Ticks> {
        self.instance(snap).map(|i| i.recorded_at)
    }

    /// When instance 0 took its local snapshot here.
    pub fn recorded_at(&self) -> Option<Ticks> {
        self.recorded_at_of(0)
    }

    /// The final record of the incoming channel from `from` for `snap`,
    /// if closed.
    pub fn channel_record_of(&self, snap: u32, from: ProcessId) -> Option<&[A::Msg]> {
        match self.instance(snap).map(|i| &i.channels[from.idx()]) {
            Some(ChannelRec::Closed(msgs)) => Some(msgs),
            _ => None,
        }
    }

    /// The instance-0 record of the incoming channel from `from`.
    pub fn channel_record(&self, from: ProcessId) -> Option<&[A::Msg]> {
        self.channel_record_of(0, from)
    }

    /// Whether instance `snap` is locally complete: state recorded and
    /// every incoming channel closed.
    pub fn is_complete_of(&self, snap: u32) -> bool {
        self.instance(snap).is_some_and(|i| {
            i.channels
                .iter()
                .enumerate()
                .all(|(j, c)| j == self.me.idx() || matches!(c, ChannelRec::Closed(_)))
        })
    }

    /// Whether instance 0 is locally complete.
    pub fn is_complete(&self) -> bool {
        self.is_complete_of(0)
    }

    /// Application messages sent to `to` before this process's cut for
    /// instance `snap` (used by the flow-equation verifier).
    pub fn sent_at_cut(&self, snap: u32, to: ProcessId) -> Option<u64> {
        self.instance(snap).map(|i| i.sent_at_cut[to.idx()])
    }

    /// Application messages received from `from` before this process's
    /// cut for instance `snap`.
    pub fn recv_at_cut(&self, snap: u32, from: ProcessId) -> Option<u64> {
        self.instance(snap).map(|i| i.recv_at_cut[from.idx()])
    }

    /// Instance-0 convenience for [`sent_at_cut`](Self::sent_at_cut).
    pub fn sent_pre_cut(&self, to: ProcessId) -> u64 {
        self.sent_at_cut(0, to).unwrap_or(0)
    }

    /// Instance-0 convenience for [`recv_at_cut`](Self::recv_at_cut).
    pub fn recv_pre_cut(&self, from: ProcessId) -> u64 {
        self.recv_at_cut(0, from).unwrap_or(0)
    }

    /// Markers this process has emitted across all instances
    /// (`n-1` per instance it participated in).
    pub fn markers_sent(&self) -> u64 {
        self.markers_sent
    }

    /// A read-only view of the wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Takes the local snapshot for `snap` (if not already taken) and
    /// emits its markers highest-rank-first — the Figure 1 commit order.
    fn record_now(&mut self, snap: u32, at: Ticks, fx: &mut Effects<ClMsg<A::Msg>, ()>) {
        let idx = snap as usize;
        if self.instances.len() <= idx {
            self.instances.resize_with(idx + 1, || None);
        }
        if self.instances[idx].is_some() {
            return;
        }
        let mut channels = vec![ChannelRec::Recording(Vec::new()); self.n];
        channels[self.me.idx()] = ChannelRec::Closed(Vec::new());
        self.instances[idx] = Some(Instance {
            recorded: self.app.snapshot_state(),
            recorded_at: at,
            channels,
            sent_at_cut: self.sent_total.clone(),
            recv_at_cut: self.recv_total.clone(),
        });
        for rank in (1..=self.n as u32).rev() {
            let dst = ProcessId::new(rank);
            if dst != self.me {
                fx.send(dst, ClMsg::Marker { snap });
                self.markers_sent += 1;
            }
        }
    }

    /// Forwards buffered app effects to the kernel, bumping the
    /// cumulative send counters.
    fn flush_app(&mut self, app_fx: AppEffects<A::Msg>, fx: &mut Effects<ClMsg<A::Msg>, ()>) {
        for (to, msg) in app_fx.sends {
            self.sent_total[to.idx()] += 1;
            fx.send(to, ClMsg::App(msg));
        }
        for (id, delay) in app_fx.timers {
            debug_assert!(id < SNAP_TIMER_BASE, "app timer id in the reserved range");
            fx.set_timer(id, delay);
        }
    }
}

impl<A: LocalApp> TimedProcess for ChandyLamport<A>
where
    A::Msg: fmt::Debug,
{
    type Msg = ClMsg<A::Msg>;
    type Output = ();

    fn on_start(&mut self, fx: &mut Effects<Self::Msg, ()>) {
        for &(snap, at) in &self.initiations {
            fx.set_timer(SNAP_TIMER_BASE + snap as u64, at);
        }
        let mut app_fx = AppEffects::new();
        self.app.on_start(&mut app_fx);
        self.flush_app(app_fx, fx);
    }

    fn on_message(
        &mut self,
        at: Ticks,
        from: ProcessId,
        msg: Self::Msg,
        fx: &mut Effects<Self::Msg, ()>,
    ) {
        match msg {
            ClMsg::Marker { snap } => {
                // First `snap`-marker: take the cut now; `record_now`
                // opens every incoming channel (the one this marker
                // arrived on then closes below, possibly empty — the
                // Chandy–Lamport "marker channel records nothing" rule).
                self.record_now(snap, at, fx);
                let inst = self.instances[snap as usize]
                    .as_mut()
                    .expect("record_now created the instance");
                let ch = &mut inst.channels[from.idx()];
                match std::mem::replace(ch, ChannelRec::Closed(Vec::new())) {
                    ChannelRec::Recording(msgs) => *ch = ChannelRec::Closed(msgs),
                    ChannelRec::Closed(_) => {
                        unreachable!("each process markers each channel once per instance")
                    }
                }
            }
            ClMsg::App(m) => {
                self.recv_total[from.idx()] += 1;
                for inst in self.instances.iter_mut().flatten() {
                    if let ChannelRec::Recording(msgs) = &mut inst.channels[from.idx()] {
                        msgs.push(m.clone());
                    }
                }
                let mut app_fx = AppEffects::new();
                self.app.on_message(at, from, m, &mut app_fx);
                self.flush_app(app_fx, fx);
            }
        }
    }

    fn on_suspicion(&mut self, _at: Ticks, _suspect: ProcessId, _fx: &mut Effects<Self::Msg, ()>) {
        // Chandy–Lamport is a fault-free algorithm (the paper cites it as
        // such); snapshot runs schedule no crashes and no detector.
    }

    fn on_timer(&mut self, at: Ticks, id: u64, fx: &mut Effects<Self::Msg, ()>) {
        if id >= SNAP_TIMER_BASE {
            self.record_now((id - SNAP_TIMER_BASE) as u32, at, fx);
        } else {
            let mut app_fx = AppEffects::new();
            self.app.on_timer(at, id, &mut app_fx);
            self.flush_app(app_fx, fx);
        }
    }
}

/// How a snapshot run is set up: who initiates, when, for how long.
#[derive(Clone, Debug)]
pub struct SnapshotSetup {
    /// Processes that spontaneously initiate (at least one required for a
    /// snapshot to happen).
    pub initiators: Vec<ProcessId>,
    /// Absolute initiation time of instance 0.
    pub initiate_at: Ticks,
    /// Optional repeated instances `1..=count` at `initiate_at + k·every`.
    pub repeat: Option<Repeat>,
    /// Simulation horizon — snapshot workloads are often non-quiescent, so
    /// the run is cut here.
    pub horizon: Ticks,
    /// Whether to enforce per-channel FIFO (required for correctness;
    /// exposed so the tests can demonstrate the failure mode without it).
    pub fifo: bool,
}

/// A periodic-snapshot schedule: `count` further instances, one every
/// `every` ticks after instance 0.
#[derive(Clone, Copy, Debug)]
pub struct Repeat {
    /// How many instances beyond instance 0.
    pub count: u32,
    /// Spacing between consecutive initiations.
    pub every: Ticks,
}

impl Default for SnapshotSetup {
    fn default() -> Self {
        SnapshotSetup {
            initiators: vec![ProcessId::new(1)],
            initiate_at: 0,
            repeat: None,
            horizon: 100_000,
            fifo: true,
        }
    }
}

/// Everything a snapshot run produces.
#[derive(Clone, Debug)]
pub struct SnapshotRun<A: LocalApp> {
    /// The final wrapper states (snapshot records + counters + apps).
    pub wrappers: Vec<ChandyLamport<A>>,
    /// The kernel's report (messages, end time, horizon flag).
    pub report: TimedReport<()>,
}

impl<A: LocalApp> SnapshotRun<A> {
    /// Total snapshot instances this setup initiated.
    pub fn instance_count(&self) -> u32 {
        self.wrappers
            .iter()
            .map(|w| w.instances_recorded() as u32)
            .max()
            .unwrap_or(0)
    }
}

/// Wraps each app, runs the cluster under `delays`, and returns the final
/// states.  `apps[i]` becomes process `p_{i+1}`.
///
/// # Panics
///
/// Panics if `setup.initiators` names a rank outside `1..=apps.len()`.
pub fn run_snapshot<A: LocalApp>(
    apps: Vec<A>,
    delays: DelayModel,
    setup: SnapshotSetup,
) -> SnapshotRun<A>
where
    A::Msg: fmt::Debug,
{
    let n = apps.len();
    assert!(
        setup.initiators.iter().all(|p| p.idx() < n),
        "initiator rank out of range"
    );
    let wrappers: Vec<ChandyLamport<A>> = apps
        .into_iter()
        .enumerate()
        .map(|(i, app)| {
            let me = ProcessId::new(i as u32 + 1);
            let mut w = ChandyLamport::new(me, n, app);
            if setup.initiators.contains(&me) {
                w = w.initiate_at(setup.initiate_at);
                if let Some(rep) = setup.repeat {
                    for k in 1..=rep.count {
                        w = w.initiate_instance_at(k, setup.initiate_at + k as u64 * rep.every);
                    }
                }
            }
            w
        })
        .collect();

    let kernel = TimedKernel::new(wrappers, delays).horizon(setup.horizon);
    let kernel = if setup.fifo { kernel.fifo() } else { kernel };
    let (report, wrappers) = kernel.run_with_states();
    SnapshotRun { wrappers, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A silent app: no messages, constant state.
    #[derive(Clone, Debug)]
    struct Still(u64);
    impl LocalApp for Still {
        type Msg = u8;
        type State = u64;
        fn on_start(&mut self, _fx: &mut AppEffects<u8>) {}
        fn on_message(&mut self, _at: Ticks, _f: ProcessId, _m: u8, _fx: &mut AppEffects<u8>) {}
        fn on_timer(&mut self, _at: Ticks, _id: u64, _fx: &mut AppEffects<u8>) {}
        fn snapshot_state(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn quiescent_app_snapshot_completes_with_empty_channels() {
        let apps = vec![Still(10), Still(20), Still(30)];
        let run = run_snapshot(apps, DelayModel::Fixed(5), SnapshotSetup::default());
        for w in &run.wrappers {
            assert!(w.is_complete(), "p{} incomplete", w.id().rank());
            for from in ProcessId::all(3) {
                if from != w.id() {
                    assert_eq!(w.channel_record(from), Some(&[] as &[u8]));
                }
            }
        }
        assert_eq!(run.wrappers[0].recorded_state(), Some(&10));
        assert_eq!(run.wrappers[2].recorded_state(), Some(&30));
        // n(n-1) markers and nothing else.
        assert_eq!(run.report.messages_sent, 6);
    }

    #[test]
    fn markers_emitted_highest_rank_first_complete_by_one_initiator() {
        let apps = vec![Still(0); 5];
        let run = run_snapshot(apps, DelayModel::Fixed(7), SnapshotSetup::default());
        assert!(run.wrappers.iter().all(|w| w.is_complete()));
        assert!(run.wrappers.iter().all(|w| w.markers_sent() == 4));
        // Initiator records at its initiation time, everyone else one hop
        // later.
        assert_eq!(run.wrappers[0].recorded_at(), Some(0));
        for w in &run.wrappers[1..] {
            assert_eq!(w.recorded_at(), Some(7));
        }
    }

    #[test]
    fn concurrent_initiators_still_produce_one_complete_cut() {
        let apps = vec![Still(1); 4];
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(2), ProcessId::new(4)],
            initiate_at: 50,
            ..SnapshotSetup::default()
        };
        let run = run_snapshot(apps, DelayModel::Fixed(9), setup);
        assert!(run.wrappers.iter().all(|w| w.is_complete()));
        // Each process sends its markers exactly once.
        assert!(run.wrappers.iter().all(|w| w.markers_sent() == 3));
    }

    #[test]
    fn no_initiator_means_no_snapshot() {
        let apps = vec![Still(0); 3];
        let setup = SnapshotSetup {
            initiators: vec![],
            ..SnapshotSetup::default()
        };
        let run = run_snapshot(apps, DelayModel::Fixed(5), setup);
        assert!(run.wrappers.iter().all(|w| !w.is_complete()));
        assert!(run.wrappers.iter().all(|w| w.recorded_state().is_none()));
        assert_eq!(run.report.messages_sent, 0);
    }

    #[test]
    fn repeated_instances_complete_independently() {
        let apps = vec![Still(7); 4];
        let setup = SnapshotSetup {
            initiate_at: 10,
            repeat: Some(Repeat {
                count: 3,
                every: 40,
            }),
            ..SnapshotSetup::default()
        };
        let run = run_snapshot(apps, DelayModel::Fixed(6), setup);
        assert_eq!(run.instance_count(), 4);
        for w in &run.wrappers {
            for k in 0..4 {
                assert!(w.is_complete_of(k), "p{} instance {k}", w.id().rank());
                assert_eq!(w.recorded_state_of(k), Some(&7));
            }
            assert_eq!(w.markers_sent(), 4 * 3, "3 markers per instance");
        }
        // Instance k's cut at the initiator is its initiation time.
        assert_eq!(run.wrappers[0].recorded_at_of(2), Some(10 + 80));
    }

    #[test]
    fn instance_ids_can_be_sparse() {
        let apps = vec![Still(1); 3];
        let wrappers: Vec<_> = apps
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let me = ProcessId::new(i as u32 + 1);
                let w = ChandyLamport::new(me, 3, a);
                if i == 0 {
                    w.initiate_instance_at(5, 20)
                } else {
                    w
                }
            })
            .collect();
        let (_, wrappers) = TimedKernel::new(wrappers, DelayModel::Fixed(4))
            .fifo()
            .run_with_states();
        for w in &wrappers {
            assert!(w.is_complete_of(5));
            assert!(!w.is_complete_of(0), "instance 0 never ran");
            assert!(w.recorded_state_of(0).is_none());
        }
    }
}
