//! # twostep-snapshot — Chandy–Lamport snapshots as synchronization messages
//!
//! The paper's related-work section (Section 1) names the Chandy–Lamport
//! distributed snapshot algorithm as *the* classic use of synchronization
//! messages in fault-free distributed computing: when a process takes its
//! local snapshot it sends a special **marker** message on each outgoing
//! channel, and that marker both (1) tells the destination to snapshot and
//! (2) cleanly separates the messages sent before it from those sent after
//! it — a "synchronization point" on the channel, exactly the role the
//! paper's commit message plays inside an extended round.
//!
//! This crate reproduces that related-work system end to end on the
//! [`twostep-events`](twostep_events) timed kernel:
//!
//! * [`LocalApp`] — the application-facing interface: any deterministic
//!   message/timer-driven program with an observable local state;
//! * [`ChandyLamport`] — the snapshot layer wrapped around a [`LocalApp`],
//!   implementing the marker rules on **FIFO** channels (the kernel's
//!   [`fifo()`](twostep_events::TimedKernel::fifo) discipline);
//! * [`GlobalSnapshot`] / [`collect`] — assembly of the recorded cut, and
//!   [`verify_flow`] — a mechanical consistency certificate: per channel
//!   `(i → j)`, `sent by i before i's cut = received by j before j's cut
//!   + recorded in transit`;
//! * two workload applications with global invariants that a *consistent*
//!   cut must preserve and an inconsistent one visibly breaks:
//!   [`BankApp`] (money conservation) and [`TokenRing`] (exactly one
//!   token).
//!
//! The analogy to the paper is explicit in the marker emission order:
//! markers go out highest-rank-first, mirroring the Figure 1 commit
//! sequence — see [`ChandyLamport`].
//!
//! ## Quickstart
//!
//! ```
//! use twostep_snapshot::{collect, run_snapshot, BankApp, SnapshotSetup};
//!
//! let setup = SnapshotSetup {
//!     initiators: vec![twostep_model::ProcessId::new(1)],
//!     initiate_at: 300,
//!     repeat: None,
//!     horizon: 5_000,
//!     fifo: true,
//! };
//! let apps = BankApp::cluster(4, 1_000, 0xB4A2);
//! let run = run_snapshot(apps, twostep_events::DelayModel::Fixed(25), setup);
//! let snap = collect(&run.wrappers).expect("snapshot completed");
//!
//! // The cut is consistent...
//! twostep_snapshot::verify_flow(&snap, &run.wrappers).unwrap();
//! // ...so the recorded cut conserves money even with transfers in flight.
//! assert_eq!(snap.states.iter().sum::<u64>()
//!     + snap.in_transit_sum(|m| *m), 4 * 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod bank;
pub mod global;
pub mod token;
pub mod wrapper;

pub use app::{AppEffects, LocalApp};
pub use bank::BankApp;
pub use global::{
    collect, collect_instance, verify_flow, CutViolation, GlobalSnapshot, SnapshotError,
};
pub use token::{tokens_in_cut, Token, TokenRing};
pub use wrapper::{run_snapshot, ChandyLamport, ClMsg, Repeat, SnapshotRun, SnapshotSetup};
