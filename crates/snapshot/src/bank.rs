//! A money-transfer workload: the canonical snapshot demonstration.
//!
//! Every process manages an account and keeps firing transfers to random
//! peers.  The global invariant — **total money is conserved** — holds in
//! every *legal* global state, but no single instant is observable in a
//! distributed system; a consistent cut is the next best thing.  Summing
//! the recorded balances plus the recorded in-transit transfers must give
//! back the initial total
//! ([`in_transit_sum`](crate::GlobalSnapshot::in_transit_sum)); an
//! inconsistent cut (e.g.
//! non-FIFO channels, see the crate tests) double-counts or loses money.

use crate::app::{AppEffects, LocalApp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// Timer id for the transfer loop (0 is free: `u64::MAX` is reserved).
const TRANSFER_TIMER: u64 = 0;

/// One account holder issuing random transfers.
///
/// Deterministic: all randomness comes from a per-process [`SmallRng`]
/// seeded from the cluster seed and the rank, so a run is reproducible
/// from `(n, initial_balance, seed)` alone.
#[derive(Clone, Debug)]
pub struct BankApp {
    me: ProcessId,
    n: usize,
    balance: u64,
    rng: SmallRng,
    /// No new transfers are issued at or after this time, letting the run
    /// quiesce before the horizon.
    stop_at: Ticks,
    transfers_sent: u64,
    transfers_received: u64,
}

impl BankApp {
    /// A single account with `initial` money at process `me`.
    pub fn new(me: ProcessId, n: usize, initial: u64, seed: u64, stop_at: Ticks) -> Self {
        BankApp {
            me,
            n,
            balance: initial,
            rng: SmallRng::seed_from_u64(seed ^ (me.rank() as u64).wrapping_mul(0x9E37_79B9)),
            stop_at,
            transfers_sent: 0,
            transfers_received: 0,
        }
    }

    /// A whole cluster: `n` accounts with `initial` each, transfer
    /// activity until `stop_at = 2_000` ticks.
    pub fn cluster(n: usize, initial: u64, seed: u64) -> Vec<BankApp> {
        ProcessId::all(n)
            .map(|me| BankApp::new(me, n, initial, seed, 2_000))
            .collect()
    }

    /// Like [`cluster`](Self::cluster) with an explicit activity window.
    pub fn cluster_until(n: usize, initial: u64, seed: u64, stop_at: Ticks) -> Vec<BankApp> {
        ProcessId::all(n)
            .map(|me| BankApp::new(me, n, initial, seed, stop_at))
            .collect()
    }

    /// Current balance.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Transfers issued so far.
    pub fn transfers_sent(&self) -> u64 {
        self.transfers_sent
    }

    /// Transfers received so far.
    pub fn transfers_received(&self) -> u64 {
        self.transfers_received
    }

    fn schedule_next(&mut self, fx: &mut AppEffects<u64>) {
        let gap: Ticks = self.rng.gen_range(5..40);
        fx.set_timer(TRANSFER_TIMER, gap);
    }
}

impl LocalApp for BankApp {
    type Msg = u64;
    type State = u64;

    fn on_start(&mut self, fx: &mut AppEffects<u64>) {
        if self.n > 1 {
            self.schedule_next(fx);
        }
    }

    fn on_message(&mut self, _at: Ticks, _from: ProcessId, amount: u64, _fx: &mut AppEffects<u64>) {
        self.balance += amount;
        self.transfers_received += 1;
    }

    fn on_timer(&mut self, at: Ticks, id: u64, fx: &mut AppEffects<u64>) {
        debug_assert_eq!(id, TRANSFER_TIMER);
        if at >= self.stop_at {
            return;
        }
        // Pick a peer and an affordable amount; skip the beat if broke.
        let peer_offset = self.rng.gen_range(1..self.n as u32);
        let dst = ProcessId::new((self.me.rank() - 1 + peer_offset) % self.n as u32 + 1);
        debug_assert_ne!(dst, self.me);
        let amount = self.rng.gen_range(1..=20);
        if self.balance >= amount {
            self.balance -= amount;
            self.transfers_sent += 1;
            fx.send(dst, amount);
        }
        self.schedule_next(fx);
    }

    fn snapshot_state(&self) -> u64 {
        self.balance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{collect, verify_flow};
    use crate::wrapper::{run_snapshot, SnapshotSetup};
    use twostep_events::DelayModel;

    fn total(n: usize, initial: u64) -> u64 {
        n as u64 * initial
    }

    #[test]
    fn money_is_conserved_across_the_cut_fixed_delays() {
        let n = 6;
        let apps = BankApp::cluster(n, 500, 0xB001);
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(3)],
            initiate_at: 700,
            repeat: None,
            horizon: 60_000,
            fifo: true,
        };
        let run = run_snapshot(apps, DelayModel::Fixed(17), setup);
        let snap = collect(&run.wrappers).unwrap();
        verify_flow(&snap, &run.wrappers).unwrap();
        let recorded: u64 = snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m);
        assert_eq!(recorded, total(n, 500));
    }

    #[test]
    fn money_is_conserved_under_jittery_fifo_delays() {
        let n = 5;
        let apps = BankApp::cluster(n, 300, 0xB002);
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(1), ProcessId::new(5)],
            initiate_at: 444,
            repeat: None,
            horizon: 60_000,
            fifo: true,
        };
        let delays = DelayModel::Uniform {
            min: 5,
            max: 90,
            seed: 0xD31A,
        };
        let run = run_snapshot(apps, delays, setup);
        let snap = collect(&run.wrappers).unwrap();
        verify_flow(&snap, &run.wrappers).unwrap();
        let recorded: u64 = snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m);
        assert_eq!(recorded, total(n, 300));
    }

    #[test]
    fn final_balances_conserve_money_too() {
        // Sanity on the app itself, independent of snapshots: after
        // quiescence all transfers have landed.
        let n = 4;
        let apps = BankApp::cluster(n, 250, 0xB003);
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(1)],
            initiate_at: 100,
            repeat: None,
            horizon: 60_000,
            fifo: true,
        };
        let run = run_snapshot(apps, DelayModel::Fixed(13), setup);
        assert!(!run.report.hit_horizon, "bank runs quiesce after stop_at");
        let final_total: u64 = run.wrappers.iter().map(|w| w.app().balance()).sum();
        assert_eq!(final_total, total(n, 250));
        assert!(
            run.wrappers.iter().any(|w| w.app().transfers_sent() > 0),
            "workload actually moved money"
        );
    }

    #[test]
    fn cluster_is_deterministic_in_its_seed() {
        let run_once = || {
            let apps = BankApp::cluster(4, 100, 42);
            let run = run_snapshot(
                apps,
                DelayModel::Fixed(11),
                SnapshotSetup {
                    initiate_at: 333,
                    ..SnapshotSetup::default()
                },
            );
            let snap = collect(&run.wrappers).unwrap();
            (snap.states.clone(), snap.in_transit_count())
        };
        assert_eq!(run_once(), run_once());
    }
}
