//! The application interface seen by the snapshot layer.
//!
//! A [`LocalApp`] is an ordinary deterministic event-driven program: it
//! reacts to messages and timers, sends messages, arms timers, and exposes
//! its current local state on demand.  It knows nothing about snapshots —
//! the [`ChandyLamport`](crate::ChandyLamport) wrapper interposes
//! transparently, which is the modularity the Chandy–Lamport paper claims
//! for marker-based snapshots ("the snapshot algorithm is superimposed on
//! the underlying computation without altering it").

use std::fmt;
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// What an application handler asks of its environment: sends and timers.
///
/// This is the fault-free subset of the kernel's
/// [`Effects`](twostep_events::Effects): snapshot workloads never decide
/// (the run ends by quiescence or horizon), and the wrapper owns the real
/// effect buffer.
#[derive(Clone, Debug, Default)]
pub struct AppEffects<M> {
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) timers: Vec<(u64, Ticks)>,
}

impl<M> AppEffects<M> {
    /// An empty effect set.
    pub fn new() -> Self {
        AppEffects {
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Queues an application message to `to`.  Sends are emitted in call
    /// order on FIFO channels.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Arms a timer `delay` ticks from now.  Timer ids are application
    /// scoped; the value `u64::MAX` is reserved by the snapshot layer for
    /// its own initiation timer and must not be used.
    pub fn set_timer(&mut self, id: u64, delay: Ticks) {
        debug_assert!(id != u64::MAX, "u64::MAX is the snapshot layer's timer id");
        self.timers.push((id, delay));
    }

    /// Messages queued so far, in send order.
    pub fn sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }

    /// Timers armed so far.
    pub fn timers(&self) -> &[(u64, Ticks)] {
        &self.timers
    }
}

/// A deterministic message/timer-driven application with an observable
/// local state — the "underlying computation" a snapshot records.
///
/// # Examples
///
/// A counter that increments on every message and forwards once:
///
/// ```
/// use twostep_model::{timing::Ticks, ProcessId};
/// use twostep_snapshot::{AppEffects, LocalApp};
///
/// #[derive(Clone)]
/// struct Counter { me: ProcessId, n: usize, count: u64 }
///
/// impl LocalApp for Counter {
///     type Msg = u8;
///     type State = u64;
///     fn on_start(&mut self, fx: &mut AppEffects<u8>) {
///         if self.me == ProcessId::new(1) {
///             fx.send(ProcessId::new(2), 1);
///         }
///     }
///     fn on_message(&mut self, _at: Ticks, _from: ProcessId, _m: u8,
///                   fx: &mut AppEffects<u8>) {
///         self.count += 1;
///         let next = ProcessId::new(self.me.rank() % self.n as u32 + 1);
///         if self.count == 1 { fx.send(next, 1); }
///     }
///     fn on_timer(&mut self, _at: Ticks, _id: u64, _fx: &mut AppEffects<u8>) {}
///     fn snapshot_state(&self) -> u64 { self.count }
/// }
/// ```
pub trait LocalApp: Clone {
    /// Application message payload.
    type Msg: Clone + fmt::Debug;
    /// The local state a snapshot records.
    type State: Clone + PartialEq + fmt::Debug;

    /// Invoked once at time 0.
    fn on_start(&mut self, fx: &mut AppEffects<Self::Msg>);

    /// An application message arrived.
    fn on_message(
        &mut self,
        at: Ticks,
        from: ProcessId,
        msg: Self::Msg,
        fx: &mut AppEffects<Self::Msg>,
    );

    /// An application timer fired.
    fn on_timer(&mut self, at: Ticks, id: u64, fx: &mut AppEffects<Self::Msg>);

    /// The current local state, as the snapshot would record it.  Called
    /// by the wrapper at the instant the marker rule fires; must be a pure
    /// observation (no side effects).
    fn snapshot_state(&self) -> Self::State;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_accumulate_in_order() {
        let mut fx: AppEffects<u8> = AppEffects::new();
        fx.send(ProcessId::new(3), 1);
        fx.send(ProcessId::new(2), 2);
        fx.set_timer(7, 40);
        assert_eq!(
            fx.sends(),
            &[(ProcessId::new(3), 1), (ProcessId::new(2), 2)]
        );
        assert_eq!(fx.timers(), &[(7, 40)]);
    }

    #[test]
    #[should_panic(expected = "snapshot layer")]
    #[cfg(debug_assertions)]
    fn reserved_timer_id_is_rejected() {
        let mut fx: AppEffects<u8> = AppEffects::new();
        fx.set_timer(u64::MAX, 1);
    }
}
