//! A token-ring workload: the sharpest consistency probe.
//!
//! Exactly one token circulates `p_1 → p_2 → … → p_n → p_1`.  In every
//! legal global state the token exists exactly once — either held by one
//! process or in flight on one channel.  A consistent cut must therefore
//! record **exactly one** token across all states and channel records; an
//! inconsistent cut records zero (the token slipped between the local
//! snapshots) or two (it was double-counted).  This binary invariant makes
//! cut bugs impossible to miss, which is why the token ring is the
//! classic counterexample generator for naive (uncoordinated) snapshots.

use crate::app::{AppEffects, LocalApp};
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// Timer id for the hold delay.
const HOLD_TIMER: u64 = 1;

/// One station of the ring.
#[derive(Clone, Debug)]
pub struct TokenRing {
    me: ProcessId,
    n: usize,
    holding: bool,
    /// How long a station holds the token before forwarding.
    hold_for: Ticks,
    /// Stations stop forwarding at this time so the run quiesces.
    stop_at: Ticks,
    passes: u64,
}

impl TokenRing {
    /// Builds the whole ring; `p_1` starts with the token.
    pub fn ring(n: usize, hold_for: Ticks, stop_at: Ticks) -> Vec<TokenRing> {
        ProcessId::all(n)
            .map(|me| TokenRing {
                me,
                n,
                holding: me == ProcessId::new(1),
                hold_for,
                stop_at,
                passes: 0,
            })
            .collect()
    }

    /// Whether this station currently holds the token.
    pub fn holding(&self) -> bool {
        self.holding
    }

    /// How many times this station has forwarded the token.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    fn next(&self) -> ProcessId {
        ProcessId::new(self.me.rank() % self.n as u32 + 1)
    }
}

/// The token: a unit message.
pub type Token = ();

impl LocalApp for TokenRing {
    type Msg = Token;
    type State = bool;

    fn on_start(&mut self, fx: &mut AppEffects<Token>) {
        if self.holding && self.n > 1 {
            fx.set_timer(HOLD_TIMER, self.hold_for);
        }
    }

    fn on_message(
        &mut self,
        at: Ticks,
        _from: ProcessId,
        _token: Token,
        fx: &mut AppEffects<Token>,
    ) {
        debug_assert!(!self.holding, "two tokens at one station");
        self.holding = true;
        if at < self.stop_at {
            fx.set_timer(HOLD_TIMER, self.hold_for);
        }
    }

    fn on_timer(&mut self, _at: Ticks, id: u64, fx: &mut AppEffects<Token>) {
        debug_assert_eq!(id, HOLD_TIMER);
        if self.holding {
            self.holding = false;
            self.passes += 1;
            fx.send(self.next(), ());
        }
    }

    fn snapshot_state(&self) -> bool {
        self.holding
    }
}

/// Counts the tokens a snapshot recorded: held states plus in-flight
/// messages.  Consistency ⇔ the answer is exactly 1.
pub fn tokens_in_cut(snap: &crate::GlobalSnapshot<bool, Token>) -> usize {
    snap.states.iter().filter(|h| **h).count() + snap.in_transit_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{collect, verify_flow};
    use crate::wrapper::{run_snapshot, SnapshotSetup};
    use twostep_events::DelayModel;

    #[test]
    fn exactly_one_token_in_every_consistent_cut() {
        // Sweep initiation times across several token positions; the cut
        // must always contain exactly one token.
        for initiate_at in [0u64, 13, 55, 127, 300, 601] {
            let apps = TokenRing::ring(5, 20, 1_000);
            let setup = SnapshotSetup {
                initiators: vec![ProcessId::new(2)],
                initiate_at,
                repeat: None,
                horizon: 50_000,
                fifo: true,
            };
            let run = run_snapshot(apps, DelayModel::Fixed(9), setup);
            let snap = collect(&run.wrappers).unwrap();
            verify_flow(&snap, &run.wrappers).unwrap();
            assert_eq!(
                tokens_in_cut(&snap),
                1,
                "cut at t={initiate_at} must hold one token"
            );
        }
    }

    #[test]
    fn token_keeps_moving_and_run_quiesces() {
        let apps = TokenRing::ring(4, 10, 500);
        let setup = SnapshotSetup {
            initiate_at: 50,
            ..SnapshotSetup::default()
        };
        let run = run_snapshot(apps, DelayModel::Fixed(5), setup);
        assert!(!run.report.hit_horizon);
        let total_passes: u64 = run.wrappers.iter().map(|w| w.app().passes()).sum();
        assert!(total_passes > 10, "token circulated: {total_passes} passes");
        let holders = run.wrappers.iter().filter(|w| w.app().holding()).count();
        assert_eq!(holders, 1, "after quiescence exactly one holder remains");
    }

    #[test]
    fn ring_of_one_keeps_its_token() {
        let apps = TokenRing::ring(1, 10, 100);
        let setup = SnapshotSetup {
            initiate_at: 5,
            ..SnapshotSetup::default()
        };
        let run = run_snapshot(apps, DelayModel::Fixed(5), setup);
        let snap = collect(&run.wrappers).unwrap();
        assert_eq!(tokens_in_cut(&snap), 1);
    }
}
