//! Property and failure-injection tests for the Chandy–Lamport layer.
//!
//! The central claims (Chandy & Lamport 1985, cited by the paper's
//! related-work section as *the* synchronization-message algorithm):
//!
//! 1. on FIFO channels every completed snapshot is a **consistent cut**
//!    (the per-channel flow equation holds), and
//! 2. consequently any conserved global quantity is conserved *in the
//!    recorded cut* even though no process ever observed a global instant;
//! 3. without FIFO the guarantee evaporates — there are runs whose
//!    "snapshot" loses or double-counts messages.

use proptest::prelude::*;
use twostep_events::DelayModel;
use twostep_model::ProcessId;
use twostep_snapshot::{
    collect, run_snapshot, tokens_in_cut, verify_flow, BankApp, SnapshotSetup, TokenRing,
};

fn setup(initiator: u32, at: u64, fifo: bool) -> SnapshotSetup {
    SnapshotSetup {
        initiators: vec![ProcessId::new(initiator)],
        initiate_at: at,
        repeat: None,
        horizon: 200_000,
        fifo,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation of money over arbitrary seeds, delays, cluster sizes
    /// and initiation times — the headline snapshot property.
    #[test]
    fn bank_cut_conserves_money(
        n in 2usize..8,
        initial in 50u64..2_000,
        seed in any::<u64>(),
        delay_min in 1u64..30,
        delay_spread in 0u64..80,
        initiate_at in 0u64..3_000,
        initiator in 1u32..3,
    ) {
        let initiator = initiator.min(n as u32);
        let apps = BankApp::cluster(n, initial, seed);
        let delays = if delay_spread == 0 {
            DelayModel::Fixed(delay_min)
        } else {
            DelayModel::Uniform { min: delay_min, max: delay_min + delay_spread, seed }
        };
        let run = run_snapshot(apps, delays, setup(initiator, initiate_at, true));
        let snap = collect(&run.wrappers).expect("completes before a generous horizon");
        verify_flow(&snap, &run.wrappers).expect("consistent cut on FIFO channels");
        let recorded = snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m);
        prop_assert_eq!(recorded, n as u64 * initial);
    }

    /// The token ring invariant: every consistent cut holds exactly one
    /// token, wherever the cut lands relative to the moving token.
    #[test]
    fn token_ring_cut_holds_exactly_one_token(
        n in 2usize..9,
        hold_for in 1u64..40,
        delay in 1u64..60,
        initiate_at in 0u64..2_000,
        initiator in 1u32..9,
    ) {
        let initiator = (initiator - 1) % n as u32 + 1;
        let apps = TokenRing::ring(n, hold_for, 3_000);
        let run = run_snapshot(apps, DelayModel::Fixed(delay), setup(initiator, initiate_at, true));
        let snap = collect(&run.wrappers).expect("ring quiesces and snapshot completes");
        verify_flow(&snap, &run.wrappers).expect("consistent cut");
        prop_assert_eq!(tokens_in_cut(&snap), 1);
    }

    /// Snapshot transparency: wrapping an app in the snapshot layer does
    /// not change the application outcome (final balances equal a run
    /// that never initiates a snapshot).
    #[test]
    fn snapshot_layer_is_transparent_to_the_app(
        n in 2usize..6,
        seed in any::<u64>(),
        initiate_at in 0u64..2_500,
    ) {
        let with_snap = run_snapshot(
            BankApp::cluster(n, 400, seed),
            DelayModel::Fixed(21),
            setup(1, initiate_at, true),
        );
        let without_snap = run_snapshot(
            BankApp::cluster(n, 400, seed),
            DelayModel::Fixed(21),
            SnapshotSetup { initiators: vec![], ..setup(1, 0, true) },
        );
        for (a, b) in with_snap.wrappers.iter().zip(&without_snap.wrappers) {
            prop_assert_eq!(a.app().balance(), b.app().balance());
            prop_assert_eq!(a.app().transfers_sent(), b.app().transfers_sent());
        }
    }
}

/// Failure injection: *without* FIFO channels, overtaking breaks the cut.
/// Deterministically hunts a seed whose non-FIFO run violates either the
/// flow equation or conservation, then shows the same seed is clean with
/// `fifo: true` — the exact hypothesis-to-guarantee edge of the theorem.
#[test]
fn non_fifo_channels_break_the_cut_for_some_seed() {
    let broken = (0u64..200).find_map(|seed| {
        let apps = BankApp::cluster(4, 500, seed);
        let delays = DelayModel::Uniform {
            min: 1,
            max: 400,
            seed,
        };
        let run = run_snapshot(apps, delays, setup(1, 500, false));
        let snap = collect(&run.wrappers).ok()?;
        let flow_broken = verify_flow(&snap, &run.wrappers).is_err();
        let total = snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m);
        (flow_broken || total != 2_000).then_some((seed, flow_broken, total))
    });
    let (seed, flow_broken, total) =
        broken.expect("within 200 seeds some non-FIFO run breaks the snapshot");
    assert!(
        flow_broken || total != 2_000,
        "seed {seed}: expected a violation, flow_broken={flow_broken}, total={total}"
    );

    // The same adversarial delays are harmless once FIFO is enforced.
    let apps = BankApp::cluster(4, 500, seed);
    let delays = DelayModel::Uniform {
        min: 1,
        max: 400,
        seed,
    };
    let run = run_snapshot(apps, delays, setup(1, 500, true));
    let snap = collect(&run.wrappers).unwrap();
    verify_flow(&snap, &run.wrappers).unwrap();
    assert_eq!(
        snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m),
        2_000
    );
}

/// Initiation during a completely idle system records all balances with
/// empty channels — the degenerate but legal cut.
#[test]
fn idle_system_snapshot_is_the_trivial_cut() {
    // stop_at = 0: the bank never issues a transfer.
    let apps = BankApp::cluster_until(5, 777, 1, 0);
    let run = run_snapshot(apps, DelayModel::Fixed(10), setup(2, 100, true));
    let snap = collect(&run.wrappers).unwrap();
    verify_flow(&snap, &run.wrappers).unwrap();
    assert_eq!(snap.in_transit_count(), 0);
    assert!(snap.states.iter().all(|b| *b == 777));
}

/// All n processes initiating simultaneously is legal and still yields a
/// single consistent cut.
#[test]
fn everyone_initiates_at_once() {
    let n = 6;
    let apps = BankApp::cluster(n, 250, 9);
    let s = SnapshotSetup {
        initiators: ProcessId::all(n).collect(),
        initiate_at: 321,
        repeat: None,
        horizon: 100_000,
        fifo: true,
    };
    let run = run_snapshot(apps, DelayModel::Fixed(15), s);
    let snap = collect(&run.wrappers).unwrap();
    verify_flow(&snap, &run.wrappers).unwrap();
    assert_eq!(
        snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m),
        n as u64 * 250
    );
    // Simultaneous initiation ⇒ zero cut skew.
    assert_eq!(snap.cut_skew(), 0);
}

/// Repeated snapshots with deliberately overlapping cuts (interval below
/// the marker propagation time): every instance must independently be a
/// consistent, conserving cut, even while several recordings share the
/// same channels.
#[test]
fn overlapping_repeated_snapshots_each_conserve_money() {
    use twostep_snapshot::{collect_instance, Repeat};
    let n = 6;
    let initial = 800u64;
    for seed in 0..10u64 {
        let apps = BankApp::cluster(n, initial, seed);
        let setup = SnapshotSetup {
            initiators: vec![ProcessId::new(1)],
            initiate_at: 300,
            // Markers need up to 90 ticks per hop; initiating every 25
            // ticks guarantees instance k+1 starts while k still records.
            repeat: Some(Repeat {
                count: 5,
                every: 25,
            }),
            horizon: 300_000,
            fifo: true,
        };
        let delays = DelayModel::Uniform {
            min: 10,
            max: 90,
            seed: seed ^ 0xABCD,
        };
        let run = run_snapshot(apps, delays, setup);
        for k in 0..=5u32 {
            let snap = collect_instance(&run.wrappers, k)
                .unwrap_or_else(|e| panic!("seed {seed} instance {k}: {e}"));
            verify_flow(&snap, &run.wrappers)
                .unwrap_or_else(|e| panic!("seed {seed} instance {k}: {e}"));
            let total = snap.states.iter().sum::<u64>() + snap.in_transit_sum(|m| *m);
            assert_eq!(total, n as u64 * initial, "seed {seed} instance {k}");
            assert_eq!(snap.instance, k);
        }
    }
}

/// Cut monotonicity across instances: at every process, instance k+1's
/// local cut never precedes instance k's (initiations are ordered and
/// FIFO preserves marker order per channel from the same initiator).
#[test]
fn repeated_instance_cuts_are_monotone_per_process() {
    use twostep_snapshot::Repeat;
    let n = 5;
    let apps = BankApp::cluster(n, 400, 77);
    let setup = SnapshotSetup {
        initiators: vec![ProcessId::new(2)],
        initiate_at: 100,
        repeat: Some(Repeat {
            count: 4,
            every: 30,
        }),
        horizon: 300_000,
        fifo: true,
    };
    let run = run_snapshot(
        apps,
        DelayModel::Uniform {
            min: 5,
            max: 80,
            seed: 3,
        },
        setup,
    );
    for w in &run.wrappers {
        for k in 0..4u32 {
            let a = w.recorded_at_of(k).unwrap();
            let b = w.recorded_at_of(k + 1).unwrap();
            assert!(
                a <= b,
                "p{}: instance {k} at {a} vs {} at {b}",
                w.id().rank(),
                k + 1
            );
        }
    }
}
