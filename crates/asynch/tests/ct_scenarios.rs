//! CT96 under scripted ◇S misbehaviour and crash storms, plus the
//! family comparison: CT96 and MR99 must reach the *same* decision under
//! identical failure patterns when the same coordinator locks the value —
//! they are, per the paper's Section 4 reading, one algorithm in two
//! costumes.

use twostep_asynch::{ct_processes, mr99_processes, SuspicionScript};
use twostep_events::{DelayModel, TimedCrash, TimedKernel};
use twostep_model::ProcessId;

fn pid(r: u32) -> ProcessId {
    ProcessId::new(r)
}

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 700 + i).collect()
}

#[test]
fn flapping_suspicions_delay_but_do_not_break_ct() {
    let n = 5;
    let fd = SuspicionScript::new(n, 10, 2000).flapping(0, 50).build();
    let (report, states) =
        TimedKernel::new(ct_processes(n, 2, &proposals(n)), DelayModel::Fixed(100))
            .fd(fd)
            .run_with_states();
    assert_eq!(report.decided_values().len(), 1);
    assert_eq!(report.decisions.iter().flatten().count(), n);
    let max_round = states
        .iter()
        .filter_map(|s| s.decided_round())
        .max()
        .unwrap();
    assert!(
        max_round <= n as u64 + 1,
        "round {max_round} exceeds lie horizon"
    );
}

#[test]
fn pile_on_lies_about_successive_coordinators_ct() {
    let n = 5;
    let fd = SuspicionScript::new(n, 10, 5000)
        .everyone_suspects(1, pid(1))
        .everyone_suspects(2, pid(2))
        .build();
    let (report, _) = TimedKernel::new(ct_processes(n, 2, &proposals(n)), DelayModel::Fixed(100))
        .fd(fd)
        .run_with_states();
    assert_eq!(report.decided_values().len(), 1);
    assert_eq!(report.decisions.iter().flatten().count(), n);
}

#[test]
fn lies_plus_real_crashes_with_random_delays_ct() {
    let n = 7;
    let t = 3;
    for seed in 0..25u64 {
        let fd = SuspicionScript::new(n, 10, 1500)
            .one_suspects(1, pid(3), pid(1))
            .one_suspects(7, pid(4), pid(2))
            .flapping(20, 90)
            .build();
        let (report, _) = TimedKernel::new(
            ct_processes(n, t, &proposals(n)),
            DelayModel::Uniform {
                min: 1,
                max: 250,
                seed,
            },
        )
        .fd(fd)
        .crash(
            pid(1),
            TimedCrash {
                at: 30,
                keep_sends: 1,
            },
        )
        .crash(
            pid(6),
            TimedCrash {
                at: 400,
                keep_sends: 0,
            },
        )
        .run_with_states();
        let vals = report.decided_values();
        assert!(vals.len() <= 1, "seed {seed}: {vals:?}");
        assert!(
            report.decisions.iter().flatten().count() >= n - 2,
            "seed {seed}: all correct processes decide"
        );
        assert!(!report.hit_horizon, "seed {seed}");
    }
}

/// Validity under adversity: whatever CT96 decides was proposed.
#[test]
fn ct_decisions_are_always_proposed_values() {
    let n = 5;
    let props = proposals(n);
    for seed in 0..40u64 {
        let fd = SuspicionScript::new(n, 15, 1200)
            .flapping(seed % 40, 35 + seed % 60)
            .build();
        let report = TimedKernel::new(
            ct_processes(n, 2, &props),
            DelayModel::Uniform {
                min: 1,
                max: 180,
                seed,
            },
        )
        .fd(fd)
        .crash(
            pid((seed % n as u64) as u32 + 1),
            TimedCrash {
                at: seed * 13 % 500,
                keep_sends: (seed % 4) as usize,
            },
        )
        .run();
        for v in report.decided_values() {
            assert!(props.contains(&v), "seed {seed}: {v} was never proposed");
        }
    }
}

/// The family property: with the same healthy first coordinator, CT96 and
/// MR99 decide the same value (the coordinator's), differing only in cost.
#[test]
fn ct_and_mr99_agree_on_the_locked_value() {
    let n = 7;
    let t = 3;
    let props = proposals(n);
    for crashes in 0..=2usize {
        let run = |which: bool| -> Vec<u64> {
            let fd = twostep_events::FdSpec::accurate(10);
            let mut k_ct;
            let mut k_mr;
            let report = if which {
                k_ct = TimedKernel::new(ct_processes(n, t, &props), DelayModel::Fixed(100)).fd(fd);
                for c in 1..=crashes {
                    k_ct = k_ct.crash(
                        pid(c as u32),
                        TimedCrash {
                            at: 0,
                            keep_sends: 0,
                        },
                    );
                }
                k_ct.run()
            } else {
                k_mr =
                    TimedKernel::new(mr99_processes(n, t, &props), DelayModel::Fixed(100)).fd(fd);
                for c in 1..=crashes {
                    k_mr = k_mr.crash(
                        pid(c as u32),
                        TimedCrash {
                            at: 0,
                            keep_sends: 0,
                        },
                    );
                }
                k_mr.run()
            };
            report.decided_values()
        };
        let ct = run(true);
        let mr = run(false);
        assert_eq!(
            ct,
            mr,
            "{crashes} silent crashes: both pick p_{}",
            crashes + 1
        );
        assert_eq!(ct, vec![props[crashes]], "first live coordinator's value");
    }
}
