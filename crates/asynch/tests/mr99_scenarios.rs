//! MR99 under scripted ◇S misbehaviour: flapping suspicions, pile-ons,
//! lies combined with real crashes and random delays.  Agreement and
//! termination must survive everything ◇S is allowed to do.

use twostep_asynch::{mr99_processes, SuspicionScript};
use twostep_events::{DelayModel, TimedCrash, TimedKernel};
use twostep_model::ProcessId;

fn pid(r: u32) -> ProcessId {
    ProcessId::new(r)
}

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 700 + i).collect()
}

#[test]
fn flapping_suspicions_delay_but_do_not_break() {
    let n = 5;
    let fd = SuspicionScript::new(n, 10, 2000).flapping(0, 50).build();
    let (report, states) =
        TimedKernel::new(mr99_processes(n, 2, &proposals(n)), DelayModel::Fixed(100))
            .fd(fd)
            .run_with_states();
    assert_eq!(report.decided_values().len(), 1);
    assert_eq!(report.decisions.iter().flatten().count(), n);
    // Flapping may push decisions past round 1, but they stay bounded by
    // the lie horizon (every coordinator after GST succeeds).
    let max_round = states
        .iter()
        .filter_map(|s| s.decided_round())
        .max()
        .unwrap();
    assert!(
        max_round <= n as u64 + 1,
        "round {max_round} exceeds lie horizon"
    );
}

#[test]
fn pile_on_lies_about_successive_coordinators() {
    let n = 5;
    // Everyone falsely suspects p1 then p2 — two wasted-ish rounds at most.
    let fd = SuspicionScript::new(n, 10, 5000)
        .everyone_suspects(1, pid(1))
        .everyone_suspects(2, pid(2))
        .build();
    let (report, _) = TimedKernel::new(mr99_processes(n, 2, &proposals(n)), DelayModel::Fixed(100))
        .fd(fd)
        .run_with_states();
    assert_eq!(report.decided_values().len(), 1);
    assert_eq!(report.decisions.iter().flatten().count(), n);
}

#[test]
fn lies_plus_real_crashes_with_random_delays() {
    let n = 7;
    let t = 3;
    for seed in 0..25u64 {
        let fd = SuspicionScript::new(n, 10, 1500)
            .one_suspects(1, pid(3), pid(1))
            .one_suspects(7, pid(4), pid(2))
            .flapping(20, 90)
            .build();
        let (report, _) = TimedKernel::new(
            mr99_processes(n, t, &proposals(n)),
            DelayModel::Uniform {
                min: 1,
                max: 250,
                seed,
            },
        )
        .fd(fd)
        .crash(
            pid(1),
            TimedCrash {
                at: 30,
                keep_sends: 1,
            },
        )
        .crash(
            pid(6),
            TimedCrash {
                at: 400,
                keep_sends: 0,
            },
        )
        .run_with_states();
        let vals = report.decided_values();
        assert!(vals.len() <= 1, "seed {seed}: {vals:?}");
        assert!(
            report.decisions.iter().flatten().count() >= n - 2,
            "seed {seed}: all correct processes decide"
        );
        assert!(!report.hit_horizon, "seed {seed}");
    }
}
