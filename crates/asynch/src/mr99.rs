//! MR99 — the Mostéfaoui–Raynal (DISC'99) quorum-based consensus for
//! asynchronous systems equipped with a ◇S failure detector.
//!
//! Section 4 of the paper identifies this algorithm as the *asynchronous
//! twin* of its synchronous algorithm: each MR99 round has two
//! communication steps —
//!
//! 1. the round's coordinator broadcasts its estimate (`CURRENT`), and
//!    every process sets `aux` to that value or, if it suspects the
//!    coordinator, to `⊥`;
//! 2. every process broadcasts `aux` (`ECHO`) and waits for `n - t`
//!    echoes: a **majority** of `v` decides `v`; at least one `v` adopts
//!    `v`; all `⊥` keeps the old estimate.
//!
//! The paper's point: its commit message plays exactly the role of this
//! second step — but thanks to the extended model's synchrony it can be
//! sent by the *coordinator alone*, pipelined right behind the data, with
//! no extra message exchange.  Experiment E7 (`repro e7-bridge`) compares
//! the two mechanically: steps per round, messages per round, and
//! agreement of decisions under equivalent failure/suspicion patterns.
//!
//! Requirements: `t < n/2` (majority of correct processes — necessary for
//! asynchronous consensus with ◇S) and a detector that is *complete*
//! (crashed processes are eventually suspected — our kernel's accurate
//! oracle) and *eventually accurate* (false suspicions — injectable via
//! [`FdSpec::injected_suspicions`](twostep_events::FdSpec) — eventually
//! stop).  Decisions are diffused with `DECIDE` relays so laggards
//! terminate.

use std::collections::BTreeMap;
use std::fmt;
use twostep_events::{Effects, TimedProcess};
use twostep_model::timing::Ticks;
use twostep_model::{PidSet, ProcessId};

/// MR99 wire messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Mr99Msg<V> {
    /// Step 1: the round coordinator's estimate.
    Current {
        /// Asynchronous round number (1-based).
        round: u64,
        /// The coordinator's estimate.
        est: V,
    },
    /// Step 2: a process's knowledge of the coordinator's estimate
    /// (`None` = the sender suspected the coordinator).
    Echo {
        /// Asynchronous round number.
        round: u64,
        /// The echoed value, or `⊥`.
        aux: Option<V>,
    },
    /// Decision diffusion (reliable-broadcast style relay).
    Decide {
        /// The decided value.
        value: V,
    },
}

/// Per-round receive buffer.
#[derive(Clone, Debug)]
struct RoundBuf<V> {
    current: Option<V>,
    echoes: Vec<(ProcessId, Option<V>)>,
}

impl<V> Default for RoundBuf<V> {
    fn default() -> Self {
        RoundBuf {
            current: None,
            echoes: Vec::new(),
        }
    }
}

/// One MR99 process.
///
/// # Examples
///
/// Failure-free asynchronous consensus: the round-1 coordinator's value
/// wins after two communication steps:
///
/// ```
/// use twostep_asynch::mr99_processes;
/// use twostep_events::{DelayModel, FdSpec, TimedKernel};
///
/// let proposals = vec![9u64, 5, 7];
/// let report = TimedKernel::new(
///     mr99_processes(3, 1, &proposals),
///     DelayModel::Fixed(100),
/// )
/// .fd(FdSpec::accurate(10))
/// .run();
/// assert_eq!(report.decided_values(), vec![9]);
/// ```
#[derive(Clone, Debug)]
pub struct Mr99<V> {
    me: ProcessId,
    n: usize,
    t: usize,
    round: u64,
    est: V,
    sent_echo: bool,
    suspected: PidSet,
    bufs: BTreeMap<u64, RoundBuf<V>>,
    relayed_decide: bool,
    /// The round in which this process decided (for the bridge experiment).
    decided_round: Option<u64>,
}

impl<V: Clone + Eq + fmt::Debug> Mr99<V> {
    /// Creates process `me` of an `n`-process, `t`-resilient instance
    /// (`t < n/2` required).
    pub fn new(me: ProcessId, n: usize, t: usize, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(2 * t < n, "MR99 requires a correct majority (t < n/2)");
        Mr99 {
            me,
            n,
            t,
            round: 0,
            est: proposal,
            sent_echo: false,
            suspected: PidSet::empty(n),
            bufs: BTreeMap::new(),
            relayed_decide: false,
            decided_round: None,
        }
    }

    /// The coordinator of asynchronous round `r`: `p_{((r-1) mod n) + 1}`.
    pub fn coordinator_of(r: u64, n: usize) -> ProcessId {
        ProcessId::new(((r - 1) % n as u64) as u32 + 1)
    }

    /// The round this process decided in, if it has.
    pub fn decided_round(&self) -> Option<u64> {
        self.decided_round
    }

    /// The current asynchronous round.
    pub fn round(&self) -> u64 {
        self.round
    }

    fn enter_round(&mut self, r: u64, fx: &mut Effects<Mr99Msg<V>, V>) {
        self.round = r;
        self.sent_echo = false;
        if Self::coordinator_of(r, self.n) == self.me {
            // Step 1: broadcast the estimate; self-delivery is immediate.
            let est = self.est.clone();
            fx.broadcast_others(
                self.me,
                self.n,
                Mr99Msg::Current {
                    round: r,
                    est: est.clone(),
                },
            );
            self.bufs.entry(r).or_default().current = Some(est);
        }
        self.check_step1(fx);
    }

    /// Step 1 exit condition: coordinator value received, or coordinator
    /// suspected.
    fn check_step1(&mut self, fx: &mut Effects<Mr99Msg<V>, V>) {
        if self.sent_echo {
            return;
        }
        let r = self.round;
        let coord = Self::coordinator_of(r, self.n);
        let aux: Option<V> = match self.bufs.get(&r).and_then(|b| b.current.clone()) {
            Some(v) => Some(v),
            None if self.suspected.contains(coord) => None,
            None => return, // keep waiting (asynchrony: no timeout, only ◇S)
        };
        self.sent_echo = true;
        fx.broadcast_others(
            self.me,
            self.n,
            Mr99Msg::Echo {
                round: r,
                aux: aux.clone(),
            },
        );
        let me = self.me;
        self.bufs.entry(r).or_default().echoes.push((me, aux));
        self.check_step2(fx);
    }

    /// Step 2 exit condition: `n - t` echoes collected.
    fn check_step2(&mut self, fx: &mut Effects<Mr99Msg<V>, V>) {
        if !self.sent_echo {
            return;
        }
        let r = self.round;
        let quorum = self.n - self.t;
        let Some(buf) = self.bufs.get(&r) else { return };
        if buf.echoes.len() < quorum {
            return;
        }
        // Every non-⊥ aux of a round carries the unique coordinator
        // broadcast — the crash model has no equivocation.
        let mut value: Option<V> = None;
        let mut count_v = 0usize;
        for (_, aux) in &buf.echoes {
            if let Some(v) = aux {
                match &value {
                    None => value = Some(v.clone()),
                    Some(w) => debug_assert_eq!(w, v, "two distinct aux values in round {r}"),
                }
                count_v += 1;
            }
        }
        match value {
            Some(v) if 2 * count_v > self.n => {
                // Locked by a majority: decide and diffuse.
                self.relayed_decide = true;
                self.decided_round = Some(r);
                fx.broadcast_others(self.me, self.n, Mr99Msg::Decide { value: v.clone() });
                fx.decide(v);
            }
            Some(v) => {
                self.est = v;
                self.enter_round(r + 1, fx);
            }
            None => {
                self.enter_round(r + 1, fx);
            }
        }
    }
}

impl<V> TimedProcess for Mr99<V>
where
    V: Clone + Eq + fmt::Debug,
{
    type Msg = Mr99Msg<V>;
    type Output = V;

    fn on_start(&mut self, fx: &mut Effects<Mr99Msg<V>, V>) {
        self.enter_round(1, fx);
    }

    fn on_message(
        &mut self,
        _at: Ticks,
        from: ProcessId,
        msg: Mr99Msg<V>,
        fx: &mut Effects<Mr99Msg<V>, V>,
    ) {
        match msg {
            Mr99Msg::Current { round, est } => {
                let buf = self.bufs.entry(round).or_default();
                if buf.current.is_none() {
                    buf.current = Some(est);
                }
                if round == self.round {
                    self.check_step1(fx);
                }
            }
            Mr99Msg::Echo { round, aux } => {
                let buf = self.bufs.entry(round).or_default();
                if !buf.echoes.iter().any(|(p, _)| *p == from) {
                    buf.echoes.push((from, aux));
                }
                if round == self.round {
                    self.check_step2(fx);
                }
            }
            Mr99Msg::Decide { value } => {
                if !self.relayed_decide {
                    self.relayed_decide = true;
                    self.decided_round = Some(self.round);
                    fx.broadcast_others(
                        self.me,
                        self.n,
                        Mr99Msg::Decide {
                            value: value.clone(),
                        },
                    );
                }
                fx.decide(value);
            }
        }
    }

    fn on_suspicion(&mut self, _at: Ticks, suspect: ProcessId, fx: &mut Effects<Mr99Msg<V>, V>) {
        self.suspected.insert(suspect);
        if Self::coordinator_of(self.round, self.n) == suspect {
            self.check_step1(fx);
        }
    }

    fn on_timer(&mut self, _at: Ticks, _id: u64, _fx: &mut Effects<Mr99Msg<V>, V>) {}
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn mr99_processes<V: Clone + Eq + fmt::Debug>(
    n: usize,
    t: usize,
    proposals: &[V],
) -> Vec<Mr99<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process required");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| Mr99::new(ProcessId::from_idx(i), n, t, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_events::{DelayModel, FdSpec, TimedCrash, TimedKernel};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    const D: Ticks = 100;
    const FD: Ticks = 10;

    #[test]
    fn coordinator_rotation_wraps() {
        assert_eq!(Mr99::<u64>::coordinator_of(1, 3), pid(1));
        assert_eq!(Mr99::<u64>::coordinator_of(3, 3), pid(3));
        assert_eq!(Mr99::<u64>::coordinator_of(4, 3), pid(1));
    }

    #[test]
    #[should_panic(expected = "correct majority")]
    fn majority_requirement_enforced() {
        let _ = Mr99::new(pid(1), 4, 2, 0u64);
    }

    #[test]
    fn failure_free_decides_in_round_one() {
        let proposals = [104u64, 101, 103];
        let (report, states) =
            TimedKernel::new(mr99_processes(3, 1, &proposals), DelayModel::Fixed(D))
                .fd(FdSpec::accurate(FD))
                .run_with_states();
        for d in &report.decisions {
            let (v, _) = d.as_ref().unwrap();
            assert_eq!(*v, 104, "the round-1 coordinator imposes its value");
        }
        for s in &states {
            assert_eq!(s.decided_round(), Some(1));
        }
        // Two communication steps: CURRENT (n-1) + ECHO (n(n-1)) + DECIDE
        // relays — strictly more traffic than the paper's 2(n-1).
        assert!(report.messages_sent >= (3 - 1) + 3 * (3 - 1));
    }

    #[test]
    fn crashed_coordinator_moves_to_round_two() {
        // p_1 dies at start before sending anything; ◇S completeness kicks
        // in and everyone echoes ⊥, then round 2's coordinator decides.
        let proposals = [104u64, 101, 103];
        let (report, states) =
            TimedKernel::new(mr99_processes(3, 1, &proposals), DelayModel::Fixed(D))
                .fd(FdSpec::accurate(FD))
                .crash(
                    pid(1),
                    TimedCrash {
                        at: 0,
                        keep_sends: 0,
                    },
                )
                .run_with_states();
        assert!(report.decisions[0].is_none());
        for d in report.decisions.iter().skip(1) {
            let (v, _) = d.as_ref().unwrap();
            assert_eq!(*v, 101, "round-2 coordinator p_2 imposes its value");
        }
        for s in states.iter().skip(1) {
            assert_eq!(s.decided_round(), Some(2));
        }
    }

    #[test]
    fn partial_current_broadcast_is_safe() {
        // The coordinator reaches only p_2 with CURRENT and dies.  The
        // suspicion (latency 10) outruns the message (delay 100), so even
        // p_2 echoes ⊥ before the coordinator's value arrives: round 1
        // yields all-⊥, estimates are kept, and round 2's coordinator p_2
        // imposes its own value.  p_1's value is lost — safely, since p_1
        // never decided.  (This is exactly the asynchrony the paper's
        // synchronous commit message eliminates: in the extended model the
        // data message *cannot* lose the race.)
        let proposals = [1u64, 2, 3, 4, 5];
        let (report, _) = TimedKernel::new(mr99_processes(5, 2, &proposals), DelayModel::Fixed(D))
            .fd(FdSpec::accurate(FD))
            .crash(
                pid(1),
                TimedCrash {
                    at: 0,
                    keep_sends: 1,
                },
            )
            .run_with_states();
        let vals = report.decided_values();
        assert_eq!(vals.len(), 1, "uniform agreement: {vals:?}");
        assert_eq!(vals[0], 2);
    }

    #[test]
    fn false_suspicion_only_delays_decision() {
        // ◇S may lie: p_2 and p_3 falsely suspect the (healthy) round-1
        // coordinator before its CURRENT arrives, echo ⊥, and the round
        // fails the majority test for them; the quorum evaluation varies
        // with arrival order, but agreement must hold and p_1's value may
        // only win where a majority echoed it.
        let proposals = [7u64, 8, 9];
        let (report, _) = TimedKernel::new(mr99_processes(3, 1, &proposals), DelayModel::Fixed(D))
            .fd(FdSpec {
                accurate_latency: Some(FD),
                injected_suspicions: vec![(1, pid(2), pid(1)), (1, pid(3), pid(1))],
            })
            .run_with_states();
        let vals = report.decided_values();
        assert_eq!(vals.len(), 1, "agreement despite lies: {vals:?}");
        assert!(!report.hit_horizon);
    }

    #[test]
    fn asynchronous_delays_do_not_break_agreement() {
        // Heterogeneous random delays: rounds interleave across processes;
        // buffering by round number must keep everything straight.
        for seed in 0..20u64 {
            let proposals = [11u64, 22, 33, 44, 55];
            let (report, _) = TimedKernel::new(
                mr99_processes(5, 2, &proposals),
                DelayModel::Uniform {
                    min: 1,
                    max: 500,
                    seed,
                },
            )
            .fd(FdSpec::accurate(FD))
            .run_with_states();
            let vals = report.decided_values();
            assert_eq!(vals.len(), 1, "seed {seed}: {vals:?}");
            assert_eq!(report.decisions.iter().flatten().count(), 5, "seed {seed}");
        }
    }

    #[test]
    fn crash_with_random_delays_stays_uniform() {
        for seed in 0..20u64 {
            let proposals = [11u64, 22, 33, 44, 55];
            let (report, _) = TimedKernel::new(
                mr99_processes(5, 2, &proposals),
                DelayModel::Uniform {
                    min: 1,
                    max: 300,
                    seed,
                },
            )
            .fd(FdSpec::accurate(FD))
            .crash(
                pid(1),
                TimedCrash {
                    at: 0,
                    keep_sends: 2,
                },
            )
            .crash(
                pid(3),
                TimedCrash {
                    at: 150,
                    keep_sends: 0,
                },
            )
            .run_with_states();
            let vals = report.decided_values();
            assert!(vals.len() <= 1, "seed {seed}: {vals:?}");
            // All correct processes decide (p_2, p_4, p_5).
            assert!(report.decisions[1].is_some(), "seed {seed}");
            assert!(report.decisions[3].is_some(), "seed {seed}");
            assert!(report.decisions[4].is_some(), "seed {seed}");
        }
    }
}
