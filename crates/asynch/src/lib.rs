//! # twostep-asynch — the asynchronous side of the paper's Section 4 bridge
//!
//! Section 4 of the paper shows that its synchronous algorithm and the
//! MR99 asynchronous ◇S consensus are "two implementations in different
//! settings of the very same basic principle": MR99's second communication
//! step (the all-to-all `aux` echo, needed because asynchrony hides the
//! coordinator's fate) collapses, under the extended model's synchrony,
//! into the coordinator's own pipelined one-bit commit.
//!
//! This crate supplies the asynchronous half of that comparison:
//! [`Mr99`], running on the `twostep-events` kernel with a simulated ◇S
//! detector (accurate completeness from the oracle + injectable false
//! suspicions), and [`ChandraToueg`] (CT96, the paper's reference \[5\]) —
//! the four-phase coordinator-centric ancestor of the same family.
//! Experiment E7 (`repro e7-bridge`) runs all sides under equivalent
//! failure patterns and tabulates steps and messages per round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct;
pub mod mr99;
pub mod scenario;

pub use ct::{ct_processes, ChandraToueg, CtMsg};
pub use mr99::{mr99_processes, Mr99, Mr99Msg};
pub use scenario::SuspicionScript;
