//! ◇S suspicion scenarios: declarative builders for the failure-detector
//! behaviours the asynchronous experiments exercise.
//!
//! A ◇S (eventually strong) detector may suspect *anyone* for an arbitrary
//! finite prefix of the run; it must eventually stop suspecting some
//! correct process.  The kernel's accurate oracle supplies completeness
//! (real crashes are reported); this module scripts the *lies* — bounded
//! false-suspicion patterns before a global stabilization time (GST).

use twostep_events::FdSpec;
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// A declarative ◇S scenario: accurate completeness plus scripted false
/// suspicions that all happen before `gst`.
#[derive(Clone, Debug)]
pub struct SuspicionScript {
    n: usize,
    detection_latency: Ticks,
    gst: Ticks,
    injections: Vec<(Ticks, ProcessId, ProcessId)>,
}

impl SuspicionScript {
    /// A scenario over `n` processes with the given crash-detection
    /// latency and stabilization time `gst` (no lie may be scheduled at or
    /// after it).
    pub fn new(n: usize, detection_latency: Ticks, gst: Ticks) -> Self {
        SuspicionScript {
            n,
            detection_latency,
            gst,
            injections: Vec::new(),
        }
    }

    /// The stabilization time.
    pub fn gst(&self) -> Ticks {
        self.gst
    }

    /// Everyone (except the target) falsely suspects `target` at `when`.
    ///
    /// # Panics
    ///
    /// Panics if `when >= gst` — ◇S lies must stop eventually, and the
    /// scenario encodes "eventually" as GST.
    pub fn everyone_suspects(mut self, when: Ticks, target: ProcessId) -> Self {
        assert!(when < self.gst, "false suspicions must precede GST");
        for obs in ProcessId::all(self.n) {
            if obs != target {
                self.injections.push((when, obs, target));
            }
        }
        self
    }

    /// A single observer falsely suspects `target` at `when`.
    ///
    /// # Panics
    ///
    /// Panics if `when >= gst`.
    pub fn one_suspects(mut self, when: Ticks, observer: ProcessId, target: ProcessId) -> Self {
        assert!(when < self.gst, "false suspicions must precede GST");
        self.injections.push((when, observer, target));
        self
    }

    /// Rolling lies: at times `start, start+step, …` (strictly below GST),
    /// observer `p_{1+k mod n}` suspects `p_{1+(k+1) mod n}` — a flapping
    /// pattern that stresses round-skipping logic.
    pub fn flapping(mut self, start: Ticks, step: Ticks) -> Self {
        assert!(step > 0);
        let mut when = start;
        let mut k = 0u32;
        while when < self.gst {
            let obs = ProcessId::new(k % self.n as u32 + 1);
            let target = ProcessId::new((k + 1) % self.n as u32 + 1);
            if obs != target {
                self.injections.push((when, obs, target));
            }
            when += step;
            k += 1;
        }
        self
    }

    /// Materializes the kernel's detector configuration.
    pub fn build(self) -> FdSpec {
        FdSpec {
            accurate_latency: Some(self.detection_latency),
            injected_suspicions: self.injections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    #[test]
    fn everyone_suspects_excludes_target() {
        let spec = SuspicionScript::new(4, 10, 1000)
            .everyone_suspects(5, pid(2))
            .build();
        assert_eq!(spec.injected_suspicions.len(), 3);
        assert!(spec
            .injected_suspicions
            .iter()
            .all(|(_, obs, target)| *target == pid(2) && *obs != pid(2)));
        assert_eq!(spec.accurate_latency, Some(10));
    }

    #[test]
    #[should_panic(expected = "precede GST")]
    fn lies_after_gst_rejected() {
        let _ = SuspicionScript::new(3, 10, 100).everyone_suspects(100, pid(1));
    }

    #[test]
    fn flapping_stays_below_gst() {
        let spec = SuspicionScript::new(3, 10, 100).flapping(0, 30).build();
        assert!(!spec.injected_suspicions.is_empty());
        assert!(spec.injected_suspicions.iter().all(|(t, _, _)| *t < 100));
    }

    #[test]
    fn one_suspects_is_single() {
        let spec = SuspicionScript::new(5, 10, 50)
            .one_suspects(1, pid(3), pid(1))
            .build();
        assert_eq!(spec.injected_suspicions, vec![(1, pid(3), pid(1))]);
    }
}
