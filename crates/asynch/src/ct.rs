//! CT96 — the Chandra–Toueg rotating-coordinator consensus for
//! asynchronous systems with a ◇S failure detector (J. ACM 1996), the
//! paper's reference \[5\].
//!
//! Section 4 of the paper cites this algorithm (together with MR99 and the
//! indulgent-consensus line) as the coordinator-based asynchronous family
//! its own synchronous algorithm belongs to.  Where MR99 compresses a
//! round into two symmetric steps (coordinator broadcast + all-to-all
//! echo), CT96 spends **four asymmetric phases** per round, all funnelled
//! through the coordinator:
//!
//! 1. every process sends its timestamped estimate to the coordinator;
//! 2. the coordinator collects a majority and re-broadcasts the estimate
//!    with the **largest timestamp** (the value-locking step);
//! 3. every process either adopts the proposal and `ACK`s, or — if its
//!    detector suspects the coordinator — `NACK`s and moves on;
//! 4. a majority of `ACK`s lets the coordinator reliably broadcast the
//!    decision.
//!
//! The contrast the bridge experiment (E7) draws: the paper's extended
//! synchronous model needs **one** communication step per round and `Θ(n)`
//! messages, MR99 needs two steps and `Θ(n²)`, CT96 needs four
//! coordinator-centric phases and `Θ(n)` — but pays them in round trips,
//! not in message count.  All three lock a value through a majority-or-
//! synchrony argument before anyone decides.
//!
//! Requirements, as for MR99: `t < n/2` and a detector that is complete
//! and eventually accurate (◇S).  Decisions are diffused with a `DECIDE`
//! relay so processes that advanced past the deciding round terminate.

use std::collections::BTreeMap;
use std::fmt;
use twostep_events::{Effects, TimedProcess};
use twostep_model::timing::Ticks;
use twostep_model::{PidSet, ProcessId};

/// CT96 wire messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CtMsg<V> {
    /// Phase 1: a process's current estimate and the round it last adopted
    /// a coordinator proposal (`ts = 0` = never).
    Estimate {
        /// Asynchronous round number (1-based).
        round: u64,
        /// The sender's estimate.
        est: V,
        /// Adoption timestamp of `est`.
        ts: u64,
    },
    /// Phase 2: the coordinator's proposal for this round.
    Propose {
        /// Asynchronous round number.
        round: u64,
        /// The proposed value (max-timestamp estimate of a majority).
        est: V,
    },
    /// Phase 3 positive reply: the sender adopted the proposal.
    Ack {
        /// The acknowledged round.
        round: u64,
    },
    /// Phase 3 negative reply: the sender suspects the coordinator.
    Nack {
        /// The refused round.
        round: u64,
    },
    /// Decision diffusion (the R-broadcast of the original paper,
    /// flattened to a one-hop relay under crash faults).  Carries the
    /// round the decision originated in — CT96 processes race ahead of
    /// the deciding coordinator, so the receiver's own round number says
    /// nothing about when the value was locked.
    Decide {
        /// The round whose coordinator decided.
        round: u64,
        /// The decided value.
        value: V,
    },
}

/// Per-round receive buffer (kept for rounds ahead of and behind the
/// process's own position — asynchrony lets messages race).
#[derive(Clone, Debug)]
struct RoundBuf<V> {
    estimates: Vec<(ProcessId, V, u64)>,
    proposal: Option<V>,
    acks: usize,
    proposal_sent: bool,
    decided_here: bool,
}

impl<V> Default for RoundBuf<V> {
    fn default() -> Self {
        RoundBuf {
            estimates: Vec::new(),
            proposal: None,
            acks: 0,
            proposal_sent: false,
            decided_here: false,
        }
    }
}

/// One CT96 process.
///
/// # Examples
///
/// ```
/// use twostep_asynch::ct_processes;
/// use twostep_events::{DelayModel, FdSpec, TimedKernel};
///
/// let proposals = vec![4u64, 8, 6];
/// let report = TimedKernel::new(
///     ct_processes(3, 1, &proposals),
///     DelayModel::Fixed(100),
/// )
/// .fd(FdSpec::accurate(10))
/// .run();
/// assert_eq!(report.decided_values(), vec![4]); // p1 coordinates round 1
/// ```
#[derive(Clone, Debug)]
pub struct ChandraToueg<V> {
    me: ProcessId,
    n: usize,
    t: usize,
    round: u64,
    est: V,
    ts: u64,
    replied: bool,
    suspected: PidSet,
    bufs: BTreeMap<u64, RoundBuf<V>>,
    relayed_decide: bool,
    decided_round: Option<u64>,
}

impl<V: Clone + Eq + fmt::Debug> ChandraToueg<V> {
    /// Creates process `me` of an `n`-process, `t`-resilient instance
    /// (`t < n/2` required).
    pub fn new(me: ProcessId, n: usize, t: usize, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(2 * t < n, "CT96 requires a correct majority (t < n/2)");
        ChandraToueg {
            me,
            n,
            t,
            round: 0,
            est: proposal,
            ts: 0,
            replied: false,
            suspected: PidSet::empty(n),
            bufs: BTreeMap::new(),
            relayed_decide: false,
            decided_round: None,
        }
    }

    /// The coordinator of asynchronous round `r`: `p_{((r-1) mod n) + 1}`.
    pub fn coordinator_of(r: u64, n: usize) -> ProcessId {
        ProcessId::new(((r - 1) % n as u64) as u32 + 1)
    }

    /// The round this process decided in, if it has.
    pub fn decided_round(&self) -> Option<u64> {
        self.decided_round
    }

    /// The current asynchronous round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The resilience bound this instance was built for.
    pub fn resilience(&self) -> usize {
        self.t
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    fn enter_round(&mut self, r: u64, fx: &mut Effects<CtMsg<V>, V>) {
        self.round = r;
        self.replied = false;
        let coord = Self::coordinator_of(r, self.n);
        // Phase 1: everyone ships its timestamped estimate to the
        // coordinator (self-delivery is immediate for the coordinator).
        let est = self.est.clone();
        let ts = self.ts;
        if coord == self.me {
            let me = self.me;
            self.bufs
                .entry(r)
                .or_default()
                .estimates
                .push((me, est, ts));
            self.check_phase2(fx);
        } else {
            fx.send(coord, CtMsg::Estimate { round: r, est, ts });
        }
        self.check_phase3(fx);
    }

    /// Phase 2 (coordinator only): majority of estimates collected →
    /// propose the one with the largest adoption timestamp.
    fn check_phase2(&mut self, fx: &mut Effects<CtMsg<V>, V>) {
        let r = self.round;
        if Self::coordinator_of(r, self.n) != self.me {
            return;
        }
        let majority = self.majority();
        let buf = self.bufs.entry(r).or_default();
        if buf.proposal_sent || buf.estimates.len() < majority {
            return;
        }
        let (_, best, _) = buf
            .estimates
            .iter()
            .max_by_key(|(p, _, ts)| (*ts, std::cmp::Reverse(*p)))
            .expect("majority ≥ 1")
            .clone();
        buf.proposal_sent = true;
        buf.proposal = Some(best.clone());
        fx.broadcast_others(
            self.me,
            self.n,
            CtMsg::Propose {
                round: r,
                est: best,
            },
        );
        self.check_phase3(fx);
    }

    /// Phase 3: adopt-and-ack on a proposal, or nack on suspicion, then
    /// move to the next round (CT96 processes do not linger — the
    /// coordinator's phase 4 runs against the round buffer).
    fn check_phase3(&mut self, fx: &mut Effects<CtMsg<V>, V>) {
        if self.replied {
            return;
        }
        let r = self.round;
        let coord = Self::coordinator_of(r, self.n);
        let proposal = self.bufs.entry(r).or_default().proposal.clone();
        match proposal {
            Some(v) => {
                self.replied = true;
                self.est = v;
                self.ts = r;
                if coord == self.me {
                    self.record_ack(r, fx);
                } else {
                    fx.send(coord, CtMsg::Ack { round: r });
                }
                self.enter_round(r + 1, fx);
            }
            None if self.suspected.contains(coord) => {
                self.replied = true;
                if coord != self.me {
                    fx.send(coord, CtMsg::Nack { round: r });
                }
                self.enter_round(r + 1, fx);
            }
            None => {} // keep waiting: asynchrony knows no timeout, only ◇S
        }
    }

    /// Phase 4 bookkeeping (coordinator of `r`): a majority of `ACK`s
    /// locks the proposal; R-broadcast the decision.
    fn record_ack(&mut self, r: u64, fx: &mut Effects<CtMsg<V>, V>) {
        let majority = self.majority();
        let buf = self.bufs.entry(r).or_default();
        buf.acks += 1;
        if buf.acks >= majority && !buf.decided_here && !self.relayed_decide {
            buf.decided_here = true;
            let value = buf.proposal.clone().expect("acks imply a proposal");
            self.relayed_decide = true;
            self.decided_round = Some(r);
            fx.broadcast_others(
                self.me,
                self.n,
                CtMsg::Decide {
                    round: r,
                    value: value.clone(),
                },
            );
            fx.decide(value);
        }
    }
}

impl<V> TimedProcess for ChandraToueg<V>
where
    V: Clone + Eq + fmt::Debug,
{
    type Msg = CtMsg<V>;
    type Output = V;

    fn on_start(&mut self, fx: &mut Effects<CtMsg<V>, V>) {
        self.enter_round(1, fx);
    }

    fn on_message(
        &mut self,
        _at: Ticks,
        from: ProcessId,
        msg: CtMsg<V>,
        fx: &mut Effects<CtMsg<V>, V>,
    ) {
        match msg {
            CtMsg::Estimate { round, est, ts } => {
                let buf = self.bufs.entry(round).or_default();
                if !buf.estimates.iter().any(|(p, _, _)| *p == from) {
                    buf.estimates.push((from, est, ts));
                }
                if round == self.round {
                    self.check_phase2(fx);
                } else if round < self.round
                    && Self::coordinator_of(round, self.n) == self.me
                    && !self.bufs.entry(round).or_default().proposal_sent
                {
                    // A straggler estimate can still complete an old
                    // phase 2 — the proposal stays useful for laggards.
                    let saved = self.round;
                    self.round = round;
                    self.check_phase2(fx);
                    self.round = saved;
                }
            }
            CtMsg::Propose { round, est } => {
                let buf = self.bufs.entry(round).or_default();
                if buf.proposal.is_none() {
                    buf.proposal = Some(est);
                }
                if round == self.round {
                    self.check_phase3(fx);
                }
            }
            CtMsg::Ack { round } => self.record_ack(round, fx),
            CtMsg::Nack { round: _ } => {
                // Nacks carry no information under majority-ack deciding;
                // they exist so the wire protocol matches CT96's shape.
            }
            CtMsg::Decide { round, value } => {
                if !self.relayed_decide {
                    self.relayed_decide = true;
                    self.decided_round = Some(round);
                    fx.broadcast_others(
                        self.me,
                        self.n,
                        CtMsg::Decide {
                            round,
                            value: value.clone(),
                        },
                    );
                }
                fx.decide(value);
            }
        }
    }

    fn on_suspicion(&mut self, _at: Ticks, suspect: ProcessId, fx: &mut Effects<CtMsg<V>, V>) {
        self.suspected.insert(suspect);
        if Self::coordinator_of(self.round, self.n) == suspect {
            self.check_phase3(fx);
        }
    }

    fn on_timer(&mut self, _at: Ticks, _id: u64, _fx: &mut Effects<CtMsg<V>, V>) {}
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn ct_processes<V: Clone + Eq + fmt::Debug>(
    n: usize,
    t: usize,
    proposals: &[V],
) -> Vec<ChandraToueg<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| ChandraToueg::new(ProcessId::new(i as u32 + 1), n, t, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_events::{DelayModel, FdSpec, TimedCrash, TimedKernel};

    fn run_ct(
        n: usize,
        t: usize,
        proposals: &[u64],
        crashes: &[(u32, TimedCrash)],
        fd: FdSpec,
    ) -> twostep_events::TimedReport<u64> {
        let mut kernel = TimedKernel::new(ct_processes(n, t, proposals), DelayModel::Fixed(100));
        for (rank, crash) in crashes {
            kernel = kernel.crash(ProcessId::new(*rank), *crash);
        }
        kernel.fd(fd).horizon(1_000_000).run()
    }

    #[test]
    fn failure_free_decides_coordinator_value_in_round_one() {
        let report = run_ct(5, 2, &[3, 1, 4, 1, 5], &[], FdSpec::accurate(10));
        assert_eq!(report.decided_values(), vec![3]);
        assert!(report.decisions.iter().all(|d| d.is_some()));
        assert!(!report.hit_horizon);
    }

    #[test]
    fn crashed_first_coordinator_is_suspected_and_bypassed() {
        let report = run_ct(
            5,
            2,
            &[9, 7, 7, 7, 7],
            &[(
                1,
                TimedCrash {
                    at: 0,
                    keep_sends: 0,
                },
            )],
            FdSpec::accurate(10),
        );
        assert_eq!(
            report.decided_values(),
            vec![7],
            "p2's round-2 proposal wins"
        );
        for (i, d) in report.decisions.iter().enumerate() {
            if i != 0 {
                assert!(d.is_some(), "p{} decided", i + 1);
            }
        }
    }

    #[test]
    fn false_suspicions_delay_but_never_split_the_decision() {
        // A minority nacks round 1 due to injected false suspicions; the
        // coordinator still gathers a majority of acks and decides.
        let fd = FdSpec {
            accurate_latency: Some(10),
            injected_suspicions: vec![
                (0, ProcessId::new(4), ProcessId::new(1)),
                (0, ProcessId::new(5), ProcessId::new(1)),
            ],
        };
        let report = run_ct(5, 2, &[2, 4, 6, 8, 10], &[], fd);
        assert_eq!(report.decided_values().len(), 1, "uniform agreement");
        assert!(report.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn timestamp_locking_prevents_value_loss_across_rounds() {
        // p1 proposes in round 1 and a majority adopts (ts = 1), but p1
        // crashes before gathering acks.  Any later coordinator must pick
        // a ts=1 estimate — i.e. p1's value — never a fresh ts=0 one.
        let report = run_ct(
            5,
            2,
            &[42, 1, 2, 3, 4],
            // Crash lands between p1's proposal broadcast (t=100, when a
            // majority of estimates arrives) and its first ack (t=200):
            // the proposal is out, adopted with ts = 1, but never decided
            // by its coordinator.
            &[(
                1,
                TimedCrash {
                    at: 150,
                    keep_sends: 0,
                },
            )],
            FdSpec::accurate(10),
        );
        let vals = report.decided_values();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0], 42, "the locked round-1 value survives the crash");
    }

    #[test]
    fn deterministic_given_equal_inputs() {
        let go = || {
            run_ct(
                7,
                3,
                &[5, 6, 7, 8, 9, 10, 11],
                &[(
                    1,
                    TimedCrash {
                        at: 50,
                        keep_sends: 2,
                    },
                )],
                FdSpec::accurate(25),
            )
            .decisions
        };
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "correct majority")]
    fn rejects_t_at_least_half() {
        let _ = ChandraToueg::new(ProcessId::new(1), 4, 2, 0u64);
    }

    #[test]
    fn coordinator_rotation_wraps_around() {
        assert_eq!(ChandraToueg::<u64>::coordinator_of(1, 3), ProcessId::new(1));
        assert_eq!(ChandraToueg::<u64>::coordinator_of(3, 3), ProcessId::new(3));
        assert_eq!(ChandraToueg::<u64>::coordinator_of(4, 3), ProcessId::new(1));
    }
}
