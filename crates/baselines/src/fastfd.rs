//! Uniform consensus with a **fast failure detector** — a reconstruction of
//! the approach of Aguilera, Le Lann and Toueg (DISC'02), the related work
//! the paper singles out as the *other* way to beat the classic `f+2`
//! bound ("these two approaches can be seen as complementary").
//!
//! ## Model
//!
//! Timed synchronous system: every message arrives within `D`; a process
//! that crashes at time `c` is reported to every live process by the
//! detector within `d ≪ D`.  Our kernel's oracle reports at **exactly**
//! `c + d` to every observer, a deterministic instantiation of the
//! `d`-timely detector under which all live processes always hold
//! *identical* suspicion sets — the property the DISC'02 algorithm's
//! timing analysis leans on.
//!
//! ## Reconstructed algorithm
//!
//! 1. At time 0 every process broadcasts its proposal.
//! 2. Process `q` decides at the earliest *deadline* `D + k·d` such that
//!    `k = |suspected(D + k·d)|` (a fixpoint: each new suspicion pushes the
//!    deadline out by `d`), deciding the **minimum proposal received from
//!    an unsuspected process**.
//!
//! Why this is uniform: if `p ∉ suspected(τ)` at a deadline `τ = D + k·d`,
//! then `p` had not crashed by `τ - d ≥ D`, so `p`'s time-0 broadcast
//! completed and *everyone* holds `p`'s proposal; and because the oracle
//! delivers notices to all observers simultaneously, every process that
//! reaches a deadline evaluates the same fixpoint over the same suspicion
//! set, hence decides the same value at the same time.  With `f` actual
//! crashes the fixpoint is reached at `k ≤ f`, so the decision time is at
//! most **`D + f·d`** — the ALT'02 bound the paper compares against in its
//! Section 2.2 discussion (decision in one `D` plus one detection latency
//! per actual failure, vs the extended model's `(f+1)(D+d)`).

use std::fmt;
use twostep_events::{Effects, TimedProcess};
use twostep_model::timing::Ticks;
use twostep_model::{PidSet, ProcessId};

/// One process of the fast-FD consensus.
#[derive(Clone, Debug)]
pub struct FastFd<V> {
    me: ProcessId,
    n: usize,
    /// Message delay bound `D`.
    big_d: Ticks,
    /// Detection latency `d`.
    small_d: Ticks,
    proposal: V,
    /// Proposals received so far (slot per process; own filled at start).
    received: Vec<Option<V>>,
    suspected: PidSet,
}

impl<V: Clone + Ord> FastFd<V> {
    /// Creates process `me` of an `n`-process instance with timing
    /// parameters `(D, d)`.
    pub fn new(me: ProcessId, n: usize, big_d: Ticks, small_d: Ticks, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(
            small_d <= big_d,
            "the fast failure detector premise is d <= D (d << D in practice); \
             with d > D a time-0 crash can escape detection until after the \
             k=0 deadline and the fixpoint argument collapses"
        );
        FastFd {
            me,
            n,
            big_d,
            small_d,
            proposal,
            received: vec![None; n],
            suspected: PidSet::empty(n),
        }
    }

    /// The deadline for suspicion count `k`: `D + k·d`.
    fn deadline(&self, k: usize) -> Ticks {
        self.big_d + k as Ticks * self.small_d
    }

    fn try_decide(&mut self, at: Ticks, fx: &mut Effects<V, V>) {
        let k = self.suspected.len();
        if at < self.deadline(k) {
            return; // a timer for the current deadline is (or will be) armed
        }
        // Fixpoint reached: decide min proposal among unsuspected senders.
        let mut best: Option<&V> = None;
        for pid in ProcessId::all(self.n) {
            if self.suspected.contains(pid) {
                continue;
            }
            if let Some(v) = &self.received[pid.idx()] {
                if best.is_none_or(|b| v < b) {
                    best = Some(v);
                }
            }
        }
        let v = best
            .expect("an unsuspected process exists and its broadcast completed")
            .clone();
        fx.decide(v);
    }
}

impl<V> TimedProcess for FastFd<V>
where
    V: Clone + Ord + Eq + fmt::Debug,
{
    type Msg = V;
    type Output = V;

    fn on_start(&mut self, fx: &mut Effects<V, V>) {
        self.received[self.me.idx()] = Some(self.proposal.clone());
        fx.broadcast_others(self.me, self.n, self.proposal.clone());
        // Deadline for k = 0.
        fx.set_timer(0, self.deadline(0));
    }

    fn on_message(&mut self, _at: Ticks, from: ProcessId, msg: V, _fx: &mut Effects<V, V>) {
        self.received[from.idx()] = Some(msg);
    }

    fn on_suspicion(&mut self, at: Ticks, suspect: ProcessId, fx: &mut Effects<V, V>) {
        if !self.suspected.insert(suspect) {
            return;
        }
        let k = self.suspected.len();
        let dl = self.deadline(k);
        if dl > at {
            fx.set_timer(k as u64, dl - at);
        } else {
            // Late crash: the new deadline is already past — the fixpoint
            // holds right now (simultaneously at every live process).
            self.try_decide(at, fx);
        }
    }

    fn on_timer(&mut self, at: Ticks, id: u64, fx: &mut Effects<V, V>) {
        // Stale timers (armed for an old k) fail the fixpoint test inside.
        let _ = id;
        self.try_decide(at, fx);
    }
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn fastfd_processes<V: Clone + Ord>(
    n: usize,
    big_d: Ticks,
    small_d: Ticks,
    proposals: &[V],
) -> Vec<FastFd<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process required");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| FastFd::new(ProcessId::from_idx(i), n, big_d, small_d, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_events::{DelayModel, FdSpec, TimedCrash, TimedKernel};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    const D: Ticks = 1000;
    const SMALL: Ticks = 50;

    fn kernel(proposals: &[u64]) -> TimedKernel<FastFd<u64>> {
        TimedKernel::new(
            fastfd_processes(proposals.len(), D, SMALL, proposals),
            DelayModel::Fixed(D),
        )
        .fd(FdSpec::accurate(SMALL))
    }

    #[test]
    fn failure_free_decides_at_big_d() {
        let proposals = [104u64, 101, 103];
        let report = kernel(&proposals).run();
        for d in &report.decisions {
            let (v, t) = d.as_ref().unwrap();
            assert_eq!(*v, 101);
            assert_eq!(*t, D, "k = 0 fixpoint at exactly D");
        }
        assert_eq!(report.messages_sent, 3 * 2, "all-to-all broadcast");
    }

    #[test]
    fn one_crash_decides_at_d_plus_d() {
        // p_1 dies at time 0 mid-broadcast delivering only to p_2: the
        // minimum 100 must be excluded everywhere (p_1 suspected by d),
        // and decisions land at D + 1·d.
        let proposals = [100u64, 200, 300];
        let report = kernel(&proposals)
            .crash(
                pid(1),
                TimedCrash {
                    at: 0,
                    keep_sends: 1,
                },
            )
            .run();
        assert!(report.decisions[0].is_none());
        for d in report.decisions.iter().skip(1) {
            let (v, t) = d.as_ref().unwrap();
            assert_eq!(*v, 200, "p_1's value excluded even where received");
            assert_eq!(*t, D + SMALL, "D + f·d with f = 1");
        }
    }

    #[test]
    fn late_crash_after_complete_broadcast_keeps_value() {
        // p_1 completes its broadcast and is scheduled to crash at 980.
        // It actually dies on its first event at ≥ 980 (the proposals
        // arriving at 1000), so its suspicion notices reach the survivors
        // at 1050 — after their k=0 deadlines at 1000.  The survivors
        // therefore decide at 1000 with p_1 unsuspected, and p_1's value
        // is included: a *completed* broadcast's value survives its
        // sender's crash, exactly like a completed line-4 execution locks
        // the estimate in the paper's algorithm.
        let proposals = [100u64, 200, 300];
        let report = kernel(&proposals)
            .crash(
                pid(1),
                TimedCrash {
                    at: 980,
                    keep_sends: 0,
                },
            )
            .run();
        for d in report.decisions.iter().skip(1) {
            let (v, t) = d.as_ref().unwrap();
            assert_eq!(*v, 100, "completed broadcast's value survives");
            assert_eq!(*t, D);
        }
    }

    #[test]
    fn cascade_matches_d_plus_f_d() {
        // f crashes all at time 0: every deadline extension lands at
        // D + f·d exactly.
        let n = 6;
        let proposals: Vec<u64> = (1..=n as u64).map(|i| 100 + i).collect();
        for f in 0..=3usize {
            let mut k = TimedKernel::new(
                fastfd_processes(n, D, SMALL, &proposals),
                DelayModel::Fixed(D),
            )
            .fd(FdSpec::accurate(SMALL));
            for j in 1..=f {
                k = k.crash(
                    pid(j as u32),
                    TimedCrash {
                        at: 0,
                        keep_sends: 0,
                    },
                );
            }
            let report = k.run();
            let last = report.last_decision_time().unwrap();
            assert_eq!(last, D + f as Ticks * SMALL, "f={f}");
            // All survivors agree on the min unsuspected proposal.
            let vals = report.decided_values();
            assert_eq!(vals.len(), 1, "f={f}: {vals:?}");
            assert_eq!(vals[0], 100 + f as u64 + 1);
        }
    }

    #[test]
    fn uniform_under_partial_broadcast_and_staggered_crashes() {
        // p_1 partial to {p_2}; p_2 dies on the messages arriving at D,
        // so its suspicion lands at D + d — the same instant as the
        // survivors' k=1 deadline.  Same-time ordering (suspicions before
        // timers) makes every survivor count k=2 and push the deadline to
        // D + 2d, excluding both dead proposals.  Survivors must agree.
        let proposals = [1u64, 2, 3, 4];
        let report = TimedKernel::new(
            fastfd_processes(4, D, SMALL, &proposals),
            DelayModel::Fixed(D),
        )
        .fd(FdSpec::accurate(SMALL))
        .crash(
            pid(1),
            TimedCrash {
                at: 0,
                keep_sends: 1,
            },
        )
        .crash(
            pid(2),
            TimedCrash {
                at: D,
                keep_sends: 0,
            },
        )
        .run();
        assert!(report.decisions[0].is_none());
        assert!(report.decisions[1].is_none(), "p_2 died at its deadline");
        let vals = report.decided_values();
        assert_eq!(vals.len(), 1, "uniform among deciders: {vals:?}");
        assert_eq!(
            vals[0], 3,
            "p_1 and p_2 both suspected by the final deadline"
        );
        // Decisions at D + 2d.
        assert_eq!(report.last_decision_time(), Some(D + 2 * SMALL));
    }
}
