//! Early-deciding/stopping uniform consensus for the **classic**
//! synchronous model: `min(f+2, t+1)` rounds (Charron-Bost–Schiper,
//! Keidar–Rajsbaum; algorithmic form after Raynal).
//!
//! This is the baseline the paper's `f+1` result must be measured against:
//! in the traditional model, early-deciding *uniform* consensus cannot beat
//! `f+2` (when `f ≤ t-2`), and the extended model's synchronization
//! messages buy exactly one round.
//!
//! ## The algorithm
//!
//! Every process keeps `est` (min of everything seen), an `early` flag and
//! the count of processes heard from in the previous round (`prev_count`,
//! initialized to `n`):
//!
//! 1. each round, broadcast `EST(est, early)`; **if `early` was set, decide
//!    `est` right after the broadcast** and halt;
//! 2. on receive: `est := min(est, received)`; let `count` = processes
//!    heard from this round (including self);
//! 3. set `early` if (a) someone's flag was set, or (b) `count ==
//!    prev_count` — i.e. no *new* failure was perceived this round;
//! 4. at round `t+1`, decide unconditionally.
//!
//! Why (b) is safe: senders this round are a subset of senders last round
//! (crashes are permanent), so equal counts mean *equal sets* — and any
//! process that sends in round `r` completed all its round `r-1` sends, so
//! everything it knew then is already in `est`.  A smaller estimate held by
//! someone else would have had to travel through a sender this process
//! missed — contradiction.  The exhaustive model checker verifies this over
//! the full adversary space for small `n` (see `tests/`).

use std::fmt;
use twostep_model::{BitSized, ProcessId, Round, SpillCodec};
use twostep_sim::{Inbox, SendPlan, Step, SyncProtocol};

/// One early-stopping process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EarlyStopping<V> {
    me: ProcessId,
    n: usize,
    t: usize,
    est: V,
    early: bool,
    prev_count: usize,
}

impl<V: Clone> EarlyStopping<V> {
    /// Creates process `me` of an `n`-process, `t`-resilient instance.
    pub fn new(me: ProcessId, n: usize, t: usize, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(t < n, "resilience must leave a survivor");
        EarlyStopping {
            me,
            n,
            t,
            est: proposal,
            early: false,
            prev_count: n,
        }
    }

    /// The current estimate.
    pub fn estimate(&self) -> &V {
        &self.est
    }

    /// Whether the early-decision flag is set (deciding next round).
    pub fn is_early(&self) -> bool {
        self.early
    }
}

impl<V> SyncProtocol for EarlyStopping<V>
where
    V: Ord + Clone + Eq + fmt::Debug + BitSized + Send + Sync,
{
    type Msg = (V, bool);
    type Output = V;

    fn send(&mut self, _round: Round) -> SendPlan<(V, bool), V> {
        let mut plan = SendPlan::quiet();
        plan.data.reserve(self.n - 1);
        for dst in ProcessId::all(self.n) {
            if dst != self.me {
                plan.data.push((dst, (self.est.clone(), self.early)));
            }
        }
        if self.early {
            // Decide right after the (completed) broadcast — the engine
            // suppresses the decision if the broadcast is cut by a crash.
            plan = plan.then_decide(self.est.clone());
        }
        plan
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<(V, bool)>) -> Step<V> {
        let count = inbox.data().len() + 1; // senders heard + self
        let mut saw_flag = false;
        for (_, (est, early)) in inbox.data() {
            if *est < self.est {
                self.est = est.clone();
            }
            saw_flag |= *early;
        }
        if saw_flag || count == self.prev_count {
            self.early = true;
        }
        self.prev_count = count;

        if round.get() == self.t as u32 + 1 {
            Step::Decide(self.est.clone())
        } else {
            Step::Continue
        }
    }
}

/// Spillable state for the model checker's disk-backed and distributed
/// memo tiers.
impl<V: SpillCodec> SpillCodec for EarlyStopping<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.me.encode(out);
        self.n.encode(out);
        self.t.encode(out);
        self.est.encode(out);
        self.early.encode(out);
        self.prev_count.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let t = usize::decode(input)?;
        let est = V::decode(input)?;
        let early = bool::decode(input)?;
        let prev_count = usize::decode(input)?;
        (me.idx() < n && t < n).then_some(EarlyStopping {
            me,
            n,
            t,
            est,
            early,
            prev_count,
        })
    }
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn earlystop_processes<V: Clone>(n: usize, t: usize, proposals: &[V]) -> Vec<EarlyStopping<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process required");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| EarlyStopping::new(ProcessId::from_idx(i), n, t, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashSchedule, CrashStage, PidSet, SystemConfig};
    use twostep_sim::{check_uniform_consensus, ModelKind, Simulation};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn run(
        n: usize,
        t: usize,
        schedule: &CrashSchedule,
        proposals: &[u64],
    ) -> twostep_sim::RunReport<EarlyStopping<u64>> {
        let config = SystemConfig::new(n, t).unwrap();
        Simulation::new(config, ModelKind::Classic, schedule)
            .max_rounds(t as u32 + 2)
            .run(earlystop_processes(n, t, proposals))
            .unwrap()
    }

    #[test]
    fn failure_free_decides_in_two_rounds() {
        // f = 0 ⇒ round 1 is clean for everyone ⇒ early set ⇒ decide in
        // round 2 = f + 2 (the classic model cannot do better uniformly).
        let proposals = [104u64, 101, 103];
        let schedule = CrashSchedule::none(3);
        let report = run(3, 2, &schedule, &proposals);
        for d in &report.decisions {
            let d = d.as_ref().unwrap();
            assert_eq!(d.value, 101);
            assert_eq!(d.round, Round::new(2), "min(f+2, t+1) = 2");
        }
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(2));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn t_equals_one_decides_at_t_plus_1() {
        // min(f+2, t+1) caps at t+1 = 2 even with f = 0.
        let proposals = [9u64, 4];
        let schedule = CrashSchedule::none(2);
        let report = run(2, 1, &schedule, &proposals);
        for d in &report.decisions {
            assert_eq!(d.as_ref().unwrap().round.get(), 2);
            assert_eq!(d.as_ref().unwrap().value, 4);
        }
    }

    #[test]
    fn one_silent_crash_decides_by_f_plus_2() {
        let proposals = [50u64, 60, 70, 80];
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let report = run(4, 3, &schedule, &proposals);
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(3));
        assert!(spec.ok(), "{spec}");
        // All survivors decide 60 (the min among values that survived).
        for d in report.decisions.iter().skip(1) {
            assert_eq!(d.as_ref().unwrap().value, 60);
        }
        assert!(report.metrics.last_decision_round().unwrap() <= Round::new(3));
    }

    #[test]
    fn staggered_crashes_respect_min_bound() {
        // f = 2 crashes spread over two rounds: bound min(f+2, t+1) = 4.
        let proposals = [5u64, 6, 7, 8, 9];
        let schedule = CrashSchedule::none(5)
            .with_crash(
                pid(1),
                CrashPoint::new(
                    Round::FIRST,
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(5, [pid(2)]),
                    },
                ),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(
                    Round::new(2),
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(5, [pid(3)]),
                    },
                ),
            );
        let report = run(5, 3, &schedule, &proposals);
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(4));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn early_decider_crashing_mid_broadcast_stays_uniform() {
        // The uniform-agreement trap this algorithm is built to survive:
        // p_2 sets early in round 1, broadcasts its flagged estimate in
        // round 2 but crashes mid-broadcast (reaching only p_3) — and
        // since the broadcast did not complete, p_2 does NOT decide.
        // Survivors must still agree among themselves.
        let proposals = [10u64, 20, 30, 40];
        let schedule = CrashSchedule::none(4).with_crash(
            pid(2),
            CrashPoint::new(
                Round::new(2),
                CrashStage::MidData {
                    delivered: PidSet::from_iter(4, [pid(3)]),
                },
            ),
        );
        let report = run(4, 2, &schedule, &proposals);
        assert!(
            report.decisions[1].is_none(),
            "p_2's interrupted broadcast must suppress its decision"
        );
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(4));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn cascade_reaches_t_plus_1() {
        // Worst case: a fresh crash every round keeps suppressing early
        // decisions; the t+1 fallback fires.
        let proposals = [1u64, 2, 3, 4];
        let schedule = CrashSchedule::none(4)
            .with_crash(
                pid(1),
                CrashPoint::new(
                    Round::FIRST,
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(2)]),
                    },
                ),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(
                    Round::new(2),
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(3)]),
                    },
                ),
            )
            .with_crash(
                pid(3),
                CrashPoint::new(
                    Round::new(3),
                    CrashStage::MidData {
                        delivered: PidSet::empty(4),
                    },
                ),
            );
        let report = run(4, 3, &schedule, &proposals);
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(4));
        assert!(spec.ok(), "{spec}");
        let d4 = report.decisions[3].as_ref().unwrap();
        assert_eq!(d4.round, Round::new(4), "fallback at t+1");
    }

    #[test]
    fn accessors() {
        let p = EarlyStopping::new(pid(1), 3, 1, 5u64);
        assert_eq!(*p.estimate(), 5);
        assert!(!p.is_early());
    }
}
