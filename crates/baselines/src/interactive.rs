//! Interactive consistency: the vector-agreement problem behind the
//! paper's `t+1` lower-bound citation.
//!
//! The paper's reference \[10\] (Fischer–Lynch 1982, *A Lower Bound for the
//! Time to Assure Interactive Consistency*) proves the `t+1`-round bound
//! for this problem — agreement not on a single value but on a **vector**
//! with one slot per process:
//!
//! * **Agreement** — all deciders obtain the same vector;
//! * **Validity** — slot `i` holds `v_i` (the proposal of `p_{i+1}`)
//!   whenever `p_{i+1}` is correct; a faulty process's slot holds either
//!   its real proposal or `⊥` (here `None`), consistently for everyone.
//!
//! Consensus reduces to it (decide any agreed non-`⊥` slot), which is why
//! the `t+1` bound transfers and why the paper can cite \[10\] and
//! Aguilera–Toueg interchangeably.  The implementation floods labelled
//! pairs `(rank, value)` for `t+1` rounds on the **classic** model — the
//! same clean-round argument as [`FloodSet`](crate::FloodSet), lifted to
//! vectors: some round among `1..=t+1` is crash-free, after which all
//! live processes hold identical slot sets forever.

use std::fmt;
use twostep_model::{BitSized, ProcessId, Round, SpillCodec};
use twostep_sim::{Inbox, SendPlan, Step, SyncProtocol};

/// One interactive-consistency process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InteractiveConsistency<V> {
    me: ProcessId,
    n: usize,
    t: usize,
    /// `vector[i]` = the proposal of `p_{i+1}`, once learned.
    vector: Vec<Option<V>>,
    /// Slots learned since the last broadcast: `(rank, value)` pairs.
    fresh: Vec<(u32, V)>,
}

impl<V: Clone> InteractiveConsistency<V> {
    /// Creates process `me` of an `n`-process, `t`-resilient instance.
    pub fn new(me: ProcessId, n: usize, t: usize, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(t < n, "resilience must leave a survivor");
        let mut vector = vec![None; n];
        vector[me.idx()] = Some(proposal.clone());
        InteractiveConsistency {
            me,
            n,
            t,
            vector,
            fresh: vec![(me.rank(), proposal)],
        }
    }

    /// The slots this process has filled so far.
    pub fn vector(&self) -> &[Option<V>] {
        &self.vector
    }

    /// The decision round: always `t + 1` (the \[10\] lower bound is tight).
    pub fn decision_round(&self) -> Round {
        Round::new(self.t as u32 + 1)
    }

    /// How many slots are still unknown.
    pub fn missing_slots(&self) -> usize {
        self.vector.iter().filter(|s| s.is_none()).count()
    }
}

impl<V> SyncProtocol for InteractiveConsistency<V>
where
    V: Clone + Eq + fmt::Debug + BitSized + std::hash::Hash + Send + Sync,
{
    type Msg = Vec<(u32, V)>;
    type Output = Vec<Option<V>>;

    fn send(&mut self, _round: Round) -> SendPlan<Self::Msg, Self::Output> {
        let payload = std::mem::take(&mut self.fresh);
        if payload.is_empty() {
            return SendPlan::quiet();
        }
        let mut plan = SendPlan::quiet();
        plan.data.reserve(self.n - 1);
        for dst in ProcessId::all(self.n) {
            if dst != self.me {
                plan.data.push((dst, payload.clone()));
            }
        }
        plan
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<Self::Msg>) -> Step<Self::Output> {
        for (_, pairs) in inbox.data() {
            for (rank, value) in pairs {
                let slot = &mut self.vector[ProcessId::new(*rank).idx()];
                if slot.is_none() {
                    *slot = Some(value.clone());
                    self.fresh.push((*rank, value.clone()));
                }
            }
        }
        if round == self.decision_round() {
            Step::Decide(self.vector.clone())
        } else {
            Step::Continue
        }
    }
}

/// Spillable state for the model checker's disk-backed and distributed
/// memo tiers.
impl<V: SpillCodec> SpillCodec for InteractiveConsistency<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.me.encode(out);
        self.n.encode(out);
        self.t.encode(out);
        self.vector.encode(out);
        self.fresh.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let t = usize::decode(input)?;
        let vector = Vec::<Option<V>>::decode(input)?;
        let fresh = Vec::<(u32, V)>::decode(input)?;
        (me.idx() < n && t < n && vector.len() == n).then_some(InteractiveConsistency {
            me,
            n,
            t,
            vector,
            fresh,
        })
    }
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn interactive_processes<V: Clone>(
    n: usize,
    t: usize,
    proposals: &[V],
) -> Vec<InteractiveConsistency<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process required");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| InteractiveConsistency::new(ProcessId::from_idx(i), n, t, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashSchedule, CrashStage, PidSet, SystemConfig};
    use twostep_sim::{ModelKind, Simulation};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn run(
        n: usize,
        t: usize,
        schedule: &CrashSchedule,
        proposals: &[u64],
    ) -> twostep_sim::RunReport<InteractiveConsistency<u64>> {
        let config = SystemConfig::new(n, t).unwrap();
        Simulation::new(config, ModelKind::Classic, schedule)
            .max_rounds(t as u32 + 2)
            .run(interactive_processes(n, t, proposals))
            .unwrap()
    }

    /// All decided vectors must be identical; returns the agreed vector.
    fn agreed_vector(
        report: &twostep_sim::RunReport<InteractiveConsistency<u64>>,
    ) -> Vec<Option<u64>> {
        let mut decided = report.decisions.iter().flatten().map(|d| d.value.clone());
        let first = decided.next().expect("someone decides");
        for v in decided {
            assert_eq!(v, first, "vector agreement violated");
        }
        first
    }

    #[test]
    fn failure_free_vector_is_complete_and_exact() {
        let proposals = [11u64, 22, 33, 44];
        let schedule = CrashSchedule::none(4);
        let report = run(4, 2, &schedule, &proposals);
        let vector = agreed_vector(&report);
        assert_eq!(
            vector,
            proposals.iter().map(|v| Some(*v)).collect::<Vec<_>>()
        );
        for d in report.decisions.iter().flatten() {
            assert_eq!(d.round, Round::new(3), "decides at t+1");
        }
    }

    #[test]
    fn correct_processes_slots_are_never_bot() {
        // p_1 whispers its value to p_2 and dies; p_2 dies before the
        // relay lands everywhere.  Slot 1 may be ⊥ or 11 — but slots of
        // correct processes must hold their true proposals.
        let proposals = [11u64, 22, 33, 44];
        let schedule = CrashSchedule::none(4)
            .with_crash(
                pid(1),
                CrashPoint::new(
                    Round::FIRST,
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(2)]),
                    },
                ),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(Round::new(2), CrashStage::BeforeSend),
            );
        let report = run(4, 2, &schedule, &proposals);
        let vector = agreed_vector(&report);
        assert_eq!(vector[2], Some(33));
        assert_eq!(vector[3], Some(44));
        // p_2 broadcast fully in round 1 before its round-2 crash.
        assert_eq!(vector[1], Some(22));
        // p_1's value died with its only carrier.
        assert_eq!(vector[0], None);
    }

    #[test]
    fn faulty_slot_is_consistent_even_when_filled() {
        // p_1 reaches everyone in round 1, then dies: slot 1 is filled
        // identically for all deciders.
        let proposals = [7u64, 8, 9];
        let schedule = CrashSchedule::none(3).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        let report = run(3, 1, &schedule, &proposals);
        let vector = agreed_vector(&report);
        assert_eq!(vector, vec![Some(7), Some(8), Some(9)]);
    }

    #[test]
    fn consensus_reduces_to_interactive_consistency() {
        // Decide the minimum over agreed non-⊥ slots: a valid uniform
        // consensus (the reduction the lower-bound transfer uses).
        let proposals = [40u64, 10, 30];
        let schedule = CrashSchedule::none(3);
        let report = run(3, 1, &schedule, &proposals);
        let vector = agreed_vector(&report);
        let decided = vector.iter().flatten().min().copied().unwrap();
        assert_eq!(decided, 10);
        assert!(proposals.contains(&decided), "validity via the reduction");
    }

    #[test]
    fn t_zero_is_a_single_exchange() {
        let proposals = [5u64, 6];
        let schedule = CrashSchedule::none(2);
        let report = run(2, 0, &schedule, &proposals);
        let vector = agreed_vector(&report);
        assert_eq!(vector, vec![Some(5), Some(6)]);
        for d in report.decisions.iter().flatten() {
            assert_eq!(d.round, Round::FIRST);
        }
    }

    #[test]
    fn missing_slots_counts_down_as_rounds_progress() {
        let ic = InteractiveConsistency::new(pid(1), 5, 2, 9u64);
        assert_eq!(ic.missing_slots(), 4);
        assert_eq!(ic.vector()[0], Some(9));
        assert_eq!(ic.decision_round(), Round::new(3));
    }
}
