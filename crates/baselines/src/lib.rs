//! # twostep-baselines — every comparator the paper measures against
//!
//! The paper's claims are relative: `f+1` extended rounds must be compared
//! with what the classic synchronous model and the fast-failure-detector
//! model can do.  This crate implements those comparators from scratch:
//!
//! | baseline | model | property | rounds / time | module |
//! |---|---|---|---|---|
//! | [`FloodSet`] | classic synchronous | uniform | `t+1` rounds, regardless of `f` | [`floodset`] |
//! | [`EarlyStopping`] | classic synchronous | uniform | `min(f+2, t+1)` rounds | [`earlystop`] |
//! | [`NonUniformEarly`] | classic synchronous | **plain** (non-uniform) | decide by `f+1`, halt at `t+1` | [`earlydecide`] |
//! | [`FastFd`] | timed synchronous + fast FD | uniform | `D + f·d` | [`fastfd`] |
//! | [`InteractiveConsistency`] | classic synchronous | vector agreement | `t+1` rounds (the exact problem of the paper's `t+1` citation \[10\]) | [`interactive`] |
//!
//! The non-uniform row is what makes the paper's cell interesting: `f+1`
//! was already achievable classically — but only by giving up uniformity
//! (Charron-Bost–Schiper).  The round-based baselines run on the
//! `twostep-sim` engine under [`ModelKind::Classic`] (the engine rejects
//! any attempt to use the extended model's control step); the timed one
//! runs on the `twostep-events` kernel with the exact-latency fast-FD
//! oracle.
//!
//! [`ModelKind::Classic`]: twostep_sim::ModelKind::Classic

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod earlydecide;
pub mod earlystop;
pub mod fastfd;
pub mod floodset;
pub mod interactive;

pub use earlydecide::{nonuniform_processes, NonUniformEarly};
pub use earlystop::{earlystop_processes, EarlyStopping};
pub use fastfd::{fastfd_processes, FastFd};
pub use floodset::{floodset_processes, FloodSet};
pub use interactive::{interactive_processes, InteractiveConsistency};
