//! Early-deciding **non-uniform** consensus for the classic synchronous
//! model: decision by round `f+1`, halting at `t+1`.
//!
//! This baseline completes the paper's comparison landscape.  The classic
//! model admits `f+1`-round decisions for *plain* consensus (agreement
//! among correct processes only), but **uniform** consensus provably needs
//! `f+2` (Charron-Bost–Schiper, the paper's reference \[7\]).  The paper's
//! contribution is exactly the missing cell: with pipelined
//! synchronization messages, *uniform* consensus drops to `f+1`.
//!
//! | | classic model | extended model |
//! |---|---|---|
//! | plain consensus | `f+1` (this module) | `f+1` |
//! | uniform consensus | `min(f+2, t+1)` (`earlystop`) | **`f+1` (the paper)** |
//!
//! ## The algorithm
//!
//! Every round, every process broadcasts its estimate (minimum seen) and
//! tracks the *set* of processes heard from.  When that set repeats
//! between consecutive rounds — nobody the process was still listening to
//! failed — it **decides** its estimate but *keeps participating* (the
//! engine's [`Step::DecideAndContinue`]); it halts at the `t+1` fallback.
//! The set can shrink at most `f` times, so a repeat happens by round
//! `f+1`.  Deciding without halting avoids the information loss that
//! would otherwise cascade perceived failures (halting by `f+1` is
//! impossible — Dolev–Reischuk–Strong).
//!
//! Why only *plain* agreement: a process may decide on a clean-looking
//! view and then crash, while a value it never saw (delivered to others by
//! another crasher) wins among the survivors.  The exhaustive model
//! checker exhibits exactly such a run as a uniformity counterexample —
//! and verifies that plain agreement holds on *every* execution
//! (`tests/nonuniform_exhaustive.rs` in `twostep-modelcheck`).

use std::fmt;
use twostep_model::{BitSized, PidSet, ProcessId, Round, SpillCodec};
use twostep_sim::{Inbox, SendPlan, Step, SyncProtocol};

/// One process of the non-uniform early-deciding consensus.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NonUniformEarly<V> {
    me: ProcessId,
    n: usize,
    t: usize,
    est: V,
    /// Senders heard from in the previous round (self included);
    /// initialized to the full set.
    prev: PidSet,
    /// The early decision, once taken (the process keeps running).
    decided: Option<V>,
}

impl<V: Clone> NonUniformEarly<V> {
    /// Creates process `me` of an `n`-process, `t`-resilient instance.
    pub fn new(me: ProcessId, n: usize, t: usize, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(t < n, "resilience must leave a survivor");
        NonUniformEarly {
            me,
            n,
            t,
            est: proposal,
            prev: PidSet::full(n),
            decided: None,
        }
    }

    /// The early decision, if taken.
    pub fn decided(&self) -> Option<&V> {
        self.decided.as_ref()
    }
}

impl<V> SyncProtocol for NonUniformEarly<V>
where
    V: Ord + Clone + Eq + fmt::Debug + BitSized + Send + Sync,
{
    type Msg = V;
    type Output = V;

    fn send(&mut self, _round: Round) -> SendPlan<V, V> {
        // Broadcast every round until halting — including after an early
        // decision, which is what keeps other processes' views clean.
        let mut plan = SendPlan::quiet();
        plan.data.reserve(self.n - 1);
        for dst in ProcessId::all(self.n) {
            if dst != self.me {
                plan.data.push((dst, self.est.clone()));
            }
        }
        plan
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<V>) -> Step<V> {
        let mut senders = PidSet::empty(self.n);
        senders.insert(self.me);
        for (from, est) in inbox.data() {
            senders.insert(*from);
            if *est < self.est {
                self.est = est.clone();
            }
        }

        let clean = senders == self.prev;
        self.prev = senders;

        if round.get() == self.t as u32 + 1 {
            // Halting fallback; the recorded decision (if any) wins.
            return Step::Decide(self.decided.clone().unwrap_or_else(|| self.est.clone()));
        }
        if clean && self.decided.is_none() {
            self.decided = Some(self.est.clone());
            return Step::DecideAndContinue(self.est.clone());
        }
        Step::Continue
    }
}

/// Spillable state for the model checker's disk-backed and distributed
/// memo tiers.
impl<V: SpillCodec> SpillCodec for NonUniformEarly<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.me.encode(out);
        self.n.encode(out);
        self.t.encode(out);
        self.est.encode(out);
        self.prev.encode(out);
        self.decided.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let t = usize::decode(input)?;
        let est = V::decode(input)?;
        let prev = PidSet::decode(input)?;
        let decided = Option::<V>::decode(input)?;
        (me.idx() < n && t < n).then_some(NonUniformEarly {
            me,
            n,
            t,
            est,
            prev,
            decided,
        })
    }
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn nonuniform_processes<V: Clone>(
    n: usize,
    t: usize,
    proposals: &[V],
) -> Vec<NonUniformEarly<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process required");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| NonUniformEarly::new(ProcessId::from_idx(i), n, t, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashSchedule, CrashStage, SystemConfig};
    use twostep_sim::{ModelKind, Simulation};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn run(
        n: usize,
        t: usize,
        schedule: &CrashSchedule,
        proposals: &[u64],
    ) -> twostep_sim::RunReport<NonUniformEarly<u64>> {
        let config = SystemConfig::new(n, t).unwrap();
        Simulation::new(config, ModelKind::Classic, schedule)
            .max_rounds(t as u32 + 2)
            .run(nonuniform_processes(n, t, proposals))
            .unwrap()
    }

    #[test]
    fn failure_free_decides_in_one_round() {
        // The classic model's f+1 = 1: round 1 is clean for everyone —
        // one round faster than uniform early-stopping (f+2 = 2).
        let proposals = [9u64, 4, 7];
        let schedule = CrashSchedule::none(3);
        let report = run(3, 2, &schedule, &proposals);
        for d in &report.decisions {
            let d = d.as_ref().unwrap();
            assert_eq!(d.value, 4);
            assert_eq!(d.round, Round::FIRST, "decision by f+1 = 1");
        }
        assert!(!report.hit_round_cap, "halting at t+1 still happens");
    }

    #[test]
    fn one_visible_crash_decides_by_round_two() {
        let proposals = [9u64, 4, 7, 5];
        let schedule = CrashSchedule::none(4).with_crash(
            pid(2),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let report = run(4, 3, &schedule, &proposals);
        for (i, d) in report.decisions.iter().enumerate() {
            if i == 1 {
                assert!(d.is_none());
                continue;
            }
            let d = d.as_ref().unwrap();
            assert_eq!(d.value, 5, "p_2's 4 died with it");
            assert!(d.round.get() <= 2, "decision by f+1 = 2");
        }
    }

    #[test]
    fn deciders_keep_relaying_until_t_plus_1() {
        // After deciding in round 1, processes still broadcast in rounds
        // 2..t+1 — that is what protects the stragglers' views.
        let proposals = [3u64, 2, 1];
        let schedule = CrashSchedule::none(3);
        let report = run(3, 2, &schedule, &proposals);
        // Rounds executed = t+1 = 3 (halting), decisions all in round 1.
        assert_eq!(report.metrics.rounds_executed, 3);
        assert!(report
            .decisions
            .iter()
            .all(|d| d.as_ref().unwrap().round == Round::FIRST));
        // Traffic: 3 rounds × n(n-1) broadcasts.
        assert_eq!(report.metrics.data_messages, 3 * 6);
    }

    #[test]
    fn decided_accessor() {
        let mut p = NonUniformEarly::new(pid(1), 2, 1, 5u64);
        assert!(p.decided().is_none());
        // Simulate a clean round-1 view: only itself and p_2 expected…
        let inbox = Inbox::from_parts(vec![(pid(2), 7u64)], vec![]);
        let step = p.receive(Round::FIRST, &inbox);
        assert_eq!(step, Step::DecideAndContinue(5));
        assert_eq!(p.decided(), Some(&5));
    }
}
