//! FloodSet: the classic `t+1`-round flooding consensus (Lynch, *Distributed
//! Algorithms*, ch. 6), the paper's reference point for algorithms that
//! consider only the resilience bound `t`.
//!
//! Every round, each process broadcasts the values it learned since its
//! previous broadcast; after round `t+1` it decides the minimum of its
//! known set.  With at most `t` crashes, some round among `1..=t+1` is
//! crash-free, after which all live processes hold identical sets, so the
//! (deterministic) decision rule yields uniform agreement.  The round
//! complexity is `t+1` **regardless of `f`** — exactly what early-deciding
//! algorithms and the paper's extended model improve on.
//!
//! Runs on the **classic** model (no control messages); the engine enforces
//! that.

use std::collections::BTreeSet;
use std::fmt;
use twostep_model::{BitSized, ProcessId, Round, SpillCodec};
use twostep_sim::{Inbox, SendPlan, Step, SyncProtocol};

/// One FloodSet process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FloodSet<V: Ord> {
    me: ProcessId,
    n: usize,
    t: usize,
    /// Everything learned so far (always contains the own proposal).
    known: BTreeSet<V>,
    /// Values learned since the last broadcast — the next round's payload.
    fresh: Vec<V>,
}

impl<V: Ord + Clone> FloodSet<V> {
    /// Creates process `me` of an `n`-process, `t`-resilient instance.
    pub fn new(me: ProcessId, n: usize, t: usize, proposal: V) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        assert!(t < n, "resilience must leave a survivor");
        let mut known = BTreeSet::new();
        known.insert(proposal.clone());
        FloodSet {
            me,
            n,
            t,
            known,
            fresh: vec![proposal],
        }
    }

    /// The values this process currently knows.
    pub fn known(&self) -> &BTreeSet<V> {
        &self.known
    }

    /// The decision round: always `t + 1`.
    pub fn decision_round(&self) -> Round {
        Round::new(self.t as u32 + 1)
    }
}

impl<V> SyncProtocol for FloodSet<V>
where
    V: Ord + Clone + Eq + fmt::Debug + BitSized + Send + Sync,
{
    type Msg = Vec<V>;
    type Output = V;

    fn send(&mut self, _round: Round) -> SendPlan<Vec<V>, V> {
        let payload = std::mem::take(&mut self.fresh);
        if payload.is_empty() {
            return SendPlan::quiet();
        }
        let mut plan = SendPlan::quiet();
        plan.data.reserve(self.n - 1);
        for dst in ProcessId::all(self.n) {
            if dst != self.me {
                plan.data.push((dst, payload.clone()));
            }
        }
        plan
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<Vec<V>>) -> Step<V> {
        for (_, values) in inbox.data() {
            for v in values {
                if self.known.insert(v.clone()) {
                    self.fresh.push(v.clone());
                }
            }
        }
        if round == self.decision_round() {
            Step::Decide(
                self.known
                    .iter()
                    .next()
                    .expect("known always holds the own proposal")
                    .clone(),
            )
        } else {
            Step::Continue
        }
    }
}

/// Spillable state, so FloodSet runs under the model checker's two-tier
/// memo and distributed engine (it is the classic-model half of the
/// differential suites).
impl<V: Ord + SpillCodec> SpillCodec for FloodSet<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.me.encode(out);
        self.n.encode(out);
        self.t.encode(out);
        self.known.encode(out);
        self.fresh.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let t = usize::decode(input)?;
        let known = BTreeSet::<V>::decode(input)?;
        let fresh = Vec::<V>::decode(input)?;
        (me.idx() < n && t < n).then_some(FloodSet {
            me,
            n,
            t,
            known,
            fresh,
        })
    }

    /// **Deliberate opt-outs** from the deeper symmetry tiers (the
    /// defaults already say `false`; these overrides pin the reasoning
    /// so a refactor cannot flip them silently):
    ///
    /// * not *value-symmetric* — FloodSet decides `min(W)` (line 4), and
    ///   `min` does not commute with an arbitrary value involution (swap
    ///   `0 ↔ 1` in `W = {0, 1}` and the decision flips from the swapped
    ///   `0` to the swapped `1`'s preimage);
    /// * no *rank-inert* actives — every FloodSet process broadcasts
    ///   every round until it decides, so each active's rank stays
    ///   dynamics-relevant (its crash pattern aims deliveries at
    ///   specific ranks) for its whole active life.
    ///
    /// FloodSet still benefits from the always-sound settled-record
    /// canonicalization tier.
    fn value_symmetric() -> bool {
        false
    }

    fn rank_inert(&self, _ctx: &twostep_model::SymmetryContext) -> bool {
        false
    }
}

/// Builds the `n` instances for `proposals[i]` = proposal of `p_{i+1}`.
pub fn floodset_processes<V: Ord + Clone>(n: usize, t: usize, proposals: &[V]) -> Vec<FloodSet<V>> {
    assert_eq!(proposals.len(), n, "one proposal per process required");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| FloodSet::new(ProcessId::from_idx(i), n, t, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashSchedule, CrashStage, PidSet, SystemConfig};
    use twostep_sim::{check_uniform_consensus, ModelKind, Simulation};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn run(
        n: usize,
        t: usize,
        schedule: &CrashSchedule,
        proposals: &[u64],
    ) -> twostep_sim::RunReport<FloodSet<u64>> {
        let config = SystemConfig::new(n, t).unwrap();
        Simulation::new(config, ModelKind::Classic, schedule)
            .max_rounds(t as u32 + 2)
            .run(floodset_processes(n, t, proposals))
            .unwrap()
    }

    #[test]
    fn failure_free_decides_min_at_t_plus_1() {
        let proposals = [104u64, 101, 103, 102];
        let schedule = CrashSchedule::none(4);
        let report = run(4, 2, &schedule, &proposals);
        for d in &report.decisions {
            let d = d.as_ref().unwrap();
            assert_eq!(d.value, 101, "minimum of all proposals");
            assert_eq!(d.round, Round::new(3), "decides at t+1 = 3 even with f=0");
        }
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(3));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn hidden_minimum_chain_still_agrees() {
        // p_1 holds the minimum and leaks it to p_2 only, then p_2 dies
        // mid-relay reaching p_3 only — the classic chain scenario flooding
        // is built for.  With t = 2 and 3 rounds the value still reaches
        // everyone alive... or dies with its carriers; either way the spec
        // holds.
        let proposals = [1u64, 500, 600, 700];
        let schedule = CrashSchedule::none(4)
            .with_crash(
                pid(1),
                CrashPoint::new(
                    Round::FIRST,
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(2)]),
                    },
                ),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(
                    Round::new(2),
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(3)]),
                    },
                ),
            );
        let report = run(4, 2, &schedule, &proposals);
        // The chain p_1 → p_2 → p_3 happened; p_3 relays in round 3, so
        // p_4 learns 1 as well: everyone decides 1.
        for d in report.decisions.iter().skip(2) {
            assert_eq!(d.as_ref().unwrap().value, 1);
        }
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(3));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn value_dies_with_its_carriers() {
        // Minimum leaks to p_2 only; p_2 dies before relaying: 1 is gone,
        // survivors agree on the next minimum.  Uniformity holds because
        // nobody ever decided 1.
        let proposals = [1u64, 500, 600, 700];
        let schedule = CrashSchedule::none(4)
            .with_crash(
                pid(1),
                CrashPoint::new(
                    Round::FIRST,
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(2)]),
                    },
                ),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(Round::new(2), CrashStage::BeforeSend),
            );
        let report = run(4, 2, &schedule, &proposals);
        for d in report.decisions.iter().skip(2) {
            assert_eq!(d.as_ref().unwrap().value, 500);
        }
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(3));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn decide_then_die_at_final_round_is_uniform() {
        let proposals = [5u64, 9, 7];
        let schedule = CrashSchedule::none(3).with_crash(
            pid(2),
            CrashPoint::new(Round::new(2), CrashStage::EndOfRound),
        );
        let report = run(3, 1, &schedule, &proposals);
        let d2 = report.decisions[1]
            .as_ref()
            .expect("decided at t+1 then died");
        assert_eq!(d2.value, 5);
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(2));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn fresh_only_payloads_shrink_traffic() {
        // After round 1, a process with no news stays silent: the classic
        // "send only new values" optimization.
        let proposals = [3u64, 3, 3];
        let schedule = CrashSchedule::none(3);
        let report = run(3, 1, &schedule, &proposals);
        // Round 1: 3 processes × 2 destinations × 1 value; round 2: all
        // sets already complete ⇒ zero messages.
        assert_eq!(report.metrics.data_messages, 6);
        let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(2));
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn t_zero_decides_immediately() {
        let proposals = [8u64, 2];
        let schedule = CrashSchedule::none(2);
        let report = run(2, 0, &schedule, &proposals);
        for d in &report.decisions {
            assert_eq!(d.as_ref().unwrap().round, Round::FIRST);
            assert_eq!(d.as_ref().unwrap().value, 2);
        }
    }
}
