//! Property tests for the fast-FD consensus reconstruction: uniform
//! agreement and the `D + f·d` decision-time shape under randomized crash
//! patterns (times, partial-broadcast cuts, victim sets).

use proptest::prelude::*;
use twostep_baselines::fastfd_processes;
use twostep_events::{DelayModel, FdSpec, TimedCrash, TimedKernel};
use twostep_model::ProcessId;

const D: u64 = 1000;
const SMALL: u64 = 40;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn uniform_agreement_under_random_crashes(
        n in 3usize..=9,
        crashes in prop::collection::vec(
            (1u32..=9, 0u64..=3000, 0usize..=9),
            0..3,
        ),
    ) {
        let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
        let mut kernel = TimedKernel::new(
            fastfd_processes(n, D, SMALL, &proposals),
            DelayModel::Fixed(D),
        )
        .fd(FdSpec::accurate(SMALL));
        let mut victims = Vec::new();
        for (rank, at, keep) in &crashes {
            let rank = (*rank % n as u32) + 1;
            if victims.contains(&rank) || victims.len() >= n - 1 {
                continue;
            }
            victims.push(rank);
            kernel = kernel.crash(
                ProcessId::new(rank),
                TimedCrash {
                    at: *at,
                    keep_sends: *keep,
                },
            );
        }
        let report = kernel.horizon(100_000).run();
        prop_assert!(!report.hit_horizon);
        // Uniform agreement across all deciders.
        let vals = report.decided_values();
        prop_assert!(vals.len() <= 1, "{:?}", vals);
        // Every survivor decides, and decisions respect D + f·d with the
        // actual number of *suspected-before-decision* crashes bounded by
        // the victim count.
        let f = victims.len() as u64;
        if let Some(t_last) = report.last_decision_time() {
            prop_assert!(t_last <= D + f * SMALL, "last={} bound={}", t_last, D + f * SMALL);
            prop_assert!(t_last >= D);
        }
        // Validity: the decided value is one of the proposals.
        if let Some(v) = vals.first() {
            prop_assert!(proposals.contains(v));
        }
    }

    #[test]
    fn failure_free_always_decides_min_at_d(n in 2usize..=12, seed in any::<u64>()) {
        let proposals: Vec<u64> = (0..n as u64)
            .map(|i| seed.wrapping_add(i * 2654435761) % 10_000)
            .collect();
        let report = TimedKernel::new(
            fastfd_processes(n, D, SMALL, &proposals),
            DelayModel::Fixed(D),
        )
        .fd(FdSpec::accurate(SMALL))
        .run();
        let min = *proposals.iter().min().unwrap();
        for d in report.decisions.iter() {
            let (v, t) = d.as_ref().unwrap();
            prop_assert_eq!(*v, min);
            prop_assert_eq!(*t, D);
        }
    }
}
