//! The discrete-event kernel: a deterministic priority-queue executor for
//! timed message-passing systems with crash faults and a failure-detector
//! oracle.
//!
//! Determinism: events are ordered by `(time, sequence number)`; sequence
//! numbers are assigned at enqueue time, so equal-time events fire in
//! enqueue order and a run is a pure function of (processes, delay model,
//! crash specs, injected suspicions).
//!
//! Crash semantics: a [`TimedCrash`] names an absolute time `at` and a
//! `keep_sends` budget.  The process handles events strictly before `at`
//! normally; the **first** handler invoked at a time `≥ at` is its last —
//! only the first `keep_sends` sends of that invocation are emitted (its
//! timers and decision are discarded), after which the process is dead.
//! This reproduces, in the timed domain, the extended model's "crash during
//! an ordered send sequence delivers a prefix".
//!
//! Failure detection: with [`FdSpec::accurate`], every crash at time `c` is
//! reported to every live process at exactly `c + latency` — a
//! deterministic instantiation of the *fast failure detector* of
//! Aguilera–Le Lann–Toueg (every observer learns within `d`, here exactly
//! at `d`).  [`FdSpec::injected_suspicions`] additionally delivers false
//! (◇S-style) suspicions for the asynchronous experiments.

use crate::process::{Effects, TimedProcess};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// Message delay model.
#[derive(Clone, Debug)]
pub enum DelayModel {
    /// Every message takes exactly `Ticks` (the synchronous bound `D`).
    Fixed(Ticks),
    /// Per-message delay drawn uniformly from `[min, max]`, deterministic
    /// in `seed` and the message sequence number.
    Uniform {
        /// Minimum delay.
        min: Ticks,
        /// Maximum delay (inclusive).
        max: Ticks,
        /// RNG seed; two runs with equal seeds see equal delays.
        seed: u64,
    },
}

impl DelayModel {
    fn delay_of(&self, seq: u64) -> Ticks {
        match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { min, max, seed } => {
                debug_assert!(min <= max);
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                rng.gen_range(*min..=*max)
            }
        }
    }

    /// The worst-case delay this model can produce (the `D` of the timed
    /// bounds).
    pub fn max_delay(&self) -> Ticks {
        match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { max, .. } => *max,
        }
    }
}

/// A scheduled crash of one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedCrash {
    /// The crash time: the first handler at `time ≥ at` is the last.
    pub at: Ticks,
    /// How many sends of that final handler still go out (prefix).
    pub keep_sends: usize,
}

/// Failure-detector configuration.
#[derive(Clone, Debug, Default)]
pub struct FdSpec {
    /// If set, every real crash at `c` is reported to every live process
    /// at `c + latency` (the fast-FD oracle).
    pub accurate_latency: Option<Ticks>,
    /// Extra (possibly false) suspicion deliveries:
    /// `(when, observer, suspect)` — the ◇S simulation knob.
    pub injected_suspicions: Vec<(Ticks, ProcessId, ProcessId)>,
}

impl FdSpec {
    /// No failure detection at all.
    pub fn none() -> Self {
        FdSpec::default()
    }

    /// The accurate fast-FD oracle with detection latency `d`.
    pub fn accurate(d: Ticks) -> Self {
        FdSpec {
            accurate_latency: Some(d),
            injected_suspicions: Vec::new(),
        }
    }
}

/// Result of a timed run.
#[derive(Clone, Debug)]
pub struct TimedReport<O> {
    /// Per-process decision and its absolute time.
    pub decisions: Vec<Option<(O, Ticks)>>,
    /// Messages actually emitted (after crash prefix cuts).
    pub messages_sent: u64,
    /// The time of the last handled event.
    pub end_time: Ticks,
    /// Whether the run was cut off by the horizon rather than quiescence.
    pub hit_horizon: bool,
}

impl<O: Clone> TimedReport<O> {
    /// Latest decision time — the quantity the timed bounds (`(f+1)(D+d)`,
    /// `D + f·d`) speak about.
    pub fn last_decision_time(&self) -> Option<Ticks> {
        self.decisions.iter().flatten().map(|(_, t)| *t).max()
    }

    /// Distinct decided values.
    pub fn decided_values(&self) -> Vec<O>
    where
        O: PartialEq,
    {
        let mut vals = Vec::new();
        for (v, _) in self.decisions.iter().flatten() {
            if !vals.contains(v) {
                vals.push(v.clone());
            }
        }
        vals
    }
}

#[derive(Clone, Debug)]
enum Payload<M> {
    Start,
    Message { from: ProcessId, msg: M },
    Suspicion { suspect: ProcessId },
    Timer { id: u64 },
}

impl<M> Payload<M> {
    /// Same-time ordering rank.  A message with delay `≤ D` arriving *at*
    /// time `τ` is visible to any computation happening at `τ`, and a
    /// suspicion reported *at* `τ` is visible to a deadline evaluated at
    /// `τ` — so messages order before suspicions order before timers.
    /// This rule is global, keeping simultaneous observers consistent
    /// (which the fast-FD fixpoint argument relies on).
    fn rank(&self) -> u8 {
        match self {
            Payload::Start => 0,
            Payload::Message { .. } => 1,
            Payload::Suspicion { .. } => 2,
            Payload::Timer { .. } => 3,
        }
    }
}

struct QueuedEvent<M> {
    at: Ticks,
    rank: u8,
    seq: u64,
    to: ProcessId,
    payload: Payload<M>,
}

// Order by (time, kind rank, seq) — BinaryHeap is a max-heap, wrapped in
// Reverse at the call sites.
impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.rank == other.rank && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.rank, self.seq).cmp(&(other.at, other.rank, other.seq))
    }
}

/// The timed executor.
///
/// # Examples
///
/// A one-message protocol under a fixed delay, with a crash cutting the
/// sender's broadcast to a prefix:
///
/// ```
/// use twostep_events::{DelayModel, Effects, TimedCrash, TimedKernel, TimedProcess};
/// use twostep_model::{timing::Ticks, ProcessId};
///
/// #[derive(Clone)]
/// struct Hello { me: ProcessId, n: usize }
/// impl TimedProcess for Hello {
///     type Msg = u8;
///     type Output = u8;
///     fn on_start(&mut self, fx: &mut Effects<u8, u8>) {
///         if self.me == ProcessId::new(1) {
///             fx.broadcast_others(self.me, self.n, 9); // p2 first, then p3
///         }
///     }
///     fn on_message(&mut self, _at: Ticks, _f: ProcessId, m: u8, fx: &mut Effects<u8, u8>) {
///         fx.decide(m);
///     }
///     fn on_suspicion(&mut self, _a: Ticks, _s: ProcessId, _fx: &mut Effects<u8, u8>) {}
///     fn on_timer(&mut self, _a: Ticks, _i: u64, _fx: &mut Effects<u8, u8>) {}
/// }
///
/// let procs = (1..=3).map(|r| Hello { me: ProcessId::new(r), n: 3 }).collect();
/// let report = TimedKernel::new(procs, DelayModel::Fixed(50))
///     .crash(ProcessId::new(1), TimedCrash { at: 0, keep_sends: 1 })
///     .run();
/// assert_eq!(report.decisions[1], Some((9, 50))); // prefix reached p2
/// assert_eq!(report.decisions[2], None);          // p3 was cut off
/// ```
pub struct TimedKernel<P: TimedProcess> {
    procs: Vec<P>,
    delays: DelayModel,
    crashes: Vec<Option<TimedCrash>>,
    fd: FdSpec,
    horizon: Ticks,
    fifo: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum St {
    Alive,
    Decided,
    Dead,
}

impl<P: TimedProcess> TimedKernel<P> {
    /// Builds a kernel over `procs` (index `i` = `p_{i+1}`).
    pub fn new(procs: Vec<P>, delays: DelayModel) -> Self {
        let n = procs.len();
        TimedKernel {
            procs,
            delays,
            crashes: vec![None; n],
            fd: FdSpec::none(),
            horizon: Ticks::MAX,
            fifo: false,
        }
    }

    /// Schedules a crash.
    pub fn crash(mut self, pid: ProcessId, crash: TimedCrash) -> Self {
        self.crashes[pid.idx()] = Some(crash);
        self
    }

    /// Configures failure detection.
    pub fn fd(mut self, fd: FdSpec) -> Self {
        self.fd = fd;
        self
    }

    /// Caps simulated time; reaching the cap sets
    /// [`TimedReport::hit_horizon`].
    pub fn horizon(mut self, horizon: Ticks) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enforces per-channel **FIFO** delivery: on each directed channel
    /// `(from, to)` a message never arrives earlier than one sent before it.
    ///
    /// Under [`DelayModel::Fixed`] channels are FIFO already (equal delays,
    /// equal-time ties broken by send order), so this is a no-op there.
    /// Under [`DelayModel::Uniform`] a later message may draw a smaller
    /// delay and overtake; with `fifo()` its arrival is clamped to the
    /// latest arrival already scheduled on that channel (the queuing
    /// discipline of a reliable in-order transport such as TCP on a LAN).
    /// Chandy–Lamport snapshots (`twostep-snapshot`) are only correct on
    /// FIFO channels, which is why this knob exists.
    pub fn fifo(mut self) -> Self {
        self.fifo = true;
        self
    }

    /// Runs to quiescence (empty queue), all-terminated, or the horizon.
    pub fn run(self) -> TimedReport<P::Output> {
        self.run_with_states().0
    }

    /// Like [`run`](Self::run), additionally returning the final protocol
    /// states (for post-hoc inspection, e.g. which logical round an
    /// asynchronous algorithm decided in).
    pub fn run_with_states(mut self) -> (TimedReport<P::Output>, Vec<P>) {
        let n = self.procs.len();
        let mut st = vec![St::Alive; n];
        let mut decisions: Vec<Option<(P::Output, Ticks)>> = vec![None; n];
        let mut messages_sent: u64 = 0;
        let mut end_time: Ticks = 0;
        let mut hit_horizon = false;
        // Latest scheduled arrival per directed channel, flattened n×n
        // (sender-major); only consulted when `fifo` is on.
        let mut channel_front: Vec<Ticks> = if self.fifo {
            vec![0; n * n]
        } else {
            Vec::new()
        };

        let mut heap: BinaryHeap<Reverse<QueuedEvent<P::Msg>>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push = |heap: &mut BinaryHeap<Reverse<QueuedEvent<P::Msg>>>,
                    seq: &mut u64,
                    at: Ticks,
                    to: ProcessId,
                    payload: Payload<P::Msg>| {
            *seq += 1;
            heap.push(Reverse(QueuedEvent {
                at,
                rank: payload.rank(),
                seq: *seq,
                to,
                payload,
            }));
        };

        // Seed: start events for everyone, injected suspicions.
        for pid in ProcessId::all(n) {
            push(&mut heap, &mut seq, 0, pid, Payload::Start);
        }
        for (when, observer, suspect) in self.fd.injected_suspicions.clone() {
            push(
                &mut heap,
                &mut seq,
                when,
                observer,
                Payload::Suspicion { suspect },
            );
        }

        while let Some(Reverse(ev)) = heap.pop() {
            if ev.at > self.horizon {
                hit_horizon = true;
                break;
            }
            end_time = end_time.max(ev.at);
            let i = ev.to.idx();
            if st[i] != St::Alive {
                continue;
            }

            // Crash check: the first event at time ≥ `at` is this process's
            // last; its handler runs but only `keep_sends` sends survive.
            let dying = match self.crashes[i] {
                Some(c) if ev.at >= c.at => Some(c.keep_sends),
                _ => None,
            };

            let mut fx: Effects<P::Msg, P::Output> = Effects::new();
            match ev.payload {
                Payload::Start => self.procs[i].on_start(&mut fx),
                Payload::Message { from, msg } => {
                    self.procs[i].on_message(ev.at, from, msg, &mut fx)
                }
                Payload::Suspicion { suspect } => {
                    self.procs[i].on_suspicion(ev.at, suspect, &mut fx)
                }
                Payload::Timer { id } => self.procs[i].on_timer(ev.at, id, &mut fx),
            }

            // Apply effects, truncated to a prefix when dying.
            let send_budget = dying.unwrap_or(usize::MAX);
            for (k, (to, msg)) in fx.sends.into_iter().enumerate() {
                if k >= send_budget {
                    break;
                }
                messages_sent += 1;
                let delay = self.delays.delay_of(seq + 1);
                let mut arrival = ev.at + delay;
                if self.fifo {
                    let ch = &mut channel_front[i * n + to.idx()];
                    arrival = arrival.max(*ch);
                    *ch = arrival;
                }
                push(
                    &mut heap,
                    &mut seq,
                    arrival,
                    to,
                    Payload::Message { from: ev.to, msg },
                );
            }

            if let Some(keep) = dying {
                let _ = keep;
                st[i] = St::Dead;
                // Oracle: report the crash to every other live process.
                if let Some(d) = self.fd.accurate_latency {
                    for obs in ProcessId::all(n) {
                        if obs != ev.to {
                            push(
                                &mut heap,
                                &mut seq,
                                ev.at + d,
                                obs,
                                Payload::Suspicion { suspect: ev.to },
                            );
                        }
                    }
                }
                continue;
            }

            for (id, delay) in fx.timers {
                push(
                    &mut heap,
                    &mut seq,
                    ev.at + delay,
                    ev.to,
                    Payload::Timer { id },
                );
            }
            if let Some(v) = fx.decision {
                decisions[i] = Some((v, ev.at));
                st[i] = St::Decided;
            }

            if st.iter().all(|s| *s != St::Alive) {
                break;
            }
        }

        (
            TimedReport {
                decisions,
                messages_sent,
                end_time,
                hit_horizon,
            },
            self.procs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    /// p_1 sends PING to everyone at start; receivers decide on receipt;
    /// p_1 decides at its timer.
    #[derive(Clone)]
    struct Ping {
        me: ProcessId,
        n: usize,
    }

    impl TimedProcess for Ping {
        type Msg = u8;
        type Output = u8;

        fn on_start(&mut self, fx: &mut Effects<u8, u8>) {
            if self.me == ProcessId::new(1) {
                fx.broadcast_others(self.me, self.n, 7);
                fx.set_timer(0, 50);
            }
        }
        fn on_message(&mut self, _at: Ticks, _from: ProcessId, msg: u8, fx: &mut Effects<u8, u8>) {
            fx.decide(msg);
        }
        fn on_suspicion(&mut self, _at: Ticks, _s: ProcessId, _fx: &mut Effects<u8, u8>) {}
        fn on_timer(&mut self, _at: Ticks, _id: u64, fx: &mut Effects<u8, u8>) {
            fx.decide(7);
        }
    }

    #[test]
    fn fixed_delay_delivery_and_timer() {
        let procs = (1..=3).map(|r| Ping { me: pid(r), n: 3 }).collect();
        let report = TimedKernel::new(procs, DelayModel::Fixed(100)).run();
        assert_eq!(report.decisions[1], Some((7, 100)));
        assert_eq!(report.decisions[2], Some((7, 100)));
        assert_eq!(report.decisions[0], Some((7, 50)), "timer fired at 50");
        assert_eq!(report.messages_sent, 2);
        assert!(!report.hit_horizon);
        assert_eq!(report.last_decision_time(), Some(100));
    }

    #[test]
    fn crash_cuts_send_prefix() {
        // p_1 dies during its start broadcast keeping only the first send
        // (to p_2): p_3 never hears anything.
        let procs: Vec<Ping> = (1..=3).map(|r| Ping { me: pid(r), n: 3 }).collect();
        let report = TimedKernel::new(procs, DelayModel::Fixed(10))
            .crash(
                pid(1),
                TimedCrash {
                    at: 0,
                    keep_sends: 1,
                },
            )
            .run();
        assert_eq!(report.decisions[1], Some((7, 10)), "prefix reached p_2");
        assert_eq!(report.decisions[2], None, "p_3 cut off");
        assert_eq!(report.decisions[0], None, "dead processes do not decide");
        assert_eq!(report.messages_sent, 1);
    }

    #[test]
    fn fd_oracle_reports_at_exact_latency() {
        // p_2 must handle an event at a time ≥ 30 to die, so p_1 pokes it
        // with a message arriving exactly at 30.
        #[derive(Clone)]
        struct Poker {
            me: ProcessId,
        }
        impl TimedProcess for Poker {
            type Msg = u8;
            type Output = u32;
            fn on_start(&mut self, fx: &mut Effects<u8, u32>) {
                if self.me == ProcessId::new(1) {
                    fx.send(ProcessId::new(2), 1);
                }
            }
            fn on_message(&mut self, _a: Ticks, _f: ProcessId, _m: u8, _fx: &mut Effects<u8, u32>) {
            }
            fn on_suspicion(&mut self, at: Ticks, s: ProcessId, fx: &mut Effects<u8, u32>) {
                assert_eq!(at, 35);
                fx.decide(s.rank());
            }
            fn on_timer(&mut self, _a: Ticks, _i: u64, _fx: &mut Effects<u8, u32>) {}
        }
        let procs: Vec<Poker> = (1..=3).map(|r| Poker { me: pid(r) }).collect();
        let report = TimedKernel::new(procs, DelayModel::Fixed(30))
            .crash(
                pid(2),
                TimedCrash {
                    at: 30,
                    keep_sends: 0,
                },
            )
            .fd(FdSpec::accurate(5))
            .run();
        // p_1 and p_3 decide rank 2 at time 35.
        assert_eq!(report.decisions[0], Some((2, 35)));
        assert_eq!(report.decisions[2], Some((2, 35)));
    }

    #[test]
    fn injected_suspicions_are_delivered() {
        #[derive(Clone)]
        struct S {
            hits: u32,
        }
        impl TimedProcess for S {
            type Msg = u8;
            type Output = u32;
            fn on_start(&mut self, _fx: &mut Effects<u8, u32>) {}
            fn on_message(&mut self, _a: Ticks, _f: ProcessId, _m: u8, _fx: &mut Effects<u8, u32>) {
            }
            fn on_suspicion(&mut self, _at: Ticks, s: ProcessId, fx: &mut Effects<u8, u32>) {
                self.hits += 1;
                fx.decide(s.rank());
            }
            fn on_timer(&mut self, _a: Ticks, _i: u64, _fx: &mut Effects<u8, u32>) {}
        }
        let report = TimedKernel::new(vec![S { hits: 0 }, S { hits: 0 }], DelayModel::Fixed(1))
            .fd(FdSpec {
                accurate_latency: None,
                injected_suspicions: vec![(20, pid(1), pid(2))],
            })
            .run();
        assert_eq!(
            report.decisions[0],
            Some((2, 20)),
            "false suspicion delivered"
        );
        assert_eq!(report.decisions[1], None);
    }

    #[test]
    fn uniform_delays_are_deterministic() {
        let mk = || -> Vec<Ping> { (1..=4).map(|r| Ping { me: pid(r), n: 4 }).collect() };
        let d = DelayModel::Uniform {
            min: 10,
            max: 100,
            seed: 5,
        };
        let a = TimedKernel::new(mk(), d.clone()).run();
        let b = TimedKernel::new(mk(), d).run();
        assert_eq!(a.decisions.len(), b.decisions.len());
        for (x, y) in a.decisions.iter().zip(&b.decisions) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn horizon_cuts_runs() {
        let procs: Vec<Ping> = (1..=3).map(|r| Ping { me: pid(r), n: 3 }).collect();
        let report = TimedKernel::new(procs, DelayModel::Fixed(1000))
            .horizon(10)
            .run();
        assert!(report.hit_horizon);
        assert_eq!(report.decisions[1], None);
    }

    /// `p_1` fires `k` timers and sends the timer id to `p_2` from each
    /// handler; `p_2` records the arrival order.  Used by the FIFO tests.
    #[derive(Clone)]
    struct Stream {
        me: ProcessId,
        k: u64,
        seen: Vec<u64>,
    }
    impl TimedProcess for Stream {
        type Msg = u64;
        type Output = u8;
        fn on_start(&mut self, fx: &mut Effects<u64, u8>) {
            if self.me == ProcessId::new(1) {
                for id in 0..self.k {
                    fx.set_timer(id, 10 * (id + 1));
                }
            }
        }
        fn on_message(&mut self, _a: Ticks, _f: ProcessId, m: u64, _fx: &mut Effects<u64, u8>) {
            self.seen.push(m);
        }
        fn on_suspicion(&mut self, _a: Ticks, _s: ProcessId, _fx: &mut Effects<u64, u8>) {}
        fn on_timer(&mut self, _a: Ticks, id: u64, fx: &mut Effects<u64, u8>) {
            fx.send(ProcessId::new(2), id);
        }
    }

    fn stream_arrivals(seed: u64, fifo: bool) -> Vec<u64> {
        let procs = (1..=2)
            .map(|r| Stream {
                me: pid(r),
                k: 12,
                seen: Vec::new(),
            })
            .collect();
        let delays = DelayModel::Uniform {
            min: 1,
            max: 500,
            seed,
        };
        let kernel = TimedKernel::new(procs, delays);
        let kernel = if fifo { kernel.fifo() } else { kernel };
        let (_, states) = kernel.run_with_states();
        states[1].seen.clone()
    }

    #[test]
    fn fifo_clamp_restores_channel_order() {
        // Find a seed where wide uniform delays actually reorder the
        // stream, then check fifo() repairs exactly that run.
        let overtaking = (0..64).find(|&s| {
            let got = stream_arrivals(s, false);
            got.windows(2).any(|w| w[0] > w[1])
        });
        let seed = overtaking.expect("some seed reorders across 64 tries");
        let fixed = stream_arrivals(seed, true);
        assert_eq!(
            fixed,
            (0..12).collect::<Vec<_>>(),
            "fifo() delivers in send order"
        );
    }

    #[test]
    fn fifo_preserves_message_count_and_is_noop_for_fixed_delays() {
        let mk = || -> Vec<Ping> { (1..=4).map(|r| Ping { me: pid(r), n: 4 }).collect() };
        let plain = TimedKernel::new(mk(), DelayModel::Fixed(50)).run();
        let fifo = TimedKernel::new(mk(), DelayModel::Fixed(50)).fifo().run();
        assert_eq!(plain.messages_sent, fifo.messages_sent);
        assert_eq!(plain.decisions, fifo.decisions);
        assert_eq!(plain.end_time, fifo.end_time);
    }
}
