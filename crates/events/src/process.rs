//! The timed/asynchronous process interface.
//!
//! Unlike the lockstep `SyncProtocol` (of `twostep-sim`), a timed
//! process is a pure event handler: it reacts to message arrivals, failure
//! detector notices and its own timers, emitting *effects* (sends, timers,
//! a decision).  The kernel owns time; processes never read a clock other
//! than the `at` stamp handed to each handler.

use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// What a handler invocation wants the kernel to do.
#[derive(Clone, Debug)]
pub struct Effects<M, O> {
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) timers: Vec<(u64, Ticks)>,
    pub(crate) decision: Option<O>,
}

impl<M, O> Effects<M, O> {
    pub(crate) fn new() -> Self {
        Effects {
            sends: Vec::new(),
            timers: Vec::new(),
            decision: None,
        }
    }

    /// Queues a unicast message.  Sends are emitted **in call order**; a
    /// crash scheduled inside this handler cuts the sequence to a prefix
    /// (see [`TimedCrash`](crate::kernel::TimedCrash)) — the timed
    /// counterpart of the extended model's ordered sending.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues the same message to every process except `me`, in ascending
    /// rank order.
    pub fn broadcast_others(&mut self, me: ProcessId, n: usize, msg: M)
    where
        M: Clone,
    {
        for dst in ProcessId::all(n) {
            if dst != me {
                self.send(dst, msg.clone());
            }
        }
    }

    /// Arms a timer that fires `delay` ticks from now with the given id.
    /// Multiple timers may be outstanding; ids are process-local and may
    /// repeat (handlers disambiguate by their own state).
    pub fn set_timer(&mut self, id: u64, delay: Ticks) {
        self.timers.push((id, delay));
    }

    /// Records the decision.  The process halts after this handler: later
    /// events addressed to it are dropped (the paper's `return`).
    pub fn decide(&mut self, value: O) {
        debug_assert!(self.decision.is_none(), "decided twice in one handler");
        self.decision = Some(value);
    }
}

/// A process driven by the timed kernel.
pub trait TimedProcess {
    /// Message payload.
    type Msg: Clone;
    /// Decision value.
    type Output: Clone + Eq + std::fmt::Debug;

    /// Invoked once at time 0.
    fn on_start(&mut self, fx: &mut Effects<Self::Msg, Self::Output>);

    /// A message arrived.
    fn on_message(
        &mut self,
        at: Ticks,
        from: ProcessId,
        msg: Self::Msg,
        fx: &mut Effects<Self::Msg, Self::Output>,
    );

    /// The failure detector reports `suspect` as crashed.  With the
    /// accurate oracle this arrives exactly `d` after a real crash; test
    /// harnesses may also inject *false* suspicions (◇S-style), so
    /// implementations must not treat a notice as proof of death unless
    /// they opted into the accurate oracle.
    fn on_suspicion(
        &mut self,
        at: Ticks,
        suspect: ProcessId,
        fx: &mut Effects<Self::Msg, Self::Output>,
    );

    /// A timer armed by this process fired.
    fn on_timer(&mut self, at: Ticks, id: u64, fx: &mut Effects<Self::Msg, Self::Output>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_accumulate_in_order() {
        let mut fx: Effects<u64, u64> = Effects::new();
        fx.send(ProcessId::new(2), 10);
        fx.send(ProcessId::new(1), 20);
        fx.set_timer(7, 100);
        fx.decide(99);
        assert_eq!(
            fx.sends,
            vec![(ProcessId::new(2), 10), (ProcessId::new(1), 20)]
        );
        assert_eq!(fx.timers, vec![(7, 100)]);
        assert_eq!(fx.decision, Some(99));
    }

    #[test]
    fn broadcast_skips_self() {
        let mut fx: Effects<u64, u64> = Effects::new();
        fx.broadcast_others(ProcessId::new(2), 4, 5);
        let dsts: Vec<u32> = fx.sends.iter().map(|(d, _)| d.rank()).collect();
        assert_eq!(dsts, vec![1, 3, 4]);
    }
}
