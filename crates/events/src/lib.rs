//! # twostep-events — deterministic discrete-event timed kernel
//!
//! The round-based simulator (`twostep-sim`) covers the paper's own model;
//! two of its comparison points live in *timed* or *asynchronous* models
//! instead:
//!
//! * the **fast failure detector** consensus of Aguilera–Le Lann–Toueg
//!   (DISC'02), the paper's cited alternative for beating the classic
//!   `f+2` bound — a timed synchronous model where message delay is
//!   bounded by `D` and crashes are reported within `d ≪ D`;
//! * the **MR99** quorum-based consensus (Mostéfaoui–Raynal, DISC'99) for
//!   asynchronous systems with a ◇S failure detector, which Section 4 of
//!   the paper identifies as the structural twin of its algorithm.
//!
//! This crate provides the substrate both run on: a deterministic
//! event-queue executor ([`TimedKernel`]) with pluggable message delays
//! ([`DelayModel`]), ordered-prefix crash semantics ([`TimedCrash`] — the
//! timed counterpart of the extended model's commit-sequence cuts), and a
//! failure-detector oracle ([`FdSpec`]: the exact-latency fast-FD oracle
//! plus injected ◇S-style false suspicions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod process;

pub use kernel::{DelayModel, FdSpec, TimedCrash, TimedKernel, TimedReport};
pub use process::{Effects, TimedProcess};
