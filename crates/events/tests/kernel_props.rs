//! Property tests for the timed kernel: determinism, crash prefix cuts,
//! delay-model bounds, and oracle timing.

use proptest::prelude::*;
use twostep_events::{DelayModel, Effects, FdSpec, TimedCrash, TimedKernel, TimedProcess};
use twostep_model::timing::Ticks;
use twostep_model::ProcessId;

/// A gossip process: on start, broadcasts a token; every received token is
/// re-broadcast once with a decremented TTL; decides when it has seen
/// `quota` tokens.  Stresses queue ordering and fan-out.
#[derive(Clone, Debug)]
struct Gossip {
    me: ProcessId,
    n: usize,
    quota: u32,
    seen: u32,
}

impl TimedProcess for Gossip {
    type Msg = u8; // TTL
    type Output = u32;

    fn on_start(&mut self, fx: &mut Effects<u8, u32>) {
        fx.broadcast_others(self.me, self.n, 2);
    }
    fn on_message(&mut self, _at: Ticks, _from: ProcessId, ttl: u8, fx: &mut Effects<u8, u32>) {
        self.seen += 1;
        if self.seen >= self.quota {
            fx.decide(self.seen);
            return;
        }
        if ttl > 0 {
            fx.broadcast_others(self.me, self.n, ttl - 1);
        }
    }
    fn on_suspicion(&mut self, _at: Ticks, _s: ProcessId, _fx: &mut Effects<u8, u32>) {}
    fn on_timer(&mut self, _at: Ticks, _id: u64, _fx: &mut Effects<u8, u32>) {}
}

fn gossip(n: usize, quota: u32) -> Vec<Gossip> {
    (0..n)
        .map(|i| Gossip {
            me: ProcessId::from_idx(i),
            n,
            quota,
            seen: 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn runs_are_deterministic(
        n in 2usize..=6,
        quota in 1u32..=6,
        seed in any::<u64>(),
        min in 1u64..=50,
        span in 0u64..=200,
    ) {
        let delays = DelayModel::Uniform { min, max: min + span, seed };
        let run = || {
            TimedKernel::new(gossip(n, quota), delays.clone())
                .horizon(1_000_000)
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.messages_sent, b.messages_sent);
        prop_assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn crash_keep_sends_bounds_traffic(
        n in 3usize..=6,
        keep in 0usize..=5,
    ) {
        // p_1 dies at time 0 keeping `keep` sends of its start broadcast:
        // exactly min(keep, n-1) messages from p_1 reach the wire.
        let full = TimedKernel::new(gossip(n, u32::MAX), DelayModel::Fixed(10))
            .horizon(10_000)
            .run();
        let cut = TimedKernel::new(gossip(n, u32::MAX), DelayModel::Fixed(10))
            .crash(ProcessId::new(1), TimedCrash { at: 0, keep_sends: keep })
            .horizon(10_000)
            .run();
        let lost_from_p1 = (n - 1).saturating_sub(keep) as u64;
        // Losing p_1's tokens also removes the re-broadcast cascades they
        // would have triggered, so the cut run sends strictly fewer (or
        // equal when keep >= n-1) messages.
        if keep >= n - 1 {
            // p_1 transmitted everything before dying: only its *reactions*
            // are lost.
            prop_assert!(cut.messages_sent <= full.messages_sent);
        } else {
            prop_assert!(cut.messages_sent + lost_from_p1 <= full.messages_sent);
        }
    }

    #[test]
    fn fixed_delays_deliver_at_exact_offsets(d in 1u64..=1000) {
        let report = TimedKernel::new(gossip(2, 1), DelayModel::Fixed(d)).run();
        // Both processes receive the other's start token at exactly d and
        // decide then.
        prop_assert_eq!(report.decisions[0].as_ref().map(|(_, t)| *t), Some(d));
        prop_assert_eq!(report.decisions[1].as_ref().map(|(_, t)| *t), Some(d));
    }

    #[test]
    fn oracle_reports_exactly_at_latency(
        crash_at in 0u64..=500,
        latency in 1u64..=200,
    ) {
        #[derive(Clone)]
        struct Listener {
            me: ProcessId,
        }
        impl TimedProcess for Listener {
            type Msg = u8;
            type Output = Ticks;
            fn on_start(&mut self, fx: &mut Effects<u8, Ticks>) {
                if self.me == ProcessId::new(1) {
                    // Poke p_2 so it has an event to die on.
                    fx.send(ProcessId::new(2), 0);
                }
            }
            fn on_message(&mut self, _a: Ticks, _f: ProcessId, _m: u8, _fx: &mut Effects<u8, Ticks>) {}
            fn on_suspicion(&mut self, at: Ticks, _s: ProcessId, fx: &mut Effects<u8, Ticks>) {
                fx.decide(at);
            }
            fn on_timer(&mut self, _a: Ticks, _i: u64, _fx: &mut Effects<u8, Ticks>) {}
        }
        let procs = vec![
            Listener { me: ProcessId::new(1) },
            Listener { me: ProcessId::new(2) },
            Listener { me: ProcessId::new(3) },
        ];
        let report = TimedKernel::new(procs, DelayModel::Fixed(crash_at.max(1)))
            .crash(ProcessId::new(2), TimedCrash { at: crash_at, keep_sends: 0 })
            .fd(FdSpec::accurate(latency))
            .run();
        // p_2 dies on its first event at a time >= crash_at: its Start
        // event (time 0) when crash_at == 0, else the poke arriving at
        // delay = crash_at.max(1) >= crash_at.
        let death = if crash_at == 0 { 0 } else { crash_at.max(1) };
        prop_assert_eq!(report.decisions[0].as_ref().map(|(v, _)| *v), Some(death + latency));
        prop_assert_eq!(report.decisions[2].as_ref().map(|(v, _)| *v), Some(death + latency));
    }
}
