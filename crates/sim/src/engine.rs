//! The lockstep round engine for the extended (and classic) synchronous
//! model.
//!
//! [`Stepper`] executes one round at a time under explicit adversary
//! actions, which is what the exhaustive model checker needs; [`Simulation`]
//! drives a `Stepper` from a [`CrashSchedule`] until quiescence, which is
//! what tests, experiments and benchmarks use.
//!
//! ## Semantics enforced here (paper Section 2.1)
//!
//! * the complete send plan of a round is produced before anything of that
//!   round is delivered (no computation between the two send steps);
//! * a crash in the **data step** delivers an arbitrary subset of the data
//!   messages and *no* control message;
//! * a crash in the **control step** delivers all data and an ordered
//!   *prefix* of the control list;
//! * a message is *received* only if its destination executes the round's
//!   receive phase (it is alive, has not decided-and-halted, and is not
//!   crashing mid-send this round);
//! * a decision scheduled for the end of the send phase (Figure 1 line 6)
//!   is recorded only if the send phase completed — but an
//!   [`CrashStage::EndOfRound`] crash happens *after* the decision, which is
//!   precisely the "decide then die" scenario uniform agreement must
//!   survive;
//! * classic-model runs reject control messages outright (suppressing the
//!   second send step recovers the traditional model, Section 2.2).

use crate::protocol::{Inbox, SendPlan, Step, SyncProtocol};
use crate::trace::{Event, Trace, TraceLevel};
use std::fmt;
use std::sync::Arc;
use twostep_model::fault::ScheduleError;
use twostep_model::{
    BitSized, CrashSchedule, CrashStage, DeliveryOutcome, PidSet, ProcessId, Round, RunMetrics,
    SystemConfig,
};

/// Which round semantics the engine enforces.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelKind {
    /// The paper's extended model: data step + ordered control step.
    Extended,
    /// The traditional synchronous model: data step only; any attempt to
    /// send a control message is a protocol error.
    Classic,
}

/// Errors surfaced while executing a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A protocol emitted control messages under classic semantics.
    ControlInClassicModel {
        /// Offending process.
        pid: ProcessId,
        /// Round of the offence.
        round: Round,
    },
    /// The crash schedule failed validation against the configuration.
    BadSchedule(ScheduleError),
    /// The number of protocol instances does not match `n`.
    WrongProcessCount {
        /// Instances supplied.
        got: usize,
        /// Configured `n`.
        want: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ControlInClassicModel { pid, round } => write!(
                f,
                "{pid} sent a control message in round {round} under classic semantics"
            ),
            SimError::BadSchedule(e) => write!(f, "invalid crash schedule: {e}"),
            SimError::WrongProcessCount { got, want } => {
                write!(f, "got {got} protocol instances for n={want}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A recorded decision: value + the round it was taken in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision<O> {
    /// The decided value.
    pub value: O,
    /// The round in which the decision was taken.
    pub round: Round,
}

/// Lifecycle state of one process inside the engine.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProcStatus {
    /// Participating normally.
    Active,
    /// Decided and halted (the paper's `return`); round recorded in the
    /// decision table.
    Decided,
    /// Crashed in the given round.
    Crashed(Round),
}

/// The adversary's choice for a single round: which processes crash now and
/// at which stage.  Indexed by process; `None` = no crash this round.
pub type RoundActions = Vec<Option<CrashStage>>;

/// The externally visible shape of one process's send plan for a round:
/// enough for an adversary to enumerate its distinct crash outcomes,
/// nothing more (payloads stay hidden).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanShape {
    /// Destinations of the data step (order irrelevant).
    pub data_dests: Vec<ProcessId>,
    /// Length of the ordered control list.
    pub control_len: usize,
    /// Destinations of the ordered control list, in delivery order
    /// (`control_dests.len() == control_len`).  The model checker needs
    /// the identities — not just the count — to collapse crash prefixes
    /// that differ only in deliveries to already-settled receivers.
    pub control_dests: Vec<ProcessId>,
}

/// Round-at-a-time executor.  Drive it with [`Stepper::step`]; inspect state
/// with the accessors.  Cloneable, which is how the model checker forks
/// executions — and forking is **cheap**: per-process protocol snapshots
/// live behind [`Arc`]s shared between a stepper and its clones, so a
/// clone bumps `n` reference counts instead of deep-copying `n` protocol
/// states.  [`step`](Self::step) copies a snapshot on write
/// (`Arc::make_mut`) only for the processes it actually mutates — the
/// active ones — so the states of crashed and decided processes are
/// shared by every execution forked after their fate was sealed.  This
/// is the model checker's successor-generation hot path: late in an
/// exploration most processes are settled, and forking a child
/// configuration touches none of their snapshots.
pub struct Stepper<P: SyncProtocol> {
    config: SystemConfig,
    model: ModelKind,
    procs: Vec<Arc<P>>,
    status: Vec<ProcStatus>,
    decisions: Vec<Option<Decision<P::Output>>>,
    round: Round,
    metrics: RunMetrics,
    trace: Trace<P::Msg>,
    /// Reusable per-destination inboxes (cleared each round).  Scratch:
    /// their contents are only meaningful *inside* one [`step`](Self::step)
    /// call, so [`Clone`] gives the copy fresh empty inboxes instead of
    /// duplicating the previous round's dead messages.
    inboxes: Vec<Inbox<P::Msg>>,
    /// Per-round scratch (complete send plans, adversary delivery
    /// outcomes, receive eligibility), reused across [`step`](Self::step)
    /// calls so a step allocates none of its own bookkeeping.  Like the
    /// inboxes, never cloned.  `plans[i]` is meaningful only while
    /// `status[i]` is `Active` this round ([`SyncProtocol::send_into`]
    /// refills it in place); slots of settled processes hold stale
    /// plans that no phase reads.
    plans: Vec<SendPlan<P::Msg, P::Output>>,
    outcomes: Vec<Option<DeliveryOutcome>>,
    receives: Vec<bool>,
}

impl<P: SyncProtocol> Clone for Stepper<P> {
    fn clone(&self) -> Self {
        Stepper {
            config: self.config,
            model: self.model,
            procs: self.procs.clone(), // Arc bumps, not protocol deep-copies
            status: self.status.clone(),
            decisions: self.decisions.clone(),
            round: self.round,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            inboxes: (0..self.config.n()).map(|_| Inbox::new()).collect(),
            plans: Vec::new(),
            outcomes: Vec::new(),
            receives: Vec::new(),
        }
    }
}

impl<P: SyncProtocol> Stepper<P> {
    /// Creates a stepper over `procs` (one instance per process, `p_1`
    /// first).
    pub fn new(
        config: SystemConfig,
        model: ModelKind,
        trace_level: TraceLevel,
        procs: Vec<P>,
    ) -> Result<Self, SimError> {
        if procs.len() != config.n() {
            return Err(SimError::WrongProcessCount {
                got: procs.len(),
                want: config.n(),
            });
        }
        let n = config.n();
        Ok(Stepper {
            config,
            model,
            procs: procs.into_iter().map(Arc::new).collect(),
            status: vec![ProcStatus::Active; n],
            decisions: vec![None; n],
            round: Round::FIRST,
            metrics: RunMetrics::new(n),
            trace: Trace::new(trace_level),
            inboxes: (0..n).map(|_| Inbox::new()).collect(),
            plans: Vec::new(),
            outcomes: Vec::new(),
            receives: Vec::new(),
        })
    }

    /// Rewrites `self` into a copy of `source`, **reusing `self`'s
    /// buffers**: the status/decision/metrics vectors are refilled in
    /// place, a process snapshot whose `Arc` is uniquely owned is
    /// overwritten through it (no allocation), and the per-round scratch
    /// stays `self`'s own.  This is the model checker's fork path — a
    /// pooled stepper re-forked from a parent configuration allocates
    /// nothing in steady state, where `clone` would allocate half a
    /// dozen vectors per child.
    ///
    /// Both steppers must come from the same exploration (same `n`);
    /// forking across system sizes is a logic error.
    pub fn fork_from(&mut self, source: &Self)
    where
        P: Clone,
    {
        debug_assert_eq!(self.config.n(), source.config.n(), "fork across systems");
        self.config = source.config;
        self.model = source.model;
        self.round = source.round;
        for (mine, theirs) in self.procs.iter_mut().zip(&source.procs) {
            if Arc::ptr_eq(mine, theirs) {
                continue;
            }
            match Arc::get_mut(mine) {
                // Sole owner: refill the existing allocation.
                Some(slot) => slot.clone_from(theirs),
                // Shared: drop our handle and share the source's.
                None => *mine = Arc::clone(theirs),
            }
        }
        self.status.clone_from(&source.status);
        self.decisions.clone_from(&source.decisions);
        // RunMetrics implements clone_from buffer-reusingly itself.
        self.metrics.clone_from(&source.metrics);
        self.trace.clone_from(&source.trace);
    }

    /// The round the next [`step`](Self::step) will execute.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Per-process lifecycle status.
    pub fn status(&self) -> &[ProcStatus] {
        &self.status
    }

    /// Per-process decisions (present even for processes that crashed
    /// *after* deciding — uniform agreement quantifies over these).
    pub fn decisions(&self) -> &[Option<Decision<P::Output>>] {
        &self.decisions
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Recorded trace.
    pub fn trace(&self) -> &Trace<P::Msg> {
        &self.trace
    }

    /// The protocol instances (for state inspection / key encoding by the
    /// model checker), behind the copy-on-write `Arc`s that make cloning
    /// a stepper cheap.
    pub fn procs(&self) -> &[Arc<P>] {
        &self.procs
    }

    /// The configured system.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Whether no process is `Active` any more (every process decided or
    /// crashed) — nothing can ever happen again.
    pub fn is_quiescent(&self) -> bool {
        self.status.iter().all(|s| !matches!(s, ProcStatus::Active))
    }

    /// Processes currently `Active`.
    pub fn active(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ProcStatus::Active))
            .map(|(i, _)| ProcessId::from_idx(i))
    }

    /// The plan shape process `i` would produce this round, written into
    /// `shape` (its destination buffer is reused); `false` when the
    /// process is not active.  The allocation-free single-process
    /// counterpart of [`Self::peek_plan_shapes`], for the model
    /// checker's per-configuration enumeration loop.
    pub fn peek_plan_shape_into(&self, i: usize, shape: &mut PlanShape) -> bool
    where
        P: Clone,
    {
        if !matches!(self.status[i], ProcStatus::Active) {
            return false;
        }
        let plan = (*self.procs[i]).clone().send(self.round);
        shape.data_dests.clear();
        shape.data_dests.extend(plan.data.iter().map(|(d, _)| *d));
        shape.control_len = plan.control.len();
        shape.control_dests.clear();
        shape.control_dests.extend(plan.control.iter().copied());
        true
    }

    /// The *shape* (data destinations + control list length) of the plan
    /// each active process would produce this round, computed on clones so
    /// the real protocol state is untouched.
    ///
    /// The model checker uses this to enumerate exactly the distinct crash
    /// outcomes available to the adversary this round.
    pub fn peek_plan_shapes(&self) -> Vec<Option<PlanShape>>
    where
        P: Clone,
    {
        let round = self.round;
        self.procs
            .iter()
            .zip(&self.status)
            .map(|(p, s)| {
                if matches!(s, ProcStatus::Active) {
                    let plan = (**p).clone().send(round);
                    Some(PlanShape {
                        data_dests: plan.data.iter().map(|(d, _)| *d).collect(),
                        control_len: plan.control.len(),
                        control_dests: plan.control.clone(),
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Executes one full round under the given adversary `actions`.
    ///
    /// `actions[i]` is the crash stage of `p_{i+1}` *in this round*, or
    /// `None`.  Crashing an already-crashed or decided process is a no-op
    /// (the adversary wasted a move); schedule-level validation prevents it
    /// in normal runs.
    ///
    /// Needs `P: Clone` for the copy-on-write snapshots: a process whose
    /// state this round mutates is unshared (`Arc::make_mut`) first.  On
    /// an unforked stepper every `Arc` is unique and no clone happens.
    pub fn step(&mut self, actions: &RoundActions) -> Result<(), SimError>
    where
        P: Clone,
    {
        debug_assert_eq!(actions.len(), self.config.n());
        let n = self.config.n();
        let round = self.round;
        self.metrics.rounds_executed = round.get();
        self.trace.record(|| Event::RoundBegan { round });

        // --- Send phase, one pass per process: collect the complete
        // plan into the reusable per-slot scratch (each slot's buffers
        // are refilled in place, so a steady-state round allocates no
        // plan storage), materialize the adversary's delivery outcome,
        // and decide receive eligibility.  All plans are produced before
        // any delivery — the delivery loop below starts only after this
        // pass — so no computation can sneak in between the data and
        // control steps.
        self.plans.resize_with(n, SendPlan::quiet);
        self.outcomes.clear();
        self.receives.clear();
        for (i, action) in actions.iter().enumerate() {
            if !matches!(self.status[i], ProcStatus::Active) {
                self.outcomes.push(None);
                self.receives.push(false);
                continue;
            }
            let plan = &mut self.plans[i];
            plan.clear();
            Arc::make_mut(&mut self.procs[i]).send_into(round, plan);
            if self.model == ModelKind::Classic && !plan.control.is_empty() {
                return Err(SimError::ControlInClassicModel {
                    pid: ProcessId::from_idx(i),
                    round,
                });
            }
            let outcome = match action {
                Some(stage) => stage.effect(n),
                None => DeliveryOutcome::unimpeded(),
            };
            // Receive phase requires surviving the round's deliveries
            // and not halting on a send-phase decision.
            let receives_now = outcome.receives_this_round && plan.decide_after_send.is_none();
            self.outcomes.push(Some(outcome));
            self.receives.push(receives_now);
        }

        // --- Delivery: data step first, then control step, in sender rank
        // order so inboxes stay sorted by sender.
        for ib in &mut self.inboxes {
            ib.clear();
        }
        for i in 0..n {
            if !matches!(self.status[i], ProcStatus::Active) {
                continue;
            }
            let plan = &self.plans[i];
            let out = self.outcomes[i]
                .as_ref()
                .expect("active sender has an outcome");
            let from = ProcessId::from_idx(i);

            for (dst, msg) in &plan.data {
                // "Transmitted" = the sender put it on the wire (it passed
                // the sender's crash filter); Theorem 2's accounting counts
                // transmissions — a coordinator cannot know a destination
                // has already halted.  "Delivered" additionally requires
                // the destination to execute this round's receive phase.
                let transmitted = out
                    .data_filter
                    .as_ref()
                    .is_none_or(|filter| filter.contains(*dst));
                if transmitted {
                    self.metrics.count_data(msg.bit_size());
                }
                let delivered = transmitted && self.receives[dst.idx()];
                if delivered {
                    self.inboxes[dst.idx()].push_data(from, msg.clone());
                }
                self.trace.record(|| Event::Data {
                    round,
                    from,
                    to: *dst,
                    transmitted,
                    delivered,
                    msg: msg.clone(),
                });
            }

            let prefix = out
                .control_prefix
                .unwrap_or(plan.control.len())
                .min(plan.control.len());
            for (k, dst) in plan.control.iter().enumerate() {
                let transmitted = k < prefix;
                if transmitted {
                    self.metrics.count_control();
                }
                let delivered = transmitted && self.receives[dst.idx()];
                if delivered {
                    self.inboxes[dst.idx()].push_control(from);
                }
                self.trace.record(|| Event::Control {
                    round,
                    from,
                    to: *dst,
                    transmitted,
                    delivered,
                });
            }
        }

        // --- Send-phase decisions (Figure 1 line 6): recorded only when the
        // send phase completed, i.e. the process did not crash mid-send.
        for (i, action) in actions.iter().enumerate() {
            // Status is still the round-start status here: the send
            // phase never mutates it, and this loop only settles the
            // index it is currently processing.
            if !matches!(self.status[i], ProcStatus::Active) {
                continue;
            }
            let Some(value) = self.plans[i].decide_after_send.take() else {
                continue;
            };
            let completed = match action {
                None => true,
                Some(stage) => stage.completes_send_phase(),
            };
            if completed {
                self.record_decision(ProcessId::from_idx(i), value, round);
                self.status[i] = ProcStatus::Decided;
            }
        }

        // --- Receive + computation phase.  (A process that just decided in
        // its send phase skipped receive — filtered via `receives` above.)
        for i in 0..n {
            if !self.receives[i] {
                continue;
            }
            let pid = ProcessId::from_idx(i);
            match Arc::make_mut(&mut self.procs[i]).receive(round, &self.inboxes[i]) {
                Step::Continue => {}
                Step::Decide(value) => {
                    self.record_decision(pid, value, round);
                    self.status[i] = ProcStatus::Decided;
                }
                Step::DecideAndContinue(value) => {
                    // Early deciding, late stopping: record now, halt later.
                    self.record_decision(pid, value, round);
                }
            }
        }

        // --- Crashes take effect: any active process with an action dies
        // now (EndOfRound crashers participated fully above; a process that
        // decided this round and was scheduled to crash is marked crashed —
        // its decision stands, which is the uniform-agreement trap).
        for (i, action) in actions.iter().enumerate() {
            if action.is_some() && !matches!(self.status[i], ProcStatus::Crashed(_)) {
                self.status[i] = ProcStatus::Crashed(round);
                self.trace.record(|| Event::Crashed {
                    pid: ProcessId::from_idx(i),
                    round,
                });
            }
        }

        self.round = round.next();
        Ok(())
    }

    fn record_decision(&mut self, pid: ProcessId, value: P::Output, round: Round) {
        // First decision wins: an early decider (DecideAndContinue) later
        // emits a halting Decide whose value must not overwrite the
        // recorded one (and consensus processes decide at most once anyway).
        let slot = &mut self.decisions[pid.idx()];
        if slot.is_none() {
            self.metrics.record_decision(pid, round);
            self.trace.record(|| Event::Decided { pid, round });
            *slot = Some(Decision { value, round });
        }
    }

    /// Consumes the stepper into its outcome pieces.  Needs `P: Clone`
    /// only for final states still shared with a live clone (an unforked
    /// run unwraps every `Arc` without copying).
    pub fn finish(self, hit_round_cap: bool) -> RunReport<P>
    where
        P: Clone,
    {
        let crashed = PidSet::from_iter(
            self.config.n(),
            self.status
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, ProcStatus::Crashed(_)))
                .map(|(i, _)| ProcessId::from_idx(i)),
        );
        RunReport {
            decisions: self.decisions,
            crashed,
            metrics: self.metrics,
            trace: self.trace,
            hit_round_cap,
            final_states: self
                .procs
                .into_iter()
                .map(|p| Arc::try_unwrap(p).unwrap_or_else(|shared| (*shared).clone()))
                .collect(),
        }
    }
}

/// The result of a complete run.
#[derive(Clone)]
pub struct RunReport<P: SyncProtocol> {
    /// Per-process decision (present for decided-then-crashed processes
    /// too).
    pub decisions: Vec<Option<Decision<P::Output>>>,
    /// Processes that crashed during the run.
    pub crashed: PidSet,
    /// Metrics per Theorem 2 accounting.
    pub metrics: RunMetrics,
    /// Event trace (contents depend on the configured [`TraceLevel`]).
    pub trace: Trace<P::Msg>,
    /// Whether the run stopped because it hit the round cap rather than
    /// quiescence — a termination-property red flag.
    pub hit_round_cap: bool,
    /// The protocol instances in their final states.
    pub final_states: Vec<P>,
}

impl<P: SyncProtocol> fmt::Debug for RunReport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunReport")
            .field("decisions", &self.decisions)
            .field("crashed", &self.crashed)
            .field("metrics", &self.metrics)
            .field("hit_round_cap", &self.hit_round_cap)
            .finish_non_exhaustive()
    }
}

impl<P: SyncProtocol> RunReport<P> {
    /// The distinct decided values (for agreement inspection).
    pub fn decided_values(&self) -> Vec<&P::Output> {
        let mut vals: Vec<&P::Output> = Vec::new();
        for d in self.decisions.iter().flatten() {
            if !vals.contains(&&d.value) {
                vals.push(&d.value);
            }
        }
        vals
    }

    /// Latest decision round, the Theorem 1 quantity.
    pub fn last_decision_round(&self) -> Option<Round> {
        self.decisions.iter().flatten().map(|d| d.round).max()
    }
}

/// Whole-run driver: schedule in, report out.
///
/// # Examples
///
/// Running a trivial one-shot protocol (everyone decides 7 in round 1)
/// under the failure-free schedule:
///
/// ```
/// use twostep_model::{CrashSchedule, ProcessId, Round, SystemConfig};
/// use twostep_sim::{Inbox, ModelKind, SendPlan, Simulation, Step, SyncProtocol};
///
/// #[derive(Clone)]
/// struct Lucky;
/// impl SyncProtocol for Lucky {
///     type Msg = u8;
///     type Output = u8;
///     fn send(&mut self, _r: Round) -> SendPlan<u8, u8> { SendPlan::quiet() }
///     fn receive(&mut self, _r: Round, _i: &Inbox<u8>) -> Step<u8> { Step::Decide(7) }
/// }
///
/// let config = SystemConfig::new(3, 1).unwrap();
/// let schedule = CrashSchedule::none(3);
/// let report = Simulation::new(config, ModelKind::Extended, &schedule)
///     .run(vec![Lucky, Lucky, Lucky])
///     .unwrap();
/// assert!(report.decisions.iter().all(|d| d.as_ref().unwrap().value == 7));
/// ```
pub struct Simulation<'a> {
    config: SystemConfig,
    model: ModelKind,
    schedule: &'a CrashSchedule,
    max_rounds: u32,
    trace_level: TraceLevel,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation of `config` under `schedule`.
    ///
    /// The default round cap is `n + t + 2`, comfortably above every bound
    /// in the paper (`t+1` classic flooding being the largest); protocols
    /// that fail to terminate by then yield `hit_round_cap = true`.
    pub fn new(config: SystemConfig, model: ModelKind, schedule: &'a CrashSchedule) -> Self {
        Simulation {
            config,
            model,
            schedule,
            max_rounds: (config.n() + config.t() + 2) as u32,
            trace_level: TraceLevel::Off,
        }
    }

    /// Overrides the safety round cap.
    pub fn max_rounds(mut self, cap: u32) -> Self {
        self.max_rounds = cap;
        self
    }

    /// Sets the trace verbosity.
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Runs `procs` to quiescence (or the round cap).
    pub fn run<P: SyncProtocol + Clone>(&self, procs: Vec<P>) -> Result<RunReport<P>, SimError> {
        self.schedule
            .validate(&self.config)
            .map_err(SimError::BadSchedule)?;
        let mut stepper = Stepper::new(self.config, self.model, self.trace_level, procs)?;
        let n = self.config.n();
        let mut actions: RoundActions = vec![None; n];
        let mut hit_cap = true;
        for round in Round::up_to(self.max_rounds) {
            actions.iter_mut().for_each(|a| *a = None);
            for pid in self.config.pids() {
                if let Some(cp) = self.schedule.crash_point(pid) {
                    if cp.round == round {
                        actions[pid.idx()] = Some(cp.stage.clone());
                    }
                }
            }
            stepper.step(&actions)?;
            if stepper.is_quiescent() {
                hit_cap = false;
                break;
            }
        }
        Ok(stepper.finish(hit_cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashSchedule};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    /// Toy protocol: p_1 broadcasts its value + commits in rank order and
    /// decides after sending; everyone else decides the received value when
    /// the commit arrives.  (A one-coordinator slice of Figure 1.)
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct OneShot {
        me: ProcessId,
        n: usize,
        est: u64,
    }

    impl SyncProtocol for OneShot {
        type Msg = u64;
        type Output = u64;

        fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
            if round == Round::FIRST && self.me == pid(1) {
                let mut plan = SendPlan::quiet();
                for dst in self.me.higher(self.n) {
                    plan = plan.with_data(dst, self.est);
                }
                for dst in self.me.higher(self.n) {
                    plan = plan.with_control(dst);
                }
                plan.then_decide(self.est)
            } else {
                SendPlan::quiet()
            }
        }

        fn receive(&mut self, _round: Round, inbox: &Inbox<u64>) -> Step<u64> {
            if let Some(v) = inbox.data_from(pid(1)) {
                self.est = *v;
            }
            if inbox.control_from(pid(1)) {
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn procs(n: usize) -> Vec<OneShot> {
        (1..=n as u32)
            .map(|r| OneShot {
                me: pid(r),
                n,
                est: 100 + r as u64,
            })
            .collect()
    }

    #[test]
    fn failure_free_one_round() {
        let config = SystemConfig::new(4, 2).unwrap();
        let schedule = CrashSchedule::none(4);
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(4))
            .unwrap();
        // Everyone decides 101 (p_1's value) in round 1.
        for d in &report.decisions {
            let d = d.as_ref().expect("all decide");
            assert_eq!(d.value, 101);
            assert_eq!(d.round, Round::FIRST);
        }
        assert!(!report.hit_round_cap);
        // Metrics: 3 data × 64 bits + 3 control × 1 bit.
        assert_eq!(report.metrics.data_messages, 3);
        assert_eq!(report.metrics.control_messages, 3);
        assert_eq!(report.metrics.total_bits(), 3 * 64 + 3);
    }

    #[test]
    fn mid_data_crash_delivers_subset_and_no_control() {
        let config = SystemConfig::new(4, 2).unwrap();
        // p_1 crashes mid-data: only p_3 gets the data message; no commits;
        // p_1 must NOT decide (its send phase never completed).
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(
                Round::FIRST,
                CrashStage::MidData {
                    delivered: PidSet::from_iter(4, [pid(3)]),
                },
            ),
        );
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(4))
            .unwrap();
        assert!(report.decisions[0].is_none(), "crashed coordinator decided");
        assert!(report.decisions.iter().skip(1).all(|d| d.is_none()));
        assert_eq!(report.metrics.data_messages, 1);
        assert_eq!(report.metrics.control_messages, 0);
        assert!(report.crashed.contains(pid(1)));
        // Nobody decides, so the run ends at the cap.
        assert!(report.hit_round_cap);
        // p_3 adopted the value even though it could not decide.
        assert_eq!(report.final_states[2].est, 101);
        assert_eq!(report.final_states[1].est, 102, "p_2 saw nothing");
    }

    #[test]
    fn mid_control_crash_delivers_ordered_prefix() {
        let config = SystemConfig::new(4, 2).unwrap();
        // p_1 crashes after committing to p_2 only: all data arrived, and
        // exactly p_2 decides in round 1 — prefix semantics.
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
        );
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(4))
            .unwrap();
        assert!(report.decisions[0].is_none(), "send phase did not complete");
        let d2 = report.decisions[1].as_ref().expect("p_2 got the commit");
        assert_eq!((d2.value, d2.round), (101, Round::FIRST));
        assert!(report.decisions[2].is_none());
        assert!(report.decisions[3].is_none());
        // All three data messages delivered, one control.
        assert_eq!(report.metrics.data_messages, 3);
        assert_eq!(report.metrics.control_messages, 1);
        // p_3/p_4 adopted the estimate.
        assert_eq!(report.final_states[2].est, 101);
        assert_eq!(report.final_states[3].est, 101);
    }

    #[test]
    fn end_of_round_crash_decides_then_dies() {
        let config = SystemConfig::new(4, 2).unwrap();
        // p_1 completes the round (everyone decides), then crashes: its own
        // decision must be recorded — uniform agreement ranges over it.
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(4))
            .unwrap();
        let d1 = report.decisions[0].as_ref().expect("decided before dying");
        assert_eq!(d1.value, 101);
        assert!(report.crashed.contains(pid(1)));
        for d in report.decisions.iter().skip(1) {
            assert_eq!(d.as_ref().unwrap().value, 101);
        }
    }

    #[test]
    fn classic_model_rejects_control() {
        let config = SystemConfig::new(3, 1).unwrap();
        let schedule = CrashSchedule::none(3);
        let err = Simulation::new(config, ModelKind::Classic, &schedule)
            .run(procs(3))
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::ControlInClassicModel { pid, round }
                if pid == ProcessId::new(1) && round == Round::FIRST
        ));
    }

    #[test]
    fn schedule_validation_is_enforced() {
        let config = SystemConfig::new(3, 0).unwrap();
        let schedule = CrashSchedule::none(3).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let err = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(3))
            .unwrap_err();
        assert!(matches!(err, SimError::BadSchedule(_)));
    }

    #[test]
    fn wrong_process_count_rejected() {
        let config = SystemConfig::new(3, 1).unwrap();
        let schedule = CrashSchedule::none(3);
        let err = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(2))
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::WrongProcessCount { got: 2, want: 3 }
        ));
    }

    #[test]
    fn transmissions_to_dead_destinations_count_but_are_not_received() {
        let config = SystemConfig::new(3, 2).unwrap();
        // p_2 is dead from the start; p_1 still *transmits* to it (it cannot
        // know), so Theorem 2 accounting charges the message — but p_2 never
        // receives it.
        let schedule = CrashSchedule::none(3).with_crash(
            pid(2),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(procs(3))
            .unwrap();
        assert_eq!(report.metrics.data_messages, 2, "both transmissions count");
        assert_eq!(report.metrics.control_messages, 2);
        assert!(report.decisions[1].is_none(), "dead p_2 received nothing");
        assert_eq!(report.decisions[2].as_ref().unwrap().value, 101);
    }

    #[test]
    fn stepper_accessors_expose_state() {
        let config = SystemConfig::new(3, 1).unwrap();
        let mut stepper =
            Stepper::new(config, ModelKind::Extended, TraceLevel::Off, procs(3)).unwrap();
        assert_eq!(stepper.round(), Round::FIRST);
        assert_eq!(stepper.active().count(), 3);
        assert!(!stepper.is_quiescent());
        stepper.step(&vec![None, None, None]).unwrap();
        assert!(stepper.is_quiescent(), "everyone decided in round 1");
        assert_eq!(stepper.round(), Round::new(2));
        assert_eq!(stepper.decisions().iter().flatten().count(), 3);
    }
}
