//! The workspace's one worker-scheduling idiom, shared by sweeps and the
//! model checker.
//!
//! Two pieces:
//!
//! * [`run_on_workers`] — fan a closure out over scoped `std::thread`
//!   workers, running worker 0 on the calling thread (so a single-worker
//!   run costs no spawn at all, and the caller's stack hosts the "primary"
//!   walker in parallel exploration);
//! * [`WorkQueue`] — a closable MPMC injector with idle-worker accounting,
//!   the channel through which busy explorer walkers *share* unexplored
//!   subtrees with idle ones.
//!
//! Thread-count policy lives in [`default_threads`]: the `TWOSTEP_THREADS`
//! environment variable (minimum 1) overrides the machine's available
//! parallelism, and every parallel facility in the workspace — parameter
//! sweeps, the exhaustive explorer, experiment harnesses — resolves its
//! default through this single function.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Hard cap on the worker count accepted from `TWOSTEP_THREADS`: values
/// above this are almost certainly typos (no machine this workspace
/// targets has thousands of cores, and each worker pins a thread), so
/// they are clamped rather than honored.
pub const MAX_THREADS: usize = 4096;

/// Number of worker threads to use by default.
///
/// Resolution order:
///
/// 1. `TWOSTEP_THREADS` environment variable (useful to pin CI or
///    reproduce serial behavior: `TWOSTEP_THREADS=1`); surrounding
///    whitespace is tolerated, values above [`MAX_THREADS`] are clamped,
///    and `0` or an unparseable value is **not** silently honored — it
///    falls back to machine parallelism with a one-time warning on
///    stderr;
/// 2. the machine's available parallelism;
/// 3. 1, if neither is known.
pub fn default_threads() -> usize {
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let raw = std::env::var("TWOSTEP_THREADS").ok();
    let (threads, warning) = resolve_threads(raw.as_deref(), machine);
    if let Some(warning) = warning {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| eprintln!("twostep: {warning}"));
    }
    threads
}

/// Pure resolution of a `TWOSTEP_THREADS` value against the machine's
/// parallelism: the worker count plus an optional warning describing a
/// loud fallback or clamp.  Split from [`default_threads`] so the policy
/// is unit-testable without touching process environment.
fn resolve_threads(raw: Option<&str>, machine: usize) -> (usize, Option<String>) {
    let machine = machine.max(1);
    let raw = match raw {
        None => return (machine, None),
        Some(raw) => raw,
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => (
            machine,
            Some(format!(
                "TWOSTEP_THREADS=0 is invalid (need at least one worker); \
                 falling back to machine parallelism ({machine})"
            )),
        ),
        Ok(n) if n > MAX_THREADS => (
            MAX_THREADS,
            Some(format!(
                "TWOSTEP_THREADS={n} exceeds the {MAX_THREADS}-thread cap; clamping"
            )),
        ),
        Ok(n) => (n, None),
        Err(_) => (
            machine,
            Some(format!(
                "TWOSTEP_THREADS={raw:?} is not a thread count; \
                 falling back to machine parallelism ({machine})"
            )),
        ),
    }
}

/// Runs `work(worker_index)` on `threads` workers: indexes `1..threads`
/// on scoped spawned threads, index `0` on the calling thread.  Returns
/// when every worker has returned; a panicking worker propagates its
/// panic to the caller when the scope joins.
pub fn run_on_workers<F>(threads: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        work(0);
        return;
    }
    std::thread::scope(|scope| {
        for idx in 1..threads {
            let work = &work;
            scope.spawn(move || work(idx));
        }
        work(0);
    });
}

/// One launch attempt of a retried task: which task, and which attempt
/// (0-based) this is.  Passed to the closure of [`run_tasks_with_retry`]
/// so callers can, e.g., log retries or vary behavior per attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskAttempt {
    /// The task index, `0..count`.
    pub index: usize,
    /// The attempt number for this task, `0..attempts`.
    pub attempt: usize,
}

/// Runs `count` independent fallible tasks concurrently — one scoped
/// thread per task — retrying each failed task up to `attempts` total
/// launches, and returns the per-task outcome (`Ok(())`, or the error of
/// the *last* failed attempt).
///
/// This is the workspace's process-orchestration idiom: the distributed
/// explorer uses it to launch one worker OS process per partition, where
/// "failure" covers both a non-zero exit and an export file that fails
/// validation, and a crashed worker is simply launched again.  Tasks are
/// expected to be coarse (each backed by a process or a long computation),
/// so a plain thread per task is the right cost model — no pooling.
///
/// # Panics
///
/// Panics if `attempts == 0` (every task needs at least one launch).
pub fn run_tasks_with_retry<E, F>(count: usize, attempts: usize, run: F) -> Vec<Result<(), E>>
where
    E: Send,
    F: Fn(TaskAttempt) -> Result<(), E> + Sync,
{
    assert!(attempts >= 1, "every task needs at least one attempt");
    let mut results: Vec<Result<(), E>> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..count)
            .map(|index| {
                let run = &run;
                scope.spawn(move || {
                    let mut last = run(TaskAttempt { index, attempt: 0 });
                    for attempt in 1..attempts {
                        if last.is_ok() {
                            break;
                        }
                        last = run(TaskAttempt { index, attempt });
                    }
                    last
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("task thread panicked"));
        }
    });
    results
}

/// A closable multi-producer multi-consumer work injector.
///
/// Producers [`push`](Self::push) items; consumers block in
/// [`pop_wait`](Self::pop_wait) until an item arrives or the queue is
/// [`close`](Self::close)d (after which `pop_wait` returns `None`
/// immediately, *discarding* any leftover items — by construction a
/// closed exploration no longer needs them).
///
/// [`idle_workers`](Self::idle_workers) reports how many consumers are
/// currently parked in `pop_wait`, which is the work-sharing signal: a
/// busy walker donates subtrees only while somebody is actually idle, so
/// donation cost is bounded by the number of workers rather than the size
/// of the search space.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    idle: AtomicUsize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            idle: AtomicUsize::new(0),
        }
    }

    /// Consumers currently blocked in [`pop_wait`](Self::pop_wait).
    pub fn idle_workers(&self) -> usize {
        self.idle.load(Ordering::Relaxed)
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("work queue poisoned").closed
    }

    /// Enqueues an item (no-op if the queue is already closed) and wakes
    /// one idle consumer.
    pub fn push(&self, item: T) {
        let mut state = self.state.lock().expect("work queue poisoned");
        if state.closed {
            return;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed (returning `None`).
    pub fn pop_wait(&self) -> Option<T> {
        let mut state = self.state.lock().expect("work queue poisoned");
        loop {
            if state.closed {
                return None;
            }
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            self.idle.fetch_add(1, Ordering::Relaxed);
            let result = self.ready.wait(state);
            self.idle.fetch_sub(1, Ordering::Relaxed);
            state = result.expect("work queue poisoned");
        }
    }

    /// Closes the queue: all parked consumers wake and drain to `None`,
    /// and leftover items are dropped.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("work queue poisoned");
        state.closed = true;
        state.items.clear();
        drop(state);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn resolve_threads_honors_plain_values_with_whitespace() {
        assert_eq!(resolve_threads(Some("  8 "), 4), (8, None));
        assert_eq!(resolve_threads(Some("1"), 4), (1, None));
        assert_eq!(resolve_threads(None, 4), (4, None));
    }

    #[test]
    fn resolve_threads_rejects_zero_loudly() {
        let (threads, warning) = resolve_threads(Some("0"), 8);
        assert_eq!(threads, 8, "falls back to machine parallelism");
        let warning = warning.expect("zero must warn, not be silently ignored");
        assert!(warning.contains("TWOSTEP_THREADS=0"), "{warning}");
    }

    #[test]
    fn resolve_threads_rejects_garbage_loudly() {
        let (threads, warning) = resolve_threads(Some("not-a-number"), 6);
        assert_eq!(threads, 6, "falls back to machine parallelism");
        let warning = warning.expect("garbage must warn, not be silently ignored");
        assert!(warning.contains("not-a-number"), "{warning}");
    }

    #[test]
    fn resolve_threads_clamps_absurd_values() {
        let (threads, warning) = resolve_threads(Some("10000"), 8);
        assert_eq!(threads, MAX_THREADS);
        assert!(warning.expect("clamping warns").contains("10000"));
        // The cap itself is accepted silently.
        assert_eq!(resolve_threads(Some("4096"), 8), (MAX_THREADS, None));
    }

    #[test]
    fn run_on_workers_covers_all_indexes() {
        let seen = Mutex::new(Vec::new());
        run_on_workers(4, |idx| seen.lock().unwrap().push(idx));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_on_workers_single_runs_inline() {
        let caller = std::thread::current().id();
        run_on_workers(1, |idx| {
            assert_eq!(idx, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn run_tasks_with_retry_retries_until_success() {
        // Task 1 fails its first two attempts, then succeeds; the others
        // succeed immediately.  Attempt numbers must be sequential.
        let attempts_seen = Mutex::new(Vec::new());
        let results = run_tasks_with_retry(3, 3, |task: TaskAttempt| {
            attempts_seen.lock().unwrap().push(task);
            if task.index == 1 && task.attempt < 2 {
                Err(format!("task {} attempt {} died", task.index, task.attempt))
            } else {
                Ok(())
            }
        });
        assert!(results.iter().all(Result::is_ok), "{results:?}");
        let seen = attempts_seen.into_inner().unwrap();
        let task1: Vec<usize> = seen
            .iter()
            .filter(|t| t.index == 1)
            .map(|t| t.attempt)
            .collect();
        assert_eq!(task1, vec![0, 1, 2]);
        assert_eq!(seen.iter().filter(|t| t.index == 0).count(), 1);
    }

    #[test]
    fn run_tasks_with_retry_reports_exhausted_task() {
        let results = run_tasks_with_retry(2, 2, |task: TaskAttempt| {
            if task.index == 0 {
                Err("always dies")
            } else {
                Ok(())
            }
        });
        assert_eq!(results[0], Err("always dies"));
        assert_eq!(results[1], Ok(()));
    }

    #[test]
    fn queue_hands_items_to_consumers() {
        let queue: WorkQueue<u64> = WorkQueue::new();
        let sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = queue.pop_wait() {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=100u64 {
                queue.push(v);
            }
            // Give consumers a moment to drain before closing.
            while sum.load(Ordering::Relaxed) < 5050 {
                std::thread::yield_now();
            }
            queue.close();
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn close_wakes_parked_consumers() {
        let queue: WorkQueue<u64> = WorkQueue::new();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| queue.pop_wait());
            while queue.idle_workers() == 0 {
                std::thread::yield_now();
            }
            queue.close();
            assert_eq!(handle.join().unwrap(), None);
        });
        assert!(queue.is_closed());
        queue.push(7); // no-op after close
        assert_eq!(queue.pop_wait(), None);
    }
}
