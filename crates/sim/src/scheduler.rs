//! The workspace's one worker-scheduling idiom, shared by sweeps and the
//! model checker.
//!
//! Three pieces:
//!
//! * [`run_on_workers`] — fan a closure out over scoped `std::thread`
//!   workers, running worker 0 on the calling thread (so a single-worker
//!   run costs no spawn at all, and the caller's stack hosts the "primary"
//!   walker in parallel exploration);
//! * [`run_tasks_supervised`] — the fault-containing retry scheduler: one
//!   supervisor thread per fallible task, a [`RetryPolicy`] of attempt
//!   budget / deterministic backoff / per-attempt timeout, a
//!   [`CancelToken`] handed to every attempt so hung work can be told to
//!   stop, and panic containment (a panicking task closure becomes that
//!   task's [`TaskError::Panicked`] — never the caller's death);
//! * [`WorkQueue`] — a closable MPMC injector with idle-worker accounting,
//!   the channel through which busy explorer walkers *share* unexplored
//!   subtrees with idle ones.
//!
//! Thread-count policy lives in [`default_threads`]: the `TWOSTEP_THREADS`
//! environment variable (minimum 1) overrides the machine's available
//! parallelism, and every parallel facility in the workspace — parameter
//! sweeps, the exhaustive explorer, experiment harnesses — resolves its
//! default through this single function.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on the worker count accepted from `TWOSTEP_THREADS`: values
/// above this are almost certainly typos (no machine this workspace
/// targets has thousands of cores, and each worker pins a thread), so
/// they are clamped rather than honored.
pub const MAX_THREADS: usize = 4096;

/// Number of worker threads to use by default.
///
/// Resolution order:
///
/// 1. `TWOSTEP_THREADS` environment variable (useful to pin CI or
///    reproduce serial behavior: `TWOSTEP_THREADS=1`); surrounding
///    whitespace is tolerated, values above [`MAX_THREADS`] are clamped,
///    and `0` or an unparseable value is **not** silently honored — it
///    falls back to machine parallelism with a one-time warning on
///    stderr;
/// 2. the machine's available parallelism;
/// 3. 1, if neither is known.
pub fn default_threads() -> usize {
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let raw = std::env::var("TWOSTEP_THREADS").ok();
    let (threads, warning) = resolve_threads(raw.as_deref(), machine);
    if let Some(warning) = warning {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| eprintln!("twostep: {warning}"));
    }
    threads
}

/// Pure resolution of a `TWOSTEP_THREADS` value against the machine's
/// parallelism: the worker count plus an optional warning describing a
/// loud fallback or clamp.  Split from [`default_threads`] so the policy
/// is unit-testable without touching process environment.
fn resolve_threads(raw: Option<&str>, machine: usize) -> (usize, Option<String>) {
    let machine = machine.max(1);
    let raw = match raw {
        None => return (machine, None),
        Some(raw) => raw,
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => (
            machine,
            Some(format!(
                "TWOSTEP_THREADS=0 is invalid (need at least one worker); \
                 falling back to machine parallelism ({machine})"
            )),
        ),
        Ok(n) if n > MAX_THREADS => (
            MAX_THREADS,
            Some(format!(
                "TWOSTEP_THREADS={n} exceeds the {MAX_THREADS}-thread cap; clamping"
            )),
        ),
        Ok(n) => (n, None),
        Err(_) => (
            machine,
            Some(format!(
                "TWOSTEP_THREADS={raw:?} is not a thread count; \
                 falling back to machine parallelism ({machine})"
            )),
        ),
    }
}

/// Runs `work(worker_index)` on `threads` workers: indexes `1..threads`
/// on scoped spawned threads, index `0` on the calling thread.  Returns
/// when every worker has returned; a panicking worker propagates its
/// panic to the caller when the scope joins.
pub fn run_on_workers<F>(threads: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        work(0);
        return;
    }
    std::thread::scope(|scope| {
        for idx in 1..threads {
            let work = &work;
            scope.spawn(move || work(idx));
        }
        work(0);
    });
}

/// One launch attempt of a retried task: which task, and which attempt
/// (0-based) this is.  Passed to the closure of [`run_tasks_with_retry`]
/// so callers can, e.g., log retries or vary behavior per attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskAttempt {
    /// The task index, `0..count`.
    pub index: usize,
    /// The attempt number for this task, `0..attempts`.
    pub attempt: usize,
}

/// A cooperative stop signal shared between a supervisor and the work it
/// supervises.
///
/// Cloning is cheap (one `Arc`); every clone observes the same flag.
/// There is deliberately no "un-cancel": a token represents one attempt's
/// lifetime, and a retry gets a fresh token.  Long-running work is
/// expected to poll [`is_cancelled`](Self::is_cancelled) at its natural
/// yield points (a poll is one relaxed atomic load); work driving an OS
/// process should kill the child when the token trips.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token.  Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Retry discipline for [`run_tasks_supervised`]: how many launches each
/// task gets, how long to wait between them, and how long any single
/// attempt may run.
///
/// Backoff is **deterministic** (no jitter): the delay before attempt
/// `k >= 1` is `backoff * 2^(k-1)`, capped at `backoff_cap` — so a given
/// policy produces the same launch schedule every run, which keeps
/// fault-injection scenarios reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total launches allowed per task (must be at least 1).
    pub attempts: usize,
    /// Base delay before the first retry; `Duration::ZERO` disables
    /// backoff entirely.
    pub backoff: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Wall-clock budget for one attempt.  When it expires the attempt's
    /// [`CancelToken`] is tripped and, once the closure returns, the
    /// attempt is recorded as [`TaskError::TimedOut`] and retried like
    /// any other failure.  `None` disables the watchdog.
    pub attempt_timeout: Option<Duration>,
}

impl RetryPolicy {
    /// A policy with `attempts` launches, no backoff, and no per-attempt
    /// timeout — the behavior of the legacy retry loop.
    pub fn new(attempts: usize) -> Self {
        RetryPolicy {
            attempts,
            backoff: Duration::ZERO,
            backoff_cap: Duration::from_secs(5),
            attempt_timeout: None,
        }
    }

    /// The deterministic delay slept before launching `attempt`
    /// (0-based): zero for the first launch, then exponential in the
    /// retry count and capped.
    pub fn delay_before(&self, attempt: usize) -> Duration {
        if attempt == 0 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let doublings = u32::try_from(attempt - 1).unwrap_or(u32::MAX).min(20);
        let factor = 1u32 << doublings;
        self.backoff
            .checked_mul(factor)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }
}

/// Why one supervised task ultimately failed (the error of its *last*
/// attempt).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError<E> {
    /// The task closure returned an error.
    Failed(E),
    /// The task closure panicked; the payload's message is preserved.
    /// Contained by the supervisor — a panicking task never aborts the
    /// caller.
    Panicked(String),
    /// The attempt outlived [`RetryPolicy::attempt_timeout`]: the
    /// watchdog tripped the attempt's [`CancelToken`] and the closure
    /// returned an error afterwards.  (A closure that returns `Ok` after
    /// its token trips is still a success — it finished the work.)
    TimedOut {
        /// The timeout that expired.
        after: Duration,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for TaskError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Failed(e) => write!(f, "{e}"),
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::TimedOut { after } => {
                write!(f, "attempt exceeded its {:?} timeout", after)
            }
        }
    }
}

/// One launch attempt under [`run_tasks_supervised`]: which task, which
/// attempt, and the attempt's cancellation token (fresh per attempt).
#[derive(Clone, Debug)]
pub struct SupervisedAttempt {
    /// The task index, `0..count`.
    pub index: usize,
    /// The attempt number for this task, `0..policy.attempts`.
    pub attempt: usize,
    /// Tripped by the watchdog when the attempt outlives its timeout;
    /// the closure should poll it at yield points and abandon the work
    /// (killing any child process it spawned).
    pub cancel: CancelToken,
}

/// Best-effort extraction of a human-readable message from a panic
/// payload (`&str` and `String` payloads cover `panic!`, `assert!`,
/// `unwrap`, and friends).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Opened by the attempt when it finishes; watched by the watchdog
/// thread, which trips the cancel token if the gate is still shut at the
/// deadline.
struct AttemptGate {
    done: Mutex<bool>,
    finished: Condvar,
}

impl AttemptGate {
    fn new() -> Self {
        AttemptGate {
            done: Mutex::new(false),
            finished: Condvar::new(),
        }
    }

    fn open(&self) {
        *self.done.lock().expect("attempt gate poisoned") = true;
        self.finished.notify_all();
    }

    fn watch(&self, timeout: Duration, cancel: &CancelToken) {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock().expect("attempt gate poisoned");
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                cancel.cancel();
                return;
            }
            let (guard, _) = self
                .finished
                .wait_timeout(done, deadline - now)
                .expect("attempt gate poisoned");
            done = guard;
        }
    }
}

/// Runs `attempt()` with an optional watchdog: if the attempt is still
/// running when `timeout` expires, `cancel` is tripped (the attempt is
/// *not* abandoned — scoped threads always join — but cooperative work
/// observes the token and returns).
fn with_watchdog<R>(
    timeout: Option<Duration>,
    cancel: &CancelToken,
    attempt: impl FnOnce() -> R,
) -> R {
    let Some(timeout) = timeout else {
        return attempt();
    };
    let gate = AttemptGate::new();
    std::thread::scope(|scope| {
        let gate = &gate;
        scope.spawn(move || gate.watch(timeout, cancel));
        let result = attempt();
        gate.open();
        result
    })
}

/// Runs `count` independent fallible tasks concurrently — one scoped
/// supervisor thread per task — under a [`RetryPolicy`], and returns the
/// per-task outcome (`Ok(())`, or the [`TaskError`] of the *last* failed
/// attempt).
///
/// This is the workspace's process-orchestration idiom: the distributed
/// explorer uses it to launch one worker OS process per partition, where
/// "failure" covers a non-zero exit, an export file that fails
/// validation, a hung attempt (timeout), or a panicking launch closure.
/// Tasks are expected to be coarse (each backed by a process or a long
/// computation), so a plain thread per task is the right cost model — no
/// pooling.
///
/// Fault containment:
///
/// * a **panic** in the task closure is caught and recorded as
///   [`TaskError::Panicked`] for that attempt — retryable like any
///   failure, and never propagated to the caller;
/// * a **hung** attempt is detected by the per-attempt watchdog
///   ([`RetryPolicy::attempt_timeout`]): the attempt's [`CancelToken`]
///   trips, and once the closure observes it and returns, the attempt is
///   recorded as [`TaskError::TimedOut`].  The closure *must* poll the
///   token at its yield points for this to terminate — the supervisor
///   cannot abandon a scoped thread;
/// * **retries back off deterministically** per
///   [`RetryPolicy::delay_before`].
///
/// # Panics
///
/// Panics if `policy.attempts == 0` (every task needs at least one
/// launch).
pub fn run_tasks_supervised<E, F>(
    count: usize,
    policy: &RetryPolicy,
    run: F,
) -> Vec<Result<(), TaskError<E>>>
where
    E: Send,
    F: Fn(&SupervisedAttempt) -> Result<(), E> + Sync,
{
    assert!(
        policy.attempts >= 1,
        "every task needs at least one attempt"
    );
    let mut results: Vec<Result<(), TaskError<E>>> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..count)
            .map(|index| {
                let run = &run;
                scope.spawn(move || {
                    let mut last: Result<(), TaskError<E>> = Ok(());
                    for attempt in 0..policy.attempts {
                        let delay = policy.delay_before(attempt);
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        let ctx = SupervisedAttempt {
                            index,
                            attempt,
                            cancel: CancelToken::new(),
                        };
                        let outcome = with_watchdog(policy.attempt_timeout, &ctx.cancel, || {
                            catch_unwind(AssertUnwindSafe(|| run(&ctx)))
                        });
                        last = match outcome {
                            Ok(Ok(())) => Ok(()),
                            Ok(Err(_)) if ctx.cancel.is_cancelled() => Err(TaskError::TimedOut {
                                after: policy.attempt_timeout.unwrap_or_default(),
                            }),
                            Ok(Err(e)) => Err(TaskError::Failed(e)),
                            Err(payload) => Err(TaskError::Panicked(panic_message(payload))),
                        };
                        if last.is_ok() {
                            break;
                        }
                    }
                    last
                })
            })
            .collect();
        for handle in handles {
            // The closure inside is already panic-contained; this join
            // can only see a panic from the supervisor scaffolding
            // itself, and even that must not abort the caller.
            results.push(match handle.join() {
                Ok(result) => result,
                Err(payload) => Err(TaskError::Panicked(panic_message(payload))),
            });
        }
    });
    results
}

/// Runs `count` independent fallible tasks concurrently, retrying each
/// failed task up to `attempts` total launches with no backoff and no
/// per-attempt timeout.  A thin wrapper over [`run_tasks_supervised`]
/// kept for callers that don't need a full [`RetryPolicy`]; panics in
/// the task closure surface as [`TaskError::Panicked`] for that task,
/// never as a panic of this function.
///
/// # Panics
///
/// Panics if `attempts == 0` (every task needs at least one launch).
pub fn run_tasks_with_retry<E, F>(
    count: usize,
    attempts: usize,
    run: F,
) -> Vec<Result<(), TaskError<E>>>
where
    E: Send,
    F: Fn(TaskAttempt) -> Result<(), E> + Sync,
{
    run_tasks_supervised(count, &RetryPolicy::new(attempts), |ctx| {
        run(TaskAttempt {
            index: ctx.index,
            attempt: ctx.attempt,
        })
    })
}

/// A closable multi-producer multi-consumer work injector.
///
/// Producers [`push`](Self::push) items; consumers block in
/// [`pop_wait`](Self::pop_wait) until an item arrives or the queue is
/// [`close`](Self::close)d (after which `pop_wait` returns `None`
/// immediately, *discarding* any leftover items — by construction a
/// closed exploration no longer needs them).
///
/// [`idle_workers`](Self::idle_workers) reports how many consumers are
/// currently parked in `pop_wait`, which is the work-sharing signal: a
/// busy walker donates subtrees only while somebody is actually idle, so
/// donation cost is bounded by the number of workers rather than the size
/// of the search space.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    idle: AtomicUsize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            idle: AtomicUsize::new(0),
        }
    }

    /// Consumers currently blocked in [`pop_wait`](Self::pop_wait).
    pub fn idle_workers(&self) -> usize {
        self.idle.load(Ordering::Relaxed)
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("work queue poisoned").closed
    }

    /// Enqueues an item (no-op if the queue is already closed) and wakes
    /// one idle consumer.
    pub fn push(&self, item: T) {
        let mut state = self.state.lock().expect("work queue poisoned");
        if state.closed {
            return;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed (returning `None`).
    pub fn pop_wait(&self) -> Option<T> {
        let mut state = self.state.lock().expect("work queue poisoned");
        loop {
            if state.closed {
                return None;
            }
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            self.idle.fetch_add(1, Ordering::Relaxed);
            let result = self.ready.wait(state);
            self.idle.fetch_sub(1, Ordering::Relaxed);
            state = result.expect("work queue poisoned");
        }
    }

    /// Closes the queue: all parked consumers wake and drain to `None`,
    /// and leftover items are dropped.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("work queue poisoned");
        state.closed = true;
        state.items.clear();
        drop(state);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn resolve_threads_honors_plain_values_with_whitespace() {
        assert_eq!(resolve_threads(Some("  8 "), 4), (8, None));
        assert_eq!(resolve_threads(Some("1"), 4), (1, None));
        assert_eq!(resolve_threads(None, 4), (4, None));
    }

    #[test]
    fn resolve_threads_rejects_zero_loudly() {
        let (threads, warning) = resolve_threads(Some("0"), 8);
        assert_eq!(threads, 8, "falls back to machine parallelism");
        let warning = warning.expect("zero must warn, not be silently ignored");
        assert!(warning.contains("TWOSTEP_THREADS=0"), "{warning}");
    }

    #[test]
    fn resolve_threads_rejects_garbage_loudly() {
        let (threads, warning) = resolve_threads(Some("not-a-number"), 6);
        assert_eq!(threads, 6, "falls back to machine parallelism");
        let warning = warning.expect("garbage must warn, not be silently ignored");
        assert!(warning.contains("not-a-number"), "{warning}");
    }

    #[test]
    fn resolve_threads_clamps_absurd_values() {
        let (threads, warning) = resolve_threads(Some("10000"), 8);
        assert_eq!(threads, MAX_THREADS);
        assert!(warning.expect("clamping warns").contains("10000"));
        // The cap itself is accepted silently.
        assert_eq!(resolve_threads(Some("4096"), 8), (MAX_THREADS, None));
    }

    #[test]
    fn run_on_workers_covers_all_indexes() {
        let seen = Mutex::new(Vec::new());
        run_on_workers(4, |idx| seen.lock().unwrap().push(idx));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_on_workers_single_runs_inline() {
        let caller = std::thread::current().id();
        run_on_workers(1, |idx| {
            assert_eq!(idx, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn run_tasks_with_retry_retries_until_success() {
        // Task 1 fails its first two attempts, then succeeds; the others
        // succeed immediately.  Attempt numbers must be sequential.
        let attempts_seen = Mutex::new(Vec::new());
        let results = run_tasks_with_retry(3, 3, |task: TaskAttempt| {
            attempts_seen.lock().unwrap().push(task);
            if task.index == 1 && task.attempt < 2 {
                Err(format!("task {} attempt {} died", task.index, task.attempt))
            } else {
                Ok(())
            }
        });
        assert!(results.iter().all(Result::is_ok), "{results:?}");
        let seen = attempts_seen.into_inner().unwrap();
        let task1: Vec<usize> = seen
            .iter()
            .filter(|t| t.index == 1)
            .map(|t| t.attempt)
            .collect();
        assert_eq!(task1, vec![0, 1, 2]);
        assert_eq!(seen.iter().filter(|t| t.index == 0).count(), 1);
    }

    #[test]
    fn run_tasks_with_retry_reports_exhausted_task() {
        let results = run_tasks_with_retry(2, 2, |task: TaskAttempt| {
            if task.index == 0 {
                Err("always dies")
            } else {
                Ok(())
            }
        });
        assert_eq!(results[0], Err(TaskError::Failed("always dies")));
        assert_eq!(results[1], Ok(()));
    }

    #[test]
    fn panicking_task_is_contained_and_retried() {
        // Regression for the old `handle.join().expect(...)`: a panic in
        // the task closure must surface as that task's retryable failure,
        // not abort the scheduler.  Task 0 panics once, then succeeds.
        let results = run_tasks_with_retry(2, 2, |task: TaskAttempt| {
            if task.index == 0 && task.attempt == 0 {
                panic!("injected panic on attempt {}", task.attempt);
            }
            Ok::<(), String>(())
        });
        assert_eq!(results, vec![Ok(()), Ok(())]);
    }

    #[test]
    fn always_panicking_task_reports_panicked_without_aborting_siblings() {
        let results = run_tasks_with_retry(3, 2, |task: TaskAttempt| {
            if task.index == 1 {
                panic!("task 1 always panics");
            }
            Ok::<(), String>(())
        });
        assert_eq!(results[0], Ok(()));
        assert_eq!(results[2], Ok(()));
        match &results[1] {
            Err(TaskError::Panicked(msg)) => {
                assert!(msg.contains("task 1 always panics"), "{msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            attempts: 6,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            attempt_timeout: None,
        };
        let delays: Vec<Duration> = (0..5).map(|a| policy.delay_before(a)).collect();
        assert_eq!(
            delays,
            vec![
                Duration::ZERO,
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(35),
                Duration::from_millis(35),
            ]
        );
        // Zero base backoff disables the sleep entirely.
        assert_eq!(RetryPolicy::new(5).delay_before(4), Duration::ZERO);
        // Absurd attempt numbers must not overflow.
        assert_eq!(policy.delay_before(10_000), Duration::from_millis(35));
    }

    #[test]
    fn watchdog_trips_cancel_and_classifies_timeout() {
        let policy = RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            attempt_timeout: Some(Duration::from_millis(40)),
        };
        let started = Instant::now();
        let results = run_tasks_supervised(1, &policy, |ctx: &SupervisedAttempt| {
            // A cooperative "hang": spins until the watchdog trips the
            // token, then reports failure.  The hard cap keeps the test
            // from wedging if the watchdog never fires.
            let hung_at = Instant::now();
            while !ctx.cancel.is_cancelled() {
                if hung_at.elapsed() > Duration::from_secs(30) {
                    return Err("watchdog never fired".to_string());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err("killed".to_string())
        });
        assert_eq!(
            results[0],
            Err(TaskError::TimedOut {
                after: Duration::from_millis(40)
            })
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "hang must be detected by the watchdog, not by the hard cap"
        );
    }

    #[test]
    fn timed_out_attempt_is_retried_with_fresh_token() {
        let policy = RetryPolicy {
            attempts: 2,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            attempt_timeout: Some(Duration::from_millis(40)),
        };
        let results = run_tasks_supervised(1, &policy, |ctx: &SupervisedAttempt| {
            if ctx.attempt == 0 {
                // Hang until cancelled.
                let hung_at = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    if hung_at.elapsed() > Duration::from_secs(30) {
                        return Err("watchdog never fired".to_string());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Err("killed".to_string());
            }
            // The retry's token must be fresh, not inherited tripped.
            assert!(!ctx.cancel.is_cancelled(), "retry saw a tripped token");
            Ok(())
        });
        assert_eq!(results, vec![Ok(())]);
    }

    #[test]
    fn successful_attempt_after_cancel_still_counts_as_success() {
        // A closure that finishes the work just as the watchdog fires
        // must not have its completed work discarded.
        let policy = RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            attempt_timeout: Some(Duration::from_millis(5)),
        };
        let results = run_tasks_supervised(1, &policy, |ctx: &SupervisedAttempt| {
            while !ctx.cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok::<(), String>(())
        });
        assert_eq!(results, vec![Ok(())]);
    }

    #[test]
    fn queue_hands_items_to_consumers() {
        let queue: WorkQueue<u64> = WorkQueue::new();
        let sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = queue.pop_wait() {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=100u64 {
                queue.push(v);
            }
            // Give consumers a moment to drain before closing.
            while sum.load(Ordering::Relaxed) < 5050 {
                std::thread::yield_now();
            }
            queue.close();
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn close_wakes_parked_consumers() {
        let queue: WorkQueue<u64> = WorkQueue::new();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| queue.pop_wait());
            while queue.idle_workers() == 0 {
                std::thread::yield_now();
            }
            queue.close();
            assert_eq!(handle.join().unwrap(), None);
        });
        assert!(queue.is_closed());
        queue.push(7); // no-op after close
        assert_eq!(queue.pop_wait(), None);
    }
}
