//! Parallel parameter sweeps.
//!
//! Experiments routinely evaluate thousands of `(n, f, seed)` cells, each
//! an independent deterministic simulation — an embarrassingly parallel
//! workload.  [`par_map`] fans the cells out over the workspace-wide
//! scoped-worker scheduler ([`crate::scheduler::run_on_workers`], also
//! used by the exhaustive explorer) with dynamic (atomic-counter)
//! scheduling, without pulling a thread-pool dependency into the
//! workspace.  Worker counts default through
//! [`default_threads`], which honors the `TWOSTEP_THREADS` env override.
//!
//! Results come back **in input order** regardless of completion order, so
//! sweep output is deterministic and directly zippable with the inputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use crate::scheduler::default_threads;
use crate::scheduler::run_on_workers;

/// Applies `f` to every item on `threads` workers, returning results in
/// input order.
///
/// `f` receives `(index, &item)` so workloads can mix the position into
/// seeds.  Items are claimed dynamically one at a time, which balances
/// skewed workloads (e.g. exhaustive exploration cells next to trivial
/// ones); per-item work in the experiments is large enough that counter
/// contention is negligible.
///
/// # Examples
///
/// ```
/// use twostep_sim::par_map;
///
/// let seeds: Vec<u64> = (0..100).collect();
/// let out = par_map(&seeds, 4, |idx, seed| seed * 2 + idx as u64);
/// assert_eq!(out[10], 30); // input order preserved
/// ```
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);

    run_on_workers(threads.min(items.len()), |_| {
        // Collect locally, publish once at the end: one lock per
        // worker instead of one per item.
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            local.push((i, f(i, &items[i])));
        }
        let mut slots = slots.lock().expect("sweep result mutex poisoned");
        for (i, r) in local {
            slots[i] = Some(r);
        }
    });

    slots
        .into_inner()
        .expect("sweep result mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Convenience wrapper carrying a thread count.
#[derive(Clone, Copy, Debug)]
pub struct Sweeper {
    threads: usize,
}

impl Sweeper {
    /// A sweeper using all available parallelism.
    pub fn auto() -> Self {
        Sweeper {
            threads: default_threads(),
        }
    }

    /// A sweeper with an explicit worker count (min 1).
    pub fn with_threads(threads: usize) -> Self {
        Sweeper {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// See [`par_map`].
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        par_map(items, self.threads, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(&[] as &[u64], 4, |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |_, x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<u64> = (10..30).collect();
        let out = par_map(&items, 3, |i, x| (i, *x));
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, items[i]);
        }
    }

    #[test]
    fn single_thread_path() {
        let items = [1u64, 2, 3];
        let out = par_map(&items, 1, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let _ = par_map(&items, 7, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn sweeper_auto_has_at_least_one_thread() {
        assert!(Sweeper::auto().threads() >= 1);
        assert_eq!(Sweeper::with_threads(0).threads(), 1);
    }

    #[test]
    fn sweeper_map_delegates() {
        let s = Sweeper::with_threads(4);
        let out = s.map(&[5u64, 6], |i, x| x + i as u64);
        assert_eq!(out, vec![5, 7]);
    }
}
