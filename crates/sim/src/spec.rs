//! The consensus specification as a post-hoc checker.
//!
//! The paper's uniform consensus problem (Section 3.1):
//!
//! * **Termination** — every correct process eventually decides;
//! * **Validity** — a decided value was proposed by some process;
//! * **Agreement** — no two *correct* processes decide differently;
//! * **Uniform agreement** — no two processes decide differently,
//!   *be they correct or faulty*.
//!
//! The checker runs over a completed run's decision table and the crash
//! schedule (which determines the correct set).  It reports *all*
//! violations rather than failing fast — counterexample traces in the model
//! checker and in proptest shrink better when the full story is visible.

use crate::engine::Decision;
use std::fmt;
use twostep_model::{CrashSchedule, ProcessId, Round};

/// A single violation of the consensus specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecViolation<O> {
    /// A process decided a value nobody proposed.
    Validity {
        /// The deciding process.
        pid: ProcessId,
        /// The non-proposed value it decided.
        decided: O,
    },
    /// Two processes (any two — the *uniform* property) decided different
    /// values.
    UniformAgreement {
        /// First decider and its value.
        a: (ProcessId, O),
        /// Second decider and its conflicting value.
        b: (ProcessId, O),
    },
    /// Two *correct* processes decided different values (the weaker,
    /// non-uniform property — reported separately so a checker run can tell
    /// "uniformity broke but plain agreement held" from "everything broke").
    Agreement {
        /// First correct decider and its value.
        a: (ProcessId, O),
        /// Second correct decider and its conflicting value.
        b: (ProcessId, O),
    },
    /// A correct process never decided.
    Termination {
        /// The non-deciding correct process.
        pid: ProcessId,
    },
    /// A process decided later than the stated round bound.
    RoundBound {
        /// The tardy process.
        pid: ProcessId,
        /// The round it decided in.
        round: Round,
        /// The bound it violated.
        bound: u32,
    },
}

impl<O: fmt::Debug> fmt::Display for SpecViolation<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::Validity { pid, decided } => {
                write!(f, "validity: {pid} decided non-proposed value {decided:?}")
            }
            SpecViolation::UniformAgreement { a, b } => write!(
                f,
                "uniform agreement: {} decided {:?} but {} decided {:?}",
                a.0, a.1, b.0, b.1
            ),
            SpecViolation::Agreement { a, b } => write!(
                f,
                "agreement: correct {} decided {:?} but correct {} decided {:?}",
                a.0, a.1, b.0, b.1
            ),
            SpecViolation::Termination { pid } => {
                write!(f, "termination: correct {pid} never decided")
            }
            SpecViolation::RoundBound { pid, round, bound } => {
                write!(
                    f,
                    "round bound: {pid} decided in round {round} > bound {bound}"
                )
            }
        }
    }
}

/// The outcome of checking one run against the specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecReport<O> {
    /// Every violation found (empty = the run satisfies the spec).
    pub violations: Vec<SpecViolation<O>>,
}

impl<O> SpecReport<O> {
    /// Whether the run satisfies the specification.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl<O: fmt::Debug> fmt::Display for SpecReport<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(f, "spec satisfied")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Checks a run against uniform consensus.
///
/// * `proposals[i]` — the value `p_{i+1}` proposed;
/// * `decisions[i]` — its decision, if it took one (including processes
///   that decided and then crashed);
/// * `schedule` — determines which processes are correct;
/// * `round_bound` — if given, every decision must happen in a round
///   `≤ bound` (use `f+1` for Theorem 1, `min(f+2, t+1)` for the classic
///   early-deciding baseline, `t+1` for flooding).
pub fn check_uniform_consensus<O: Clone + Eq + fmt::Debug>(
    proposals: &[O],
    decisions: &[Option<Decision<O>>],
    schedule: &CrashSchedule,
    round_bound: Option<u32>,
) -> SpecReport<O> {
    assert_eq!(
        proposals.len(),
        decisions.len(),
        "proposals and decisions must cover the same processes"
    );
    let mut violations = Vec::new();

    // Validity.
    for (i, d) in decisions.iter().enumerate() {
        if let Some(d) = d {
            if !proposals.contains(&d.value) {
                violations.push(SpecViolation::Validity {
                    pid: ProcessId::from_idx(i),
                    decided: d.value.clone(),
                });
            }
        }
    }

    // Uniform agreement: every later decider against the first one,
    // faulty or not.  (Streaming — this check runs once per terminal of
    // an exhaustive exploration, so it must not allocate decider lists.)
    let mut deciders = decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.as_ref().map(|d| (ProcessId::from_idx(i), d)));
    if let Some((first_pid, first)) = deciders.next() {
        for (pid, d) in deciders {
            if d.value != first.value {
                violations.push(SpecViolation::UniformAgreement {
                    a: (first_pid, first.value.clone()),
                    b: (pid, d.value.clone()),
                });
            }
        }
    }

    // Plain agreement: pairs of *correct* deciders.
    let correct = schedule.correct();
    let mut correct_deciders = decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.as_ref().map(|d| (ProcessId::from_idx(i), d)))
        .filter(|(pid, _)| correct.contains(*pid));
    if let Some((first_pid, first)) = correct_deciders.next() {
        for (pid, d) in correct_deciders {
            if d.value != first.value {
                violations.push(SpecViolation::Agreement {
                    a: (first_pid, first.value.clone()),
                    b: (pid, d.value.clone()),
                });
            }
        }
    }

    // Termination (+ optional round bound).
    for pid in correct.iter() {
        match &decisions[pid.idx()] {
            None => violations.push(SpecViolation::Termination { pid }),
            Some(d) => {
                if let Some(bound) = round_bound {
                    if d.round.get() > bound {
                        violations.push(SpecViolation::RoundBound {
                            pid,
                            round: d.round,
                            bound,
                        });
                    }
                }
            }
        }
    }
    // The round bound also applies to faulty deciders: Theorem 1 says *no
    // process* decides after round f+1.
    if let Some(bound) = round_bound {
        for (i, d) in decisions.iter().enumerate() {
            let Some(d) = d else { continue };
            let pid = ProcessId::from_idx(i);
            if !correct.contains(pid) && d.round.get() > bound {
                violations.push(SpecViolation::RoundBound {
                    pid,
                    round: d.round,
                    bound,
                });
            }
        }
    }

    SpecReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashStage};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn dec(v: u64, r: u32) -> Option<Decision<u64>> {
        Some(Decision {
            value: v,
            round: Round::new(r),
        })
    }

    #[test]
    fn clean_run_passes() {
        let schedule = CrashSchedule::none(3);
        let report = check_uniform_consensus(
            &[5u64, 7, 9],
            &[dec(5, 1), dec(5, 1), dec(5, 1)],
            &schedule,
            Some(1),
        );
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn validity_violation_detected() {
        let schedule = CrashSchedule::none(2);
        let report = check_uniform_consensus(&[1u64, 2], &[dec(3, 1), dec(3, 1)], &schedule, None);
        assert!(!report.ok());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SpecViolation::Validity { decided: 3, .. })));
    }

    #[test]
    fn uniform_agreement_covers_faulty_deciders() {
        // p_1 decides 1 then crashes; p_2 (correct) decides 2: plain
        // agreement holds (only one correct decider) but uniformity breaks.
        let schedule = CrashSchedule::none(2).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        let report = check_uniform_consensus(&[1u64, 2], &[dec(1, 1), dec(2, 2)], &schedule, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SpecViolation::UniformAgreement { .. })));
        assert!(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, SpecViolation::Agreement { .. })),
            "plain agreement holds: only one correct decider"
        );
    }

    #[test]
    fn termination_requires_correct_deciders() {
        let schedule = CrashSchedule::none(2);
        let report = check_uniform_consensus(&[1u64, 1], &[dec(1, 1), None], &schedule, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SpecViolation::Termination { pid } if *pid == pid2())));
        fn pid2() -> ProcessId {
            ProcessId::new(2)
        }
    }

    #[test]
    fn faulty_processes_need_not_decide() {
        let schedule = CrashSchedule::none(2).with_crash(
            pid(2),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let report = check_uniform_consensus(&[1u64, 2], &[dec(1, 1), None], &schedule, Some(2));
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn round_bound_applies_to_everyone() {
        // Theorem 1: *no process* decides after round f+1 — including a
        // faulty one that decides late and then crashes.
        let schedule = CrashSchedule::none(2).with_crash(
            pid(1),
            CrashPoint::new(Round::new(3), CrashStage::EndOfRound),
        );
        let report =
            check_uniform_consensus(&[1u64, 1], &[dec(1, 3), dec(1, 1)], &schedule, Some(2));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SpecViolation::RoundBound { round, .. } if round.get() == 3)));
    }

    #[test]
    #[should_panic(expected = "same processes")]
    fn mismatched_lengths_panic() {
        let schedule = CrashSchedule::none(2);
        let _ = check_uniform_consensus(&[1u64], &[dec(1, 1), dec(1, 1)], &schedule, None);
    }

    #[test]
    fn display_formats() {
        let schedule = CrashSchedule::none(2);
        let report = check_uniform_consensus(&[1u64, 2], &[dec(1, 1), dec(2, 1)], &schedule, None);
        let text = report.to_string();
        assert!(text.contains("uniform agreement"), "{text}");
    }
}
