//! Execution traces: optional, level-gated event recording.
//!
//! Traces serve two audiences: the `repro fig1-trace` experiment pretty-
//! prints a full trace in the vocabulary of the paper's Figure 1, and tests
//! assert fine-grained delivery facts (e.g. "the commit to `p_3` was lost
//! but the one to `p_2` arrived — prefix semantics").  Benchmarks run with
//! [`TraceLevel::Off`], which skips event construction entirely (the
//! recording closure is never invoked).

use twostep_model::{ProcessId, Round};

/// How much gets recorded.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceLevel {
    /// Record nothing (hot-path default).
    #[default]
    Off,
    /// Record decisions and crashes only.
    DecisionsOnly,
    /// Record everything, including per-message delivery events.
    Full,
}

/// One observable event of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event<M> {
    /// A round started.
    RoundBegan {
        /// The round.
        round: Round,
    },
    /// A data message was sent (and transmitted/delivered or lost).
    Data {
        /// Round of the send.
        round: Round,
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Whether the sender actually put it on the wire (false = cut by
        /// the sender's own mid-send crash).
        transmitted: bool,
        /// Whether the destination actually received it (requires
        /// `transmitted` plus a destination that executes the round's
        /// receive phase).
        delivered: bool,
        /// The payload.
        msg: M,
    },
    /// A control (commit) message was sent (and transmitted/delivered or
    /// lost).
    Control {
        /// Round of the send.
        round: Round,
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Whether the sender actually put it on the wire (false = beyond
        /// the crash-delivered prefix).
        transmitted: bool,
        /// Whether the destination actually received it.
        delivered: bool,
    },
    /// A process crashed.
    Crashed {
        /// The crashed process.
        pid: ProcessId,
        /// Its crash round.
        round: Round,
    },
    /// A process decided.
    Decided {
        /// The deciding process.
        pid: ProcessId,
        /// Its decision round.
        round: Round,
    },
}

impl<M> Event<M> {
    /// Whether this event kind is recorded at `DecisionsOnly` level.
    fn is_lifecycle(&self) -> bool {
        matches!(self, Event::Crashed { .. } | Event::Decided { .. })
    }
}

/// An append-only event log with a recording level.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace<M> {
    level: TraceLevel,
    events: Vec<Event<M>>,
}

impl<M> Trace<M> {
    /// An empty trace recording at `level`.
    pub fn new(level: TraceLevel) -> Self {
        Trace {
            level,
            events: Vec::new(),
        }
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event<M>] {
        &self.events
    }

    /// Records the event produced by `make` if the level admits it.  The
    /// closure is not invoked when filtered out, so `Off` traces cost one
    /// branch per call site.
    #[inline]
    pub fn record(&mut self, make: impl FnOnce() -> Event<M>) {
        match self.level {
            TraceLevel::Off => {}
            TraceLevel::DecisionsOnly => {
                let ev = make();
                if ev.is_lifecycle() {
                    self.events.push(ev);
                }
            }
            TraceLevel::Full => self.events.push(make()),
        }
    }

    /// Convenience: all delivered-data events as `(round, from, to)`.
    pub fn delivered_data(&self) -> impl Iterator<Item = (Round, ProcessId, ProcessId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Data {
                round,
                from,
                to,
                delivered: true,
                ..
            } => Some((*round, *from, *to)),
            _ => None,
        })
    }

    /// Convenience: all transmitted-data events as `(round, from, to)`.
    pub fn transmitted_data(&self) -> impl Iterator<Item = (Round, ProcessId, ProcessId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Data {
                round,
                from,
                to,
                transmitted: true,
                ..
            } => Some((*round, *from, *to)),
            _ => None,
        })
    }

    /// Convenience: all delivered-control events as `(round, from, to)`.
    pub fn delivered_control(&self) -> impl Iterator<Item = (Round, ProcessId, ProcessId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Control {
                round,
                from,
                to,
                delivered: true,
                ..
            } => Some((*round, *from, *to)),
            _ => None,
        })
    }

    /// Convenience: all transmitted-control events as `(round, from, to)`,
    /// in send order — the sequence the ordered-prefix invariant speaks
    /// about.
    pub fn transmitted_control(&self) -> impl Iterator<Item = (Round, ProcessId, ProcessId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Control {
                round,
                from,
                to,
                transmitted: true,
                ..
            } => Some((*round, *from, *to)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    #[test]
    fn off_records_nothing_and_skips_closure() {
        let mut trace: Trace<u64> = Trace::new(TraceLevel::Off);
        let mut called = false;
        trace.record(|| {
            called = true;
            Event::RoundBegan {
                round: Round::FIRST,
            }
        });
        assert!(!called, "event construction must be skipped at Off");
        assert!(trace.events().is_empty());
    }

    #[test]
    fn decisions_only_filters() {
        let mut trace: Trace<u64> = Trace::new(TraceLevel::DecisionsOnly);
        trace.record(|| Event::RoundBegan {
            round: Round::FIRST,
        });
        trace.record(|| Event::Decided {
            pid: pid(1),
            round: Round::FIRST,
        });
        trace.record(|| Event::Crashed {
            pid: pid(2),
            round: Round::FIRST,
        });
        assert_eq!(trace.events().len(), 2);
    }

    #[test]
    fn full_records_everything() {
        let mut trace: Trace<u64> = Trace::new(TraceLevel::Full);
        trace.record(|| Event::Data {
            round: Round::FIRST,
            from: pid(1),
            to: pid(2),
            transmitted: true,
            delivered: true,
            msg: 9,
        });
        trace.record(|| Event::Control {
            round: Round::FIRST,
            from: pid(1),
            to: pid(3),
            transmitted: true,
            delivered: false,
        });
        assert_eq!(trace.events().len(), 2);
        assert_eq!(
            trace.delivered_data().collect::<Vec<_>>(),
            vec![(Round::FIRST, pid(1), pid(2))]
        );
        assert_eq!(trace.delivered_control().count(), 0, "undelivered filtered");
        assert_eq!(
            trace.transmitted_control().collect::<Vec<_>>(),
            vec![(Round::FIRST, pid(1), pid(3))],
            "transmitted-but-undelivered still visible to the prefix checks"
        );
        assert_eq!(trace.transmitted_data().count(), 1);
    }
}
