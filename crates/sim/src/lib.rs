//! # twostep-sim — the deterministic synchronous round simulator
//!
//! This crate executes round-based protocols under the **extended**
//! synchronous model of Cao–Raynal–Wang–Wu (ICPP 2006) — data messages plus
//! pipelined, ordered one-bit control messages — and, by suppressing the
//! control step, under the **classic** synchronous model.  It is the
//! substrate every algorithm in the workspace runs on:
//!
//! * [`SyncProtocol`] / [`SendPlan`] / [`Inbox`] — the protocol interface
//!   (module [`protocol`]);
//! * [`Stepper`] / [`Simulation`] — round-at-a-time and whole-run engines
//!   enforcing the paper's crash semantics: arbitrary data subsets, ordered
//!   control prefixes, decide-then-crash (module [`engine`]);
//! * [`check_uniform_consensus`] — the consensus specification as a
//!   post-hoc checker (module [`spec`]);
//! * [`Trace`] — optional event recording (module [`trace`]);
//! * [`par_map`] / [`Sweeper`] — parallel parameter sweeps (module
//!   [`sweep`]);
//! * [`run_on_workers`] / [`WorkQueue`] / [`default_threads`] — the
//!   workspace-wide worker scheduler and work-sharing injector (module
//!   [`scheduler`]), shared by sweeps and the exhaustive explorer and
//!   honoring the `TWOSTEP_THREADS` env override.
//!
//! The engine is fully deterministic: given the same protocol states and
//! the same [`CrashSchedule`](twostep_model::CrashSchedule), it produces
//! the same run, bit for bit.  All randomness lives in workload generators
//! (crate `twostep-adversary`) behind explicit seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod protocol;
pub mod scheduler;
pub mod spec;
pub mod stats;
pub mod sweep;
pub mod trace;

pub use engine::{
    Decision, ModelKind, PlanShape, ProcStatus, RoundActions, RunReport, SimError, Simulation,
    Stepper,
};
pub use protocol::{Inbox, SendPlan, Step, SyncProtocol};
pub use scheduler::{
    default_threads, panic_message, run_on_workers, run_tasks_supervised, run_tasks_with_retry,
    CancelToken, RetryPolicy, SupervisedAttempt, TaskAttempt, TaskError, WorkQueue, MAX_THREADS,
};
pub use spec::{check_uniform_consensus, SpecReport, SpecViolation};
pub use stats::{Histogram, Summary};
pub use sweep::{par_map, Sweeper};
pub use trace::{Event, Trace, TraceLevel};
