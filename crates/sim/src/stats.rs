//! Sweep statistics: aggregating thousands of runs into the numbers the
//! experiment tables report.
//!
//! Everything is integer-exact where possible (counts, min/max, exact
//! histogram buckets); means are the only floating-point outputs.  The
//! experiments aggregate *decision rounds* and *message counts*, which are
//! small integers — a dense [`Histogram`] is the right tool.

use std::fmt;

/// A dense histogram over small non-negative integer observations
/// (decision rounds, crash counts, …).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u32) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Merges another histogram into this one (for per-worker partials).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of a specific value.
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<u32> {
        self.counts.iter().position(|c| *c > 0).map(|i| i as u32)
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<u32> {
        self.counts.iter().rposition(|c| *c > 0).map(|i| i as u32)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| {
            let sum: u128 = self
                .counts
                .iter()
                .enumerate()
                .map(|(v, c)| v as u128 * *c as u128)
                .sum();
            sum as f64 / self.total as f64
        })
    }

    /// Smallest value `v` such that at least `q` (0..=1) of the mass is at
    /// `≤ v` — e.g. `quantile(1.0)` = max, `quantile(0.5)` = median-ish.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let threshold = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (v, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= threshold {
                return Some(v as u32);
            }
        }
        self.max()
    }

    /// Iterates `(value, count)` over non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(v, c)| (v as u32, *c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}", self.total)?;
        if let (Some(mn), Some(mx), Some(mean)) = (self.min(), self.max(), self.mean()) {
            write!(f, " min={mn} mean={mean:.2} max={mx}")?;
        }
        Ok(())
    }
}

/// Summary statistics over `u64` observations (message counts, bits) where
/// a dense histogram would be wasteful.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Summary {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Merges another summary.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum, if any observations were recorded.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Maximum, if any observations were recorded.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Mean, if any observations were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}", self.count)?;
        if let (Some(mn), Some(mx), Some(mean)) = (self.min, self.max, self.mean()) {
            write!(f, " min={mn} mean={mean:.2} max={mx}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [1u32, 2, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(3));
        assert!((h.mean().unwrap() - 14.0 / 6.0).abs() < 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u32 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(5), 2);
        assert_eq!(a.max(), Some(9));
    }

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for v in [10u64, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
        assert_eq!(s.mean(), Some(20.0));
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1);
        let mut b = Summary::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.mean(), Some(50.5));
    }

    #[test]
    fn displays() {
        let mut h = Histogram::new();
        h.record(2);
        assert!(h.to_string().contains("n=1"));
        let mut s = Summary::new();
        s.record(7);
        assert!(s.to_string().contains("max=7"));
    }

    #[test]
    fn huge_values_do_not_overflow_sum() {
        let mut s = Summary::new();
        for _ in 0..1000 {
            s.record(u64::MAX);
        }
        assert!(s.mean().unwrap() > 1e18);
    }
}
