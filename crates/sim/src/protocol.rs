//! The protocol interface: what a round-based algorithm looks like to the
//! execution substrates.
//!
//! A round of the extended model (paper Section 2.1) is:
//!
//! 1. a **send phase** with two pipelined steps — data messages to an
//!    arbitrary per-destination set, then one-bit control messages to an
//!    **ordered** sequence — with *no local computation in between*;
//! 2. a **receive phase**;
//! 3. a **computation phase**.
//!
//! [`SyncProtocol::send`] returns the complete [`SendPlan`] for the round
//! *atomically*, which structurally enforces "no computation between the two
//! sending steps": the control list cannot depend on anything received in
//! the current round.  [`SyncProtocol::receive`] covers the receive +
//! computation phases and may decide.
//!
//! The paper's Figure 1 coordinator decides *during the send phase*
//! (line 6, right after issuing its commits); [`SendPlan::decide_after_send`]
//! models exactly that — the engine records the decision only if the
//! process's entire send phase completes (i.e. it does not crash in
//! `BeforeSend`/`MidData`/`MidControl`).

use std::fmt;
use twostep_model::{BitSized, ProcessId, Round, SpillCodec};

/// Everything a process emits in one round's send phase.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SendPlan<M, O> {
    /// Data messages: `(destination, payload)` pairs.  Destinations form an
    /// arbitrary set; a crash during this step delivers an arbitrary subset.
    pub data: Vec<(ProcessId, M)>,
    /// Control (synchronization) destinations **in sending order**.  A crash
    /// during this step delivers an ordered prefix.
    pub control: Vec<ProcessId>,
    /// A decision taken at the end of the send phase (Figure 1 line 6).
    /// Recorded only if the send phase completes without a crash; the
    /// process then halts without executing the receive phase (the paper's
    /// `return`).
    pub decide_after_send: Option<O>,
}

impl<M, O> SendPlan<M, O> {
    /// A plan that sends nothing and keeps participating.
    pub fn quiet() -> Self {
        SendPlan {
            data: Vec::new(),
            control: Vec::new(),
            decide_after_send: None,
        }
    }

    /// Adds a data message, builder style.
    pub fn with_data(mut self, to: ProcessId, msg: M) -> Self {
        self.data.push((to, msg));
        self
    }

    /// Appends a control destination (order is the sending order).
    pub fn with_control(mut self, to: ProcessId) -> Self {
        self.control.push(to);
        self
    }

    /// Schedules a decision for the end of the send phase.
    pub fn then_decide(mut self, value: O) -> Self {
        self.decide_after_send = Some(value);
        self
    }

    /// Empties the plan while keeping its buffers, so a reused plan slot
    /// ([`SyncProtocol::send_into`]) allocates nothing when refilled.
    pub fn clear(&mut self) {
        self.data.clear();
        self.control.clear();
        self.decide_after_send = None;
    }
}

/// Plans are part of some protocol wrappers' state (the §2.2 block
/// simulation stashes one mid-block), so they must be spillable for the
/// model checker's disk-backed memo and its distributed interchange
/// segments.
impl<M: SpillCodec, O: SpillCodec> SpillCodec for SendPlan<M, O> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.data.encode(out);
        self.control.encode(out);
        self.decide_after_send.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(SendPlan {
            data: Vec::decode(input)?,
            control: Vec::decode(input)?,
            decide_after_send: Option::decode(input)?,
        })
    }
}

/// The messages a process finds in its inbox during the receive phase.
///
/// Senders appear in ascending rank order.  The extended model guarantees a
/// channel carries at most one data message and one control bit per round
/// (paper footnote 3), so per-sender lookups return at most one entry.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Inbox<M> {
    data: Vec<(ProcessId, M)>,
    control: Vec<ProcessId>,
}

impl<M> Inbox<M> {
    /// An empty inbox.
    pub fn new() -> Self {
        Inbox {
            data: Vec::new(),
            control: Vec::new(),
        }
    }

    /// Clears the inbox for reuse (keeps allocations).
    pub fn clear(&mut self) {
        self.data.clear();
        self.control.clear();
    }

    /// Assembles an inbox from unordered parts, sorting by sender rank.
    ///
    /// Intended for substrates outside this crate (the classic-model
    /// simulation of the extended model, the threaded runtime) that collect
    /// deliveries in arrival order and must present them in the canonical
    /// sender order.
    ///
    /// # Panics
    ///
    /// Panics if a sender appears twice in either part — the model
    /// guarantees at most one data and one control message per channel per
    /// round (paper footnote 3).
    pub fn from_parts(mut data: Vec<(ProcessId, M)>, mut control: Vec<ProcessId>) -> Self {
        data.sort_by_key(|(p, _)| *p);
        control.sort();
        assert!(
            data.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate data sender in one round"
        );
        assert!(
            control.windows(2).all(|w| w[0] != w[1]),
            "duplicate control sender in one round"
        );
        Inbox { data, control }
    }

    /// Records a delivered data message (engine-side).
    pub(crate) fn push_data(&mut self, from: ProcessId, msg: M) {
        debug_assert!(
            self.data.last().is_none_or(|(p, _)| *p < from),
            "engine delivers in ascending sender order"
        );
        self.data.push((from, msg));
    }

    /// Records a delivered control message (engine-side).
    pub(crate) fn push_control(&mut self, from: ProcessId) {
        debug_assert!(
            self.control.last().is_none_or(|p| *p < from),
            "engine delivers in ascending sender order"
        );
        self.control.push(from);
    }

    /// The data message received from `from` this round, if any.
    pub fn data_from(&self, from: ProcessId) -> Option<&M> {
        self.data
            .binary_search_by_key(&from, |(p, _)| *p)
            .ok()
            .map(|i| &self.data[i].1)
    }

    /// Whether a control message from `from` arrived this round.
    pub fn control_from(&self, from: ProcessId) -> bool {
        self.control.binary_search(&from).is_ok()
    }

    /// All data messages, ascending sender rank.
    pub fn data(&self) -> &[(ProcessId, M)] {
        &self.data
    }

    /// All control senders, ascending rank.
    pub fn control(&self) -> &[ProcessId] {
        &self.control
    }

    /// Whether nothing at all was received.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.control.is_empty()
    }
}

/// The outcome of a process's receive/computation phase.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step<O> {
    /// Keep participating in the next round.
    Continue,
    /// Decide `O` and halt (the paper's `return v`).
    Decide(O),
    /// Decide `O` but **keep participating** — the *early deciding, late
    /// stopping* pattern of the classic-model literature (decision by
    /// `f+1`, halting only by `f+2` / `t+1`; Dolev–Reischuk–Strong).  The
    /// engine records the decision (first one wins) and the process stays
    /// active; it must eventually emit [`Step::Decide`] to halt.
    DecideAndContinue(O),
}

/// A round-based synchronous protocol, written against the extended model.
///
/// A protocol instance is the state of **one** process.  The engine calls
/// [`send`](Self::send) at the start of each round for every live,
/// undecided process, applies the adversary's crash/delivery choices, then
/// calls [`receive`](Self::receive) on every process that reaches the
/// receive phase.
///
/// Protocols written for the **classic** model simply keep
/// [`SendPlan::control`] empty; the engine rejects control messages when
/// running with classic semantics, which is how the "suppress the second
/// sending step and you get the traditional model" remark of Section 2.2 is
/// enforced mechanically.
///
/// # Examples
///
/// A one-round broadcaster: `p_1` pushes its value with a pipelined commit;
/// receivers decide when the commit arrives:
///
/// ```
/// use twostep_model::{ProcessId, Round};
/// use twostep_sim::{Inbox, SendPlan, Step, SyncProtocol};
///
/// #[derive(Clone)]
/// struct OneShot { me: ProcessId, n: usize, value: u64 }
///
/// impl SyncProtocol for OneShot {
///     type Msg = u64;
///     type Output = u64;
///
///     fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
///         if round == Round::FIRST && self.me == ProcessId::new(1) {
///             let mut plan = SendPlan::quiet();
///             for dst in self.me.higher(self.n) {
///                 plan = plan.with_data(dst, self.value);
///             }
///             for dst in self.me.higher(self.n).rev() {
///                 plan = plan.with_control(dst); // ordered: highest first
///             }
///             plan.then_decide(self.value)       // Figure 1 line 6
///         } else {
///             SendPlan::quiet()
///         }
///     }
///
///     fn receive(&mut self, _round: Round, inbox: &Inbox<u64>) -> Step<u64> {
///         match (inbox.data_from(ProcessId::new(1)), inbox.control_from(ProcessId::new(1))) {
///             (Some(v), true) => Step::Decide(*v),
///             _ => Step::Continue,
///         }
///     }
/// }
/// ```
pub trait SyncProtocol {
    /// Data message payload.  `Send` so steppers (which buffer messages in
    /// flight) can move between the parallel explorer's worker threads.
    type Msg: Clone + BitSized + fmt::Debug + Send;
    /// Decision value.  `Send + Sync` so memoized subtree summaries (which
    /// carry decided values) can be shared across worker threads.
    type Output: Clone + Eq + fmt::Debug + Send + Sync;

    /// Produce the complete send phase for `round`.
    fn send(&mut self, round: Round) -> SendPlan<Self::Msg, Self::Output>;

    /// Produce the send phase for `round` **into** `plan`, reusing its
    /// buffers.  The engine's hot path calls this once per process per
    /// round; the default delegates to [`send`](Self::send), so existing
    /// protocols behave identically, while hot protocols override it to
    /// refill the cleared plan in place ([`SendPlan::clear`] keeps the
    /// message and control vectors' allocations) — the model checker
    /// executes millions of rounds, and one or two plan vectors per
    /// round was a measurable share of its successor-generation cost.
    ///
    /// An override must leave `plan` exactly as [`send`](Self::send)
    /// would have returned it (the two are interchangeable to every
    /// engine).
    fn send_into(&mut self, round: Round, plan: &mut SendPlan<Self::Msg, Self::Output>) {
        *plan = self.send(round);
    }

    /// Consume the round's inbox (receive + computation phases).
    fn receive(&mut self, round: Round, inbox: &Inbox<Self::Msg>) -> Step<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    #[test]
    fn plan_builders() {
        let plan: SendPlan<u64, u64> = SendPlan::quiet()
            .with_data(pid(2), 7)
            .with_data(pid(3), 7)
            .with_control(pid(2))
            .with_control(pid(3))
            .then_decide(7);
        assert_eq!(plan.data.len(), 2);
        assert_eq!(plan.control, vec![pid(2), pid(3)]);
        assert_eq!(plan.decide_after_send, Some(7));
    }

    #[test]
    fn quiet_plan_is_empty() {
        let plan: SendPlan<u64, u64> = SendPlan::quiet();
        assert!(plan.data.is_empty());
        assert!(plan.control.is_empty());
        assert!(plan.decide_after_send.is_none());
    }

    #[test]
    fn inbox_lookup() {
        let mut inbox: Inbox<u64> = Inbox::new();
        assert!(inbox.is_empty());
        inbox.push_data(pid(1), 10);
        inbox.push_data(pid(3), 30);
        inbox.push_control(pid(3));

        assert_eq!(inbox.data_from(pid(1)), Some(&10));
        assert_eq!(inbox.data_from(pid(2)), None);
        assert_eq!(inbox.data_from(pid(3)), Some(&30));
        assert!(!inbox.control_from(pid(1)));
        assert!(inbox.control_from(pid(3)));
        assert!(!inbox.is_empty());
    }

    #[test]
    fn inbox_clear_reuses() {
        let mut inbox: Inbox<u64> = Inbox::new();
        inbox.push_data(pid(1), 1);
        inbox.push_control(pid(1));
        inbox.clear();
        assert!(inbox.is_empty());
        assert_eq!(inbox.data_from(pid(1)), None);
    }
}
