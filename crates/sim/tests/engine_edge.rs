//! Engine edge cases: degenerate systems, no-op crash points, prefix
//! clamping, self-sends, stale schedules, and round-cap behaviour.

use twostep_model::{
    CrashPoint, CrashSchedule, CrashStage, PidSet, ProcessId, Round, SystemConfig,
};
use twostep_sim::{Inbox, ModelKind, SendPlan, Simulation, Step, SyncProtocol};

fn pid(r: u32) -> ProcessId {
    ProcessId::new(r)
}

/// Echoes one data message + one commit to a fixed destination each round;
/// decides on receipt of any commit.
#[derive(Clone, Debug)]
struct Echoer {
    me: ProcessId,
    to: ProcessId,
    rounds_to_send: u32,
}

impl SyncProtocol for Echoer {
    type Msg = u64;
    type Output = u64;
    fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
        if round.get() <= self.rounds_to_send && self.me != self.to {
            SendPlan::quiet()
                .with_data(self.to, round.get() as u64)
                .with_control(self.to)
        } else {
            SendPlan::quiet()
        }
    }
    fn receive(&mut self, _round: Round, inbox: &Inbox<u64>) -> Step<u64> {
        if !inbox.control().is_empty() {
            Step::Decide(inbox.data().first().map(|(_, m)| *m).unwrap_or(0))
        } else {
            Step::Continue
        }
    }
}

#[test]
fn single_process_system_runs() {
    #[derive(Clone)]
    struct Loner;
    impl SyncProtocol for Loner {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _r: Round) -> SendPlan<u64, u64> {
            SendPlan::quiet().then_decide(1)
        }
        fn receive(&mut self, _r: Round, _i: &Inbox<u64>) -> Step<u64> {
            Step::Continue
        }
    }
    let config = SystemConfig::new(1, 0).unwrap();
    let schedule = CrashSchedule::none(1);
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .run(vec![Loner])
        .unwrap();
    assert_eq!(report.decisions[0].as_ref().unwrap().value, 1);
    assert_eq!(report.metrics.total_messages(), 0);
}

#[test]
fn crash_point_after_decision_is_a_noop() {
    // p_1 is scheduled to crash in round 3, but everyone decides in round
    // 1: the crash never fires and p_1 counts as a decider, not a crash.
    let config = SystemConfig::new(2, 1).unwrap();
    let schedule = CrashSchedule::none(2).with_crash(
        pid(1),
        CrashPoint::new(Round::new(3), CrashStage::BeforeSend),
    );
    let procs = vec![
        Echoer {
            me: pid(1),
            to: pid(2),
            rounds_to_send: 1,
        },
        Echoer {
            me: pid(2),
            to: pid(1),
            rounds_to_send: 1,
        },
    ];
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .run(procs)
        .unwrap();
    assert!(report.decisions[0].is_some());
    assert!(report.decisions[1].is_some());
    assert!(report.crashed.is_empty(), "no-op crash point must not fire");
}

#[test]
fn mid_control_prefix_longer_than_list_is_clamped() {
    // Prefix 99 on a 1-element control list: everything is delivered, but
    // the send phase still did not complete (no decide-after-send).
    let config = SystemConfig::new(2, 1).unwrap();
    let schedule = CrashSchedule::none(2).with_crash(
        pid(1),
        CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 99 }),
    );
    let procs = vec![
        Echoer {
            me: pid(1),
            to: pid(2),
            rounds_to_send: 1,
        },
        Echoer {
            me: pid(2),
            to: pid(1),
            rounds_to_send: 0,
        },
    ];
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .run(procs)
        .unwrap();
    // p_2 received data + commit from p_1 and decides.
    assert_eq!(report.decisions[1].as_ref().unwrap().value, 1);
    assert!(report.crashed.contains(pid(1)));
    assert_eq!(report.metrics.control_messages, 1, "clamped to list length");
}

#[test]
fn mid_data_subset_is_intersected_with_actual_destinations() {
    // The adversary's subset may include processes the plan never sends
    // to; only the intersection matters.
    let config = SystemConfig::new(3, 1).unwrap();
    let schedule = CrashSchedule::none(3).with_crash(
        pid(1),
        CrashPoint::new(
            Round::FIRST,
            CrashStage::MidData {
                delivered: PidSet::full(3), // "deliver to everyone"
            },
        ),
    );
    let procs = vec![
        Echoer {
            me: pid(1),
            to: pid(2),
            rounds_to_send: 1,
        }, // sends to p_2 only
        Echoer {
            me: pid(2),
            to: pid(3),
            rounds_to_send: 0,
        },
        Echoer {
            me: pid(3),
            to: pid(2),
            rounds_to_send: 0,
        },
    ];
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .max_rounds(3)
        .run(procs)
        .unwrap();
    assert_eq!(
        report.metrics.data_messages, 1,
        "only the actual destination counts"
    );
    assert_eq!(report.metrics.control_messages, 0, "control step never ran");
}

#[test]
fn round_cap_reports_without_deciding() {
    #[derive(Clone)]
    struct Stubborn;
    impl SyncProtocol for Stubborn {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _r: Round) -> SendPlan<u64, u64> {
            SendPlan::quiet()
        }
        fn receive(&mut self, _r: Round, _i: &Inbox<u64>) -> Step<u64> {
            Step::Continue
        }
    }
    let config = SystemConfig::new(2, 0).unwrap();
    let schedule = CrashSchedule::none(2);
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .max_rounds(5)
        .run(vec![Stubborn, Stubborn])
        .unwrap();
    assert!(report.hit_round_cap);
    assert_eq!(report.metrics.rounds_executed, 5);
    assert!(report.decisions.iter().all(|d| d.is_none()));
}

#[test]
fn self_send_is_delivered_in_same_round() {
    #[derive(Clone)]
    struct SelfTalker {
        me: ProcessId,
    }
    impl SyncProtocol for SelfTalker {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, _r: Round) -> SendPlan<u64, u64> {
            SendPlan::quiet().with_data(self.me, 42)
        }
        fn receive(&mut self, _r: Round, inbox: &Inbox<u64>) -> Step<u64> {
            match inbox.data_from(self.me) {
                Some(v) => Step::Decide(*v),
                None => Step::Continue,
            }
        }
    }
    let config = SystemConfig::new(2, 0).unwrap();
    let schedule = CrashSchedule::none(2);
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .run(vec![SelfTalker { me: pid(1) }, SelfTalker { me: pid(2) }])
        .unwrap();
    for d in &report.decisions {
        assert_eq!(d.as_ref().unwrap().value, 42);
        assert_eq!(d.as_ref().unwrap().round, Round::FIRST);
    }
}

#[test]
fn duplicate_commit_senders_are_each_counted_once_per_destination() {
    // Two different senders commit to the same destination in one round:
    // the inbox holds both, sorted by sender.
    #[derive(Clone)]
    struct Committer {
        me: ProcessId,
    }
    impl SyncProtocol for Committer {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
            if round == Round::FIRST && self.me != pid(3) {
                SendPlan::quiet().with_control(pid(3))
            } else {
                SendPlan::quiet()
            }
        }
        fn receive(&mut self, _r: Round, inbox: &Inbox<u64>) -> Step<u64> {
            if self.me == pid(3) && inbox.control().len() == 2 {
                assert_eq!(inbox.control(), &[pid(1), pid(2)]);
                Step::Decide(2)
            } else if self.me != pid(3) {
                Step::Decide(0)
            } else {
                Step::Continue
            }
        }
    }
    let config = SystemConfig::new(3, 0).unwrap();
    let schedule = CrashSchedule::none(3);
    let report = Simulation::new(config, ModelKind::Extended, &schedule)
        .run(vec![
            Committer { me: pid(1) },
            Committer { me: pid(2) },
            Committer { me: pid(3) },
        ])
        .unwrap();
    assert_eq!(report.decisions[2].as_ref().unwrap().value, 2);
    assert_eq!(report.metrics.control_messages, 2);
}
