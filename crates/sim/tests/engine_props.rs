//! Engine-level property tests: determinism, accounting consistency, halt
//! semantics, and crash-stage behaviour — driven by a seed-configurable
//! "chaos" protocol that exercises arbitrary send patterns.

use proptest::prelude::*;
use twostep_model::{
    BitSized, CrashPoint, CrashSchedule, CrashStage, PidSet, ProcessId, Round, SystemConfig,
};
use twostep_sim::{Inbox, ModelKind, SendPlan, Simulation, Step, SyncProtocol, TraceLevel};

/// A protocol whose behaviour is an arbitrary (but deterministic) function
/// of a seed: each round it sends data to a seed-chosen subset, control to
/// a seed-chosen ordered list, and decides after a seed-chosen number of
/// rounds.  It is *not* a consensus algorithm; it exists to stress the
/// engine's bookkeeping under maximal behavioural diversity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Chaos {
    me: ProcessId,
    n: usize,
    seed: u64,
    rounds_seen: u32,
    inbox_digest: u64,
}

impl Chaos {
    fn mix(&self, round: u32, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.me.rank() as u64) << 32)
            .wrapping_add(round as u64)
            .wrapping_add(salt.wrapping_mul(0xD134_2543_DE82_EF95));
        x ^= x >> 31;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x
    }
}

impl SyncProtocol for Chaos {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
        let r = round.get();
        let mut plan = SendPlan::quiet();
        for dst in ProcessId::all(self.n) {
            if dst != self.me && self.mix(r, dst.rank() as u64).is_multiple_of(3) {
                plan.data.push((dst, self.mix(r, 1000 + dst.rank() as u64)));
            }
        }
        // An ordered control list: a seed-chosen permutation prefix.
        let mut ctl: Vec<ProcessId> = ProcessId::all(self.n)
            .filter(|d| *d != self.me && self.mix(r, 2000 + d.rank() as u64).is_multiple_of(4))
            .collect();
        if self.mix(r, 3000).is_multiple_of(2) {
            ctl.reverse();
        }
        plan.control = ctl;
        // Decide-after-send occasionally.
        if self.mix(r, 4000).is_multiple_of(11) {
            plan = plan.then_decide(self.inbox_digest);
        }
        plan
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<u64>) -> Step<u64> {
        self.rounds_seen += 1;
        for (from, msg) in inbox.data() {
            self.inbox_digest = self
                .inbox_digest
                .wrapping_mul(31)
                .wrapping_add(*msg ^ from.rank() as u64);
        }
        for from in inbox.control() {
            self.inbox_digest = self.inbox_digest.wrapping_add(from.rank() as u64) << 1;
        }
        if self.mix(round.get(), 5000).is_multiple_of(7) {
            Step::Decide(self.inbox_digest)
        } else {
            Step::Continue
        }
    }
}

fn chaos_system(n: usize, seed: u64) -> Vec<Chaos> {
    (0..n)
        .map(|i| Chaos {
            me: ProcessId::from_idx(i),
            n,
            seed,
            rounds_seen: 0,
            inbox_digest: 0,
        })
        .collect()
}

fn schedule_from(n: usize, crashes: &[(u32, u32, u8)]) -> CrashSchedule {
    let mut s = CrashSchedule::none(n);
    for (rank, round_raw, kind) in crashes {
        let rank = (*rank % n as u32) + 1;
        let round = Round::new((*round_raw % 4) + 1);
        let stage = match kind % 4 {
            0 => CrashStage::BeforeSend,
            1 => CrashStage::MidData {
                delivered: PidSet::from_iter(
                    n,
                    (1..=n as u32).filter(|r| r % 2 == 0).map(ProcessId::new),
                ),
            },
            2 => CrashStage::MidControl {
                prefix_len: (*round_raw as usize) % (n + 1),
            },
            _ => CrashStage::EndOfRound,
        };
        s.set(ProcessId::new(rank), Some(CrashPoint::new(round, stage)));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_is_deterministic(
        n in 2usize..=10,
        seed in any::<u64>(),
        crashes in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u8>()), 0..4),
    ) {
        let config = SystemConfig::new(n, n - 1).unwrap();
        let schedule = schedule_from(n, &crashes);
        if schedule.validate(&config).is_err() {
            return Ok(()); // duplicate victims collapsed below t anyway; skip rare invalids
        }
        let run = |lvl| {
            Simulation::new(config, ModelKind::Extended, &schedule)
                .max_rounds(8)
                .trace_level(lvl)
                .run(chaos_system(n, seed))
                .unwrap()
        };
        let a = run(TraceLevel::Off);
        let b = run(TraceLevel::Off);
        prop_assert_eq!(&a.decisions, &b.decisions);
        prop_assert_eq!(&a.crashed, &b.crashed);
        prop_assert_eq!(&a.metrics, &b.metrics);
        // Trace level must not affect semantics.
        let c = run(TraceLevel::Full);
        prop_assert_eq!(&a.decisions, &c.decisions);
        prop_assert_eq!(&a.metrics.data_messages, &c.metrics.data_messages);
    }

    #[test]
    fn accounting_matches_trace(
        n in 2usize..=8,
        seed in any::<u64>(),
        crashes in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u8>()), 0..3),
    ) {
        let config = SystemConfig::new(n, n - 1).unwrap();
        let schedule = schedule_from(n, &crashes);
        if schedule.validate(&config).is_err() {
            return Ok(());
        }
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .max_rounds(8)
            .trace_level(TraceLevel::Full)
            .run(chaos_system(n, seed))
            .unwrap();

        // Metrics == what the full trace says was transmitted.
        let data_tx = report.trace.transmitted_data().count() as u64;
        let ctl_tx = report.trace.transmitted_control().count() as u64;
        prop_assert_eq!(report.metrics.data_messages, data_tx);
        prop_assert_eq!(report.metrics.control_messages, ctl_tx);
        prop_assert_eq!(report.metrics.control_bits, ctl_tx, "one bit per commit");
        // Chaos messages are u64: 64 bits each.
        prop_assert_eq!(report.metrics.data_bits, 64 * data_tx);
        // Delivery ⊆ transmission.
        prop_assert!(report.trace.delivered_data().count() as u64 <= data_tx);
        prop_assert!(report.trace.delivered_control().count() as u64 <= ctl_tx);
        prop_assert_eq!(0u64.bit_size(), 64);
    }

    #[test]
    fn decided_and_crashed_processes_go_silent(
        n in 2usize..=8,
        seed in any::<u64>(),
    ) {
        // After a process decides (or crashes) in round r, the trace must
        // contain no transmissions from it in rounds > r.
        let config = SystemConfig::new(n, n - 1).unwrap();
        let schedule = schedule_from(n, &[(0, 0, 0), (1, 1, 3)]);
        if schedule.validate(&config).is_err() {
            return Ok(());
        }
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .max_rounds(8)
            .trace_level(TraceLevel::Full)
            .run(chaos_system(n, seed))
            .unwrap();

        let mut gone_after: Vec<Option<u32>> = vec![None; n];
        for ev in report.trace.events() {
            if let twostep_sim::Event::Decided { pid, round } = ev {
                gone_after[pid.idx()] = Some(round.get());
            }
            if let twostep_sim::Event::Crashed { pid, round } = ev {
                let g = &mut gone_after[pid.idx()];
                *g = Some(g.map_or(round.get(), |x| x.min(round.get())));
            }
        }
        for (round, from, _to) in report.trace.transmitted_data() {
            if let Some(g) = gone_after[from.idx()] {
                prop_assert!(round.get() <= g, "{from} transmitted after leaving at {g}");
            }
        }
    }
}
