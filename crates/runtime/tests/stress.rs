//! Runtime stress tests: larger systems, repeated runs, and randomized
//! schedules — guarding against deadlocks and bookkeeping drift between
//! the coordinator and the worker threads.

use twostep_adversary::{random_schedule, RandomScheduleSpec};
use twostep_core::crw_processes;
use twostep_model::{CrashSchedule, SystemConfig};
use twostep_runtime::ThreadedRuntime;
use twostep_sim::check_uniform_consensus;

#[test]
fn thirty_two_threads_failure_free() {
    let n = 32;
    let config = SystemConfig::max_resilience(n).unwrap();
    let schedule = CrashSchedule::none(n);
    let proposals: Vec<u64> = (0..n as u64).collect();
    let report = ThreadedRuntime::new(config, &schedule)
        .run(crw_processes(&config, &proposals))
        .unwrap();
    assert_eq!(report.decided_values(), vec![0]);
    assert!(!report.hit_round_cap);
    let spec = check_uniform_consensus(&proposals, &report.decisions, &schedule, Some(1));
    assert!(spec.ok(), "{spec}");
}

#[test]
fn repeated_runs_are_stable() {
    // 50 consecutive full runtimes: no deadlock, no flaky decisions.
    let n = 8;
    let config = SystemConfig::max_resilience(n).unwrap();
    let schedule = CrashSchedule::none(n);
    let proposals: Vec<u64> = (0..n as u64).map(|i| 70 + i).collect();
    for round_trip in 0..50 {
        let report = ThreadedRuntime::new(config, &schedule)
            .run(crw_processes(&config, &proposals))
            .unwrap();
        assert_eq!(report.decided_values(), vec![70], "iteration {round_trip}");
    }
}

#[test]
fn randomized_schedules_never_hang_or_disagree() {
    let n = 10;
    let config = SystemConfig::new(n, 5).unwrap();
    let proposals: Vec<u64> = (0..n as u64).map(|i| 40 + i).collect();
    for seed in 0..60u64 {
        let schedule = random_schedule(&config, RandomScheduleSpec::uniform(&config), seed);
        let report = ThreadedRuntime::new(config, &schedule)
            .run(crw_processes(&config, &proposals))
            .unwrap();
        assert!(!report.hit_round_cap, "seed {seed} hit the cap");
        let spec = check_uniform_consensus(
            &proposals,
            &report.decisions,
            &schedule,
            Some(schedule.f() as u32 + 1),
        );
        assert!(spec.ok(), "seed {seed}: {spec}");
    }
}
