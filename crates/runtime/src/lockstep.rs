//! The lockstep executor: coordinator thread + one worker thread per
//! process, with phase synchronization over channels.
//!
//! Protocol per round `r` (mirroring the model's three phases):
//!
//! 1. coordinator → every `Active` worker: `SendPhase(r)`;
//! 2. worker: compute the round's [`SendPlan`], let the network shim
//!    transmit it (applying any scheduled crash stage), report back;
//! 3. coordinator → every worker that reaches the receive phase:
//!    `ReceivePhase(r)`;
//! 4. worker: drain its inbox channel, assemble the round [`Inbox`], run
//!    `receive`, report any decision.
//!
//! The coordinator's plan/ack round-trip is the happens-before edge that
//! makes "drain the channel" equal "receive everything sent this round" —
//! the runtime counterpart of the synchronous model's fundamental
//! property that a round-`r` message is received in round `r`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::fmt;
use twostep_model::{
    BitSized, CrashSchedule, CrashStage, DeliveryOutcome, PidSet, ProcessId, Round, RunMetrics,
    SystemConfig,
};
use twostep_sim::{Decision, Inbox, ModelKind, SendPlan, Step, SyncProtocol};

/// Errors surfaced by the threaded runtime.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// Number of protocol instances ≠ `n`.
    WrongProcessCount {
        /// Instances supplied.
        got: usize,
        /// Configured `n`.
        want: usize,
    },
    /// The schedule failed validation.
    BadSchedule(String),
    /// A protocol used control messages under classic semantics.
    ControlInClassicModel {
        /// Offending process.
        pid: ProcessId,
        /// Round of the offence.
        round: Round,
    },
    /// A worker thread panicked.
    WorkerPanicked {
        /// The panicked process.
        pid: ProcessId,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WrongProcessCount { got, want } => {
                write!(f, "got {got} protocol instances for n={want}")
            }
            RuntimeError::BadSchedule(e) => write!(f, "invalid crash schedule: {e}"),
            RuntimeError::ControlInClassicModel { pid, round } => write!(
                f,
                "{pid} sent a control message in round {round} under classic semantics"
            ),
            RuntimeError::WorkerPanicked { pid } => write!(f, "worker thread of {pid} panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Result of a threaded run — the same observables as the simulator's
/// [`RunReport`](twostep_sim::RunReport).
#[derive(Clone, Debug)]
pub struct RuntimeReport<O> {
    /// Per-process decisions (present for decided-then-crashed processes).
    pub decisions: Vec<Option<Decision<O>>>,
    /// Processes that crashed.
    pub crashed: PidSet,
    /// Metrics (transmission accounting, as in the simulator).
    pub metrics: RunMetrics,
    /// Whether the round cap was hit before quiescence.
    pub hit_round_cap: bool,
}

impl<O: Clone + Eq> RuntimeReport<O> {
    /// Distinct decided values.
    pub fn decided_values(&self) -> Vec<O> {
        let mut vals = Vec::new();
        for d in self.decisions.iter().flatten() {
            if !vals.contains(&d.value) {
                vals.push(d.value.clone());
            }
        }
        vals
    }
}

/// Messages on the wire between worker threads.
enum NetMsg<M> {
    Data { from: ProcessId, msg: M },
    Control { from: ProcessId },
}

/// Coordinator → worker commands.
enum Ctl {
    SendPhase(Round),
    ReceivePhase(Round),
    Die,
}

/// Worker → coordinator reports.
enum Feedback<O> {
    SendDone {
        idx: usize,
        /// Decision taken at the end of a *completed* send phase.
        decided: Option<O>,
        /// The worker crashed during its send phase (exited already).
        crashed_in_send: bool,
        /// Whether the worker reaches the receive phase this round.
        receives: bool,
        /// Control-in-classic violation detected worker-side.
        classic_violation: bool,
    },
    RecvDone {
        idx: usize,
        decision: Option<O>,
        /// Whether a decision halts the worker (`Step::Decide`) or lets it
        /// keep participating (`Step::DecideAndContinue`).
        halts: bool,
        /// The worker dies after this round (EndOfRound crash) — it has
        /// already exited.
        dies: bool,
    },
    /// The protocol code panicked inside the worker; the worker caught it
    /// and is exiting.  Without this report the coordinator would block
    /// forever waiting for the phase feedback.
    Panicked { idx: usize },
}

/// The threaded lockstep runtime.
///
/// # Examples
///
/// The paper's algorithm on real OS threads — one per process — with the
/// same observable outcome as the deterministic simulator:
///
/// ```
/// use twostep_core::crw_processes;
/// use twostep_model::{CrashSchedule, SystemConfig};
/// use twostep_runtime::ThreadedRuntime;
///
/// let config = SystemConfig::new(4, 1).unwrap();
/// let schedule = CrashSchedule::none(4);
/// let report = ThreadedRuntime::new(config, &schedule)
///     .run(crw_processes(&config, &[5u64, 6, 7, 8]))
///     .unwrap();
/// assert_eq!(report.decided_values(), vec![5]);
/// ```
pub struct ThreadedRuntime<'a> {
    config: SystemConfig,
    model: ModelKind,
    schedule: &'a CrashSchedule,
    max_rounds: u32,
}

impl<'a> ThreadedRuntime<'a> {
    /// Creates a runtime for `config` under `schedule` (extended model).
    pub fn new(config: SystemConfig, schedule: &'a CrashSchedule) -> Self {
        ThreadedRuntime {
            config,
            model: ModelKind::Extended,
            schedule,
            max_rounds: (config.n() + config.t() + 2) as u32,
        }
    }

    /// Selects classic semantics (control messages become an error).
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Overrides the round cap.
    pub fn max_rounds(mut self, cap: u32) -> Self {
        self.max_rounds = cap;
        self
    }

    /// Runs `procs` on real threads to quiescence (or the round cap).
    pub fn run<P>(&self, procs: Vec<P>) -> Result<RuntimeReport<P::Output>, RuntimeError>
    where
        P: SyncProtocol + Send,
        P::Msg: Send,
        P::Output: Send,
    {
        let n = self.config.n();
        if procs.len() != n {
            return Err(RuntimeError::WrongProcessCount {
                got: procs.len(),
                want: n,
            });
        }
        self.schedule
            .validate(&self.config)
            .map_err(|e| RuntimeError::BadSchedule(e.to_string()))?;

        // Wiring: per-process inbox, per-process control line, shared
        // feedback line, shared metrics.
        let mut inbox_tx: Vec<Sender<NetMsg<P::Msg>>> = Vec::with_capacity(n);
        let mut inbox_rx: Vec<Option<Receiver<NetMsg<P::Msg>>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            inbox_tx.push(tx);
            inbox_rx.push(Some(rx));
        }
        let mut ctl_tx: Vec<Sender<Ctl>> = Vec::with_capacity(n);
        let mut ctl_rx: Vec<Option<Receiver<Ctl>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            ctl_tx.push(tx);
            ctl_rx.push(Some(rx));
        }
        let (fb_tx, fb_rx) = unbounded::<Feedback<P::Output>>();
        let metrics = Mutex::new(RunMetrics::new(n));
        let model = self.model;
        let schedule = self.schedule;

        let mut decisions: Vec<Option<Decision<P::Output>>> = vec![None; n];
        let mut crashed = PidSet::empty(n);
        let mut hit_round_cap = true;
        let mut error: Option<RuntimeError> = None;

        std::thread::scope(|scope| {
            // --- Workers.
            let mut handles = Vec::with_capacity(n);
            for (i, mut proto) in procs.into_iter().enumerate() {
                let my_ctl = ctl_rx[i].take().expect("ctl receiver taken once");
                let my_inbox = inbox_rx[i].take().expect("inbox receiver taken once");
                let net: Vec<Sender<NetMsg<P::Msg>>> = inbox_tx.clone();
                let fb = fb_tx.clone();
                let metrics = &metrics;
                let me = ProcessId::from_idx(i);

                handles.push(scope.spawn(move || {
                    worker_loop::<P>(
                        me, n, model, schedule, &mut proto, my_ctl, my_inbox, net, fb, metrics,
                    );
                }));
            }
            drop(fb_tx); // coordinator keeps only the receiving end

            // --- Coordinator.
            let mut status: Vec<Status> = vec![Status::Active; n];
            'rounds: for round in Round::up_to(self.max_rounds) {
                let live: Vec<usize> = (0..n).filter(|i| status[*i] == Status::Active).collect();
                if live.is_empty() {
                    hit_round_cap = false;
                    break;
                }

                for &i in &live {
                    let _ = ctl_tx[i].send(Ctl::SendPhase(round));
                }
                let mut receivers: Vec<usize> = Vec::with_capacity(live.len());
                for _ in 0..live.len() {
                    match fb_rx.recv() {
                        Ok(Feedback::SendDone {
                            idx,
                            decided,
                            crashed_in_send,
                            receives,
                            classic_violation,
                        }) => {
                            if classic_violation {
                                error = Some(RuntimeError::ControlInClassicModel {
                                    pid: ProcessId::from_idx(idx),
                                    round,
                                });
                                break 'rounds;
                            }
                            if let Some(v) = decided {
                                decisions[idx] = Some(Decision { value: v, round });
                                metrics
                                    .lock()
                                    .record_decision(ProcessId::from_idx(idx), round);
                                // A decided worker has exited; if it was also
                                // scheduled to die this round, count the crash.
                                status[idx] = if stage_of(schedule, idx, round)
                                    .is_some_and(|s| matches!(s, CrashStage::EndOfRound))
                                {
                                    crashed.insert(ProcessId::from_idx(idx));
                                    Status::Crashed
                                } else {
                                    Status::Decided
                                };
                            } else if crashed_in_send {
                                status[idx] = Status::Crashed;
                                crashed.insert(ProcessId::from_idx(idx));
                            } else if receives {
                                receivers.push(idx);
                            } else {
                                // Completed send phase but skips receive:
                                // impossible without a crash stage; treat as
                                // crashed (defensive).
                                status[idx] = Status::Crashed;
                                crashed.insert(ProcessId::from_idx(idx));
                            }
                        }
                        Ok(Feedback::RecvDone { .. }) => {
                            unreachable!("receive feedback during send phase")
                        }
                        Ok(Feedback::Panicked { idx }) => {
                            error = Some(RuntimeError::WorkerPanicked {
                                pid: ProcessId::from_idx(idx),
                            });
                            break 'rounds;
                        }
                        Err(_) => {
                            error = Some(RuntimeError::WorkerPanicked {
                                pid: ProcessId::new(1),
                            });
                            break 'rounds;
                        }
                    }
                }
                metrics.lock().rounds_executed = round.get();

                for &i in &receivers {
                    let _ = ctl_tx[i].send(Ctl::ReceivePhase(round));
                }
                for _ in 0..receivers.len() {
                    match fb_rx.recv() {
                        Ok(Feedback::RecvDone {
                            idx,
                            decision,
                            halts,
                            dies,
                        }) => {
                            if let Some(v) = decision {
                                // First decision wins (an early decider's
                                // later halting Decide must not overwrite).
                                if decisions[idx].is_none() {
                                    decisions[idx] = Some(Decision { value: v, round });
                                    metrics
                                        .lock()
                                        .record_decision(ProcessId::from_idx(idx), round);
                                }
                                if halts {
                                    status[idx] = Status::Decided;
                                }
                            }
                            if dies {
                                status[idx] = Status::Crashed;
                                crashed.insert(ProcessId::from_idx(idx));
                            }
                            // Otherwise: stays Active (possibly decided).
                        }
                        Ok(Feedback::SendDone { .. }) => {
                            unreachable!("send feedback during receive phase")
                        }
                        Ok(Feedback::Panicked { idx }) => {
                            error = Some(RuntimeError::WorkerPanicked {
                                pid: ProcessId::from_idx(idx),
                            });
                            break 'rounds;
                        }
                        Err(_) => {
                            error = Some(RuntimeError::WorkerPanicked {
                                pid: ProcessId::new(1),
                            });
                            break 'rounds;
                        }
                    }
                }
            }

            // Shut down whoever is still running, then join.
            for (i, s) in status.iter().enumerate() {
                if *s == Status::Active {
                    let _ = ctl_tx[i].send(Ctl::Die);
                }
            }
            for h in handles {
                if h.join().is_err() && error.is_none() {
                    error = Some(RuntimeError::WorkerPanicked {
                        pid: ProcessId::new(1),
                    });
                }
            }
        });

        if let Some(e) = error {
            return Err(e);
        }
        let mut metrics = metrics.into_inner();
        // Decision rounds were recorded incrementally; keep table aligned.
        debug_assert_eq!(metrics.decision_round.len(), n);
        for (i, d) in decisions.iter().enumerate() {
            if let Some(d) = d {
                metrics.record_decision(ProcessId::from_idx(i), d.round);
            }
        }
        Ok(RuntimeReport {
            decisions,
            crashed,
            metrics,
            hit_round_cap,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    Decided,
    Crashed,
}

fn stage_of(schedule: &CrashSchedule, idx: usize, round: Round) -> Option<&CrashStage> {
    schedule
        .crash_point(ProcessId::from_idx(idx))
        .filter(|cp| cp.round == round)
        .map(|cp| &cp.stage)
}

/// The body of one worker thread.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P>(
    me: ProcessId,
    n: usize,
    model: ModelKind,
    schedule: &CrashSchedule,
    proto: &mut P,
    ctl: Receiver<Ctl>,
    inbox: Receiver<NetMsg<P::Msg>>,
    net: Vec<Sender<NetMsg<P::Msg>>>,
    fb: Sender<Feedback<P::Output>>,
    metrics: &Mutex<RunMetrics>,
) where
    P: SyncProtocol,
{
    let mut dies_after_round: Option<Round> = None;

    while let Ok(cmd) = ctl.recv() {
        match cmd {
            Ctl::Die => return,
            Ctl::SendPhase(round) => {
                // Protocol code is untrusted here: catch its panics and
                // report them, otherwise the coordinator deadlocks waiting
                // for this worker's phase feedback.
                let plan: SendPlan<P::Msg, P::Output> =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        proto.send(round)
                    })) {
                        Ok(plan) => plan,
                        Err(_) => {
                            let _ = fb.send(Feedback::Panicked { idx: me.idx() });
                            return;
                        }
                    };
                if model == ModelKind::Classic && !plan.control.is_empty() {
                    let _ = fb.send(Feedback::SendDone {
                        idx: me.idx(),
                        decided: None,
                        crashed_in_send: false,
                        receives: false,
                        classic_violation: true,
                    });
                    return;
                }

                let stage = stage_of(schedule, me.idx(), round);
                let outcome: DeliveryOutcome = match stage {
                    Some(s) => s.effect(n),
                    None => DeliveryOutcome::unimpeded(),
                };

                // Network shim: transmit under the crash stage's filter.
                {
                    let mut m = metrics.lock();
                    for (dst, msg) in &plan.data {
                        let transmitted = outcome
                            .data_filter
                            .as_ref()
                            .is_none_or(|f| f.contains(*dst));
                        if transmitted {
                            m.count_data(msg.bit_size());
                            let _ = net[dst.idx()].send(NetMsg::Data {
                                from: me,
                                msg: msg.clone(),
                            });
                        }
                    }
                    let prefix = outcome
                        .control_prefix
                        .unwrap_or(plan.control.len())
                        .min(plan.control.len());
                    for dst in &plan.control[..prefix] {
                        m.count_control();
                        let _ = net[dst.idx()].send(NetMsg::Control { from: me });
                    }
                }

                let completes_send = stage.is_none_or(|s| s.completes_send_phase());
                let crashed_in_send = stage.is_some() && !completes_send;
                let decided = if completes_send {
                    plan.decide_after_send
                } else {
                    None
                };
                let receives = outcome.receives_this_round && decided.is_none();
                if stage.is_some_and(|s| matches!(s, CrashStage::EndOfRound)) {
                    dies_after_round = Some(round);
                }

                let exit = crashed_in_send || decided.is_some();
                let _ = fb.send(Feedback::SendDone {
                    idx: me.idx(),
                    decided,
                    crashed_in_send,
                    receives,
                    classic_violation: false,
                });
                if exit {
                    return;
                }
            }
            Ctl::ReceivePhase(round) => {
                // Drain everything transmitted this round (the coordinator's
                // ack round-trip guarantees it has all arrived).
                let mut data = Vec::new();
                let mut control = Vec::new();
                for msg in inbox.try_iter() {
                    match msg {
                        NetMsg::Data { from, msg } => data.push((from, msg)),
                        NetMsg::Control { from } => control.push(from),
                    }
                }
                let assembled: Inbox<P::Msg> = Inbox::from_parts(data, control);
                let step = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    proto.receive(round, &assembled)
                })) {
                    Ok(step) => step,
                    Err(_) => {
                        let _ = fb.send(Feedback::Panicked { idx: me.idx() });
                        return;
                    }
                };
                let dies = dies_after_round == Some(round);
                let (decision, halts) = match step {
                    Step::Continue => (None, false),
                    Step::Decide(v) => (Some(v), true),
                    Step::DecideAndContinue(v) => (Some(v), false),
                };
                let exit = dies || (decision.is_some() && halts);
                let _ = fb.send(Feedback::RecvDone {
                    idx: me.idx(),
                    decision,
                    halts,
                    dies,
                });
                if exit {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::CrashPoint;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    /// Minimal extended-model protocol for runtime smoke tests: p_1
    /// coordinates round 1 CRW-style.
    #[derive(Clone, Debug)]
    struct Mini {
        me: ProcessId,
        n: usize,
        est: u64,
    }

    impl SyncProtocol for Mini {
        type Msg = u64;
        type Output = u64;

        fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
            if round.get() == self.me.rank() {
                let mut plan = SendPlan::quiet();
                for dst in self.me.higher(self.n) {
                    plan.data.push((dst, self.est));
                }
                for dst in self.me.higher(self.n).rev() {
                    plan.control.push(dst);
                }
                plan.then_decide(self.est)
            } else {
                SendPlan::quiet()
            }
        }

        fn receive(&mut self, round: Round, inbox: &Inbox<u64>) -> Step<u64> {
            let coord = ProcessId::new(round.get());
            if let Some(v) = inbox.data_from(coord) {
                self.est = *v;
            }
            if inbox.control_from(coord) {
                Step::Decide(self.est)
            } else {
                Step::Continue
            }
        }
    }

    fn minis(n: usize) -> Vec<Mini> {
        (0..n)
            .map(|i| Mini {
                me: ProcessId::from_idx(i),
                n,
                est: 100 + i as u64 + 1,
            })
            .collect()
    }

    #[test]
    fn threaded_failure_free_run() {
        let config = SystemConfig::new(4, 2).unwrap();
        let schedule = CrashSchedule::none(4);
        let report = ThreadedRuntime::new(config, &schedule)
            .run(minis(4))
            .unwrap();
        for d in &report.decisions {
            let d = d.as_ref().unwrap();
            assert_eq!(d.value, 101);
            assert_eq!(d.round, Round::FIRST);
        }
        assert!(!report.hit_round_cap);
        assert_eq!(report.metrics.data_messages, 3);
        assert_eq!(report.metrics.control_messages, 3);
    }

    #[test]
    fn threaded_mid_control_prefix() {
        // Highest-first commits, prefix 1 ⇒ only p_4 decides in round 1.
        let config = SystemConfig::new(4, 2).unwrap();
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
        );
        let report = ThreadedRuntime::new(config, &schedule)
            .run(minis(4))
            .unwrap();
        let d4 = report.decisions[3].as_ref().unwrap();
        assert_eq!((d4.value, d4.round), (101, Round::FIRST));
        assert!(report.decisions[0].is_none());
        assert!(report.crashed.contains(pid(1)));
        // p_2 and p_3 adopted 101 but can never decide with this toy
        // protocol (no later coordinator in Mini beyond rotation) — they
        // decide in round 2 when p_2 coordinates with est 101.
        let d2 = report.decisions[1].as_ref().unwrap();
        assert_eq!(d2.value, 101);
    }

    #[test]
    fn threaded_decide_then_die() {
        let config = SystemConfig::new(3, 1).unwrap();
        let schedule = CrashSchedule::none(3).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        let report = ThreadedRuntime::new(config, &schedule)
            .run(minis(3))
            .unwrap();
        let d1 = report.decisions[0].as_ref().expect("decided before dying");
        assert_eq!(d1.value, 101);
        assert!(report.crashed.contains(pid(1)));
        assert_eq!(report.decided_values(), vec![101]);
    }

    #[test]
    fn wrong_count_rejected() {
        let config = SystemConfig::new(3, 1).unwrap();
        let schedule = CrashSchedule::none(3);
        let err = ThreadedRuntime::new(config, &schedule)
            .run(minis(2))
            .unwrap_err();
        assert_eq!(err, RuntimeError::WrongProcessCount { got: 2, want: 3 });
    }

    #[test]
    fn panicking_protocol_reports_instead_of_deadlocking() {
        /// A protocol that panics when p_2 tries to send in round 2.
        #[derive(Clone, Debug)]
        struct Grenade {
            me: ProcessId,
        }
        impl SyncProtocol for Grenade {
            type Msg = u64;
            type Output = u64;
            fn send(&mut self, round: Round) -> SendPlan<u64, u64> {
                if round.get() == 2 && self.me == ProcessId::new(2) {
                    panic!("boom");
                }
                SendPlan::quiet()
            }
            fn receive(&mut self, _round: Round, _inbox: &Inbox<u64>) -> Step<u64> {
                Step::Continue
            }
        }
        let config = SystemConfig::new(3, 1).unwrap();
        let schedule = CrashSchedule::none(3);
        let err = ThreadedRuntime::new(config, &schedule)
            .max_rounds(4)
            .run(vec![
                Grenade {
                    me: ProcessId::new(1),
                },
                Grenade {
                    me: ProcessId::new(2),
                },
                Grenade {
                    me: ProcessId::new(3),
                },
            ])
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::WorkerPanicked {
                pid: ProcessId::new(2)
            }
        );
    }

    #[test]
    fn classic_violation_detected() {
        let config = SystemConfig::new(3, 1).unwrap();
        let schedule = CrashSchedule::none(3);
        let err = ThreadedRuntime::new(config, &schedule)
            .model(ModelKind::Classic)
            .run(minis(3))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ControlInClassicModel { .. }));
    }
}
