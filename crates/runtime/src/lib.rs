//! # twostep-runtime — the extended model on real threads
//!
//! The deterministic simulator (`twostep-sim`) is where proofs-by-testing
//! happen; this crate is the existence proof that the extended model runs
//! on a real shared-nothing substrate: **one OS thread per process**,
//! crossbeam channels as reliable LAN links, and a lockstep coordinator
//! that enforces the round structure (the role played by synchronized
//! clocks in an actual deployment).
//!
//! Fault injection preserves the paper's semantics exactly, by placing the
//! crash in the *sender's network shim*: a thread scheduled to crash in
//! stage `MidData{S}` transmits only the data messages to `S` and exits
//! before its control step; a `MidControl{k}` thread transmits all data
//! and the first `k` entries of its **ordered** control list.  Both reuse
//! `CrashStage::effect` from `twostep-model`, so the simulator, the
//! model checker and this runtime cannot drift apart.
//!
//! The integration suite runs the same protocol + schedule on the
//! simulator and on this runtime and asserts identical decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lockstep;

pub use lockstep::{RuntimeError, RuntimeReport, ThreadedRuntime};
