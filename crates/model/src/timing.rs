//! The Section 2.2 cost model: round durations and the crossover analysis.
//!
//! Let `D` be the duration of a round in the **classic** synchronous model
//! (an upper bound on message transfer + local processing).  The extended
//! model appends the pipelined control sending step; because no waiting or
//! computation happens between the two steps, and the data + control
//! messages are pipelined in the channel, the extra cost is a small `d`
//! that does **not** have to cover a full message transfer delay.  An
//! extended round therefore lasts `D + d` with `d ≪ D` on a LAN with
//! reliable links.
//!
//! The paper's comparison (Section 2.2): an algorithm taking `f+1` extended
//! rounds beats an algorithm taking `f+2` classic rounds iff
//!
//! ```text
//! (f+1)(D+d) < (f+2)·D   ⇔   (f+1)·d < D
//! ```
//!
//! which holds for all realistic `d/D` on reliable LANs (and fails when
//! retransmission makes `d` large — exactly the paper's caveat about lossy
//! networks).  These formulas drive experiment **E4** (`repro e4-cost`).
//!
//! Times are in integer *ticks* (think microseconds): the model is
//! deterministic and exact, no floating-point drift.

/// Time in model ticks (microseconds in the examples).
pub type Ticks = u64;

/// The `(D, d)` timing parameters of Section 2.2.
///
/// # Examples
///
/// A LAN-ish ratio `d/D = 5%`: the extended model wins for every `f` up to
/// the crossover `(f+1)·d ≥ D`:
///
/// ```
/// use twostep_model::TimingModel;
///
/// let tm = TimingModel::new(1000, 50);
/// assert_eq!(tm.crw_decision_time(0), 1050);            // (f+1)(D+d)
/// assert_eq!(tm.classic_early_decision_time(0, 8), 2000); // min(f+2,t+1)·D
/// assert!(tm.extended_beats_classic(0, 8));
/// assert!(tm.extended_beats_classic(18, 100));
/// assert!(!tm.extended_beats_classic(19, 100), "(19+1)*50 = D: boundary");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimingModel {
    /// `D`: duration of a classic round (message transfer + processing).
    pub round: Ticks,
    /// `d`: marginal duration of the pipelined control sending step
    /// (also used as the detection latency of the fast failure detector
    /// when comparing with the ALT'02 model — both are "the small quantity
    /// `d ≪ D`" in the paper's discussion).
    pub ctl: Ticks,
}

impl TimingModel {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` — a zero-length round is meaningless.
    pub fn new(round: Ticks, ctl: Ticks) -> Self {
        assert!(round > 0, "classic round duration D must be positive");
        TimingModel { round, ctl }
    }

    /// Duration of one **extended** round: `D + d`.
    #[inline]
    pub fn extended_round(&self) -> Ticks {
        self.round + self.ctl
    }

    /// Wall-clock cost of `rounds` extended rounds: `rounds · (D + d)`.
    #[inline]
    pub fn extended_time(&self, rounds: u32) -> Ticks {
        rounds as Ticks * self.extended_round()
    }

    /// Wall-clock cost of `rounds` classic rounds: `rounds · D`.
    #[inline]
    pub fn classic_time(&self, rounds: u32) -> Ticks {
        rounds as Ticks * self.round
    }

    /// Decision time of the paper's algorithm with `f` actual crashes:
    /// `(f+1)(D+d)` (Theorem 1 × extended round duration).
    #[inline]
    pub fn crw_decision_time(&self, f: usize) -> Ticks {
        self.extended_time(f as u32 + 1)
    }

    /// Decision time of classic early-deciding uniform consensus:
    /// `min(f+2, t+1) · D`.
    #[inline]
    pub fn classic_early_decision_time(&self, f: usize, t: usize) -> Ticks {
        self.classic_time(((f + 2).min(t + 1)) as u32)
    }

    /// Decision time of classic flooding consensus: `(t+1) · D`.
    #[inline]
    pub fn flooding_decision_time(&self, t: usize) -> Ticks {
        self.classic_time(t as u32 + 1)
    }

    /// Decision time of the fast-failure-detector consensus of
    /// Aguilera–Le Lann–Toueg (cited comparator \[1\]): `D + f·d`.
    #[inline]
    pub fn fastfd_decision_time(&self, f: usize) -> Ticks {
        self.round + f as Ticks * self.ctl
    }

    /// The paper's crossover predicate: the extended-model algorithm
    /// strictly beats the classic `min(f+2, t+1)`-round algorithm.
    ///
    /// When `f + 2 ≤ t + 1` this reduces to the paper's `(f+1)·d < D`.
    #[inline]
    pub fn extended_beats_classic(&self, f: usize, t: usize) -> bool {
        self.crw_decision_time(f) < self.classic_early_decision_time(f, t)
    }

    /// The break-even ratio `d/D` below which the extended model wins for a
    /// given `f` (assuming the uncapped `f+2` classic bound):
    /// `(f+1)(D+d) < (f+2)D ⇔ d/D < 1/(f+1)`.
    #[inline]
    pub fn breakeven_ratio(f: usize) -> f64 {
        1.0 / (f as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_round_panics() {
        let _ = TimingModel::new(0, 1);
    }

    #[test]
    fn durations() {
        let tm = TimingModel::new(1000, 50);
        assert_eq!(tm.extended_round(), 1050);
        assert_eq!(tm.extended_time(3), 3150);
        assert_eq!(tm.classic_time(3), 3000);
    }

    #[test]
    fn decision_time_formulas() {
        let tm = TimingModel::new(1000, 50);
        // CRW: (f+1)(D+d).
        assert_eq!(tm.crw_decision_time(0), 1050);
        assert_eq!(tm.crw_decision_time(2), 3150);
        // Classic early: min(f+2, t+1)·D.
        assert_eq!(tm.classic_early_decision_time(0, 5), 2000);
        assert_eq!(tm.classic_early_decision_time(5, 5), 6000, "capped at t+1");
        // Flooding: (t+1)·D.
        assert_eq!(tm.flooding_decision_time(5), 6000);
        // Fast FD: D + f·d.
        assert_eq!(tm.fastfd_decision_time(0), 1000);
        assert_eq!(tm.fastfd_decision_time(4), 1200);
    }

    #[test]
    fn crossover_matches_paper_inequality() {
        // (f+1)·d < D  ⇔ extended wins (uncapped region).
        let t = 10;
        for f in 0..8usize {
            for (d_num, d_den) in [(1u64, 100u64), (1, 10), (1, 4), (1, 2), (2, 1)] {
                let dd = 1000 * d_num / d_den;
                let tm = TimingModel::new(1000, dd);
                let paper_predicate = (f as u64 + 1) * dd < 1000;
                if f + 2 <= t + 1 {
                    assert_eq!(
                        tm.extended_beats_classic(f, t),
                        paper_predicate,
                        "f={f} d={dd}"
                    );
                }
            }
        }
    }

    #[test]
    fn failure_free_case_always_wins_with_small_d() {
        // §2.2: f = 0 is the common case; extended wins whenever d < D.
        let tm = TimingModel::new(1000, 999);
        assert!(tm.extended_beats_classic(0, 3));
        let tm_eq = TimingModel::new(1000, 1000);
        assert!(!tm_eq.extended_beats_classic(0, 3), "d = D is the boundary");
    }

    #[test]
    fn breakeven_ratio_values() {
        assert!((TimingModel::breakeven_ratio(0) - 1.0).abs() < 1e-12);
        assert!((TimingModel::breakeven_ratio(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lossy_network_caveat() {
        // When d grows to retransmission scale (d ≥ D), the advantage
        // disappears — the paper's stated limitation.
        let tm = TimingModel::new(1000, 2000);
        for f in 0..5 {
            assert!(!tm.extended_beats_classic(f, 10));
        }
    }
}
