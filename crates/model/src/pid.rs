//! Process identifiers and dense process-id sets.
//!
//! The paper names processes `p_1, p_2, …, p_n` and the rotating-coordinator
//! algorithm relies on that total order (round `r` is coordinated by `p_r`,
//! commit messages are sent to `p_{r+1}, …, p_n` *in rank order*).
//! [`ProcessId`] therefore stores the **1-based rank** directly, and
//! [`PidSet`] is a bitset keyed by rank, used for delivery subsets, crashed
//! sets, and "heard-from" bookkeeping in the algorithms.

use std::fmt;
use std::num::NonZeroU32;

use crate::codec::SpillCodec;

/// A process identifier: the 1-based rank of a process in `p_1 … p_n`.
///
/// The rank order is semantically meaningful throughout the paper: the
/// coordinator of round `r` is `p_r`, and the ordered control-message
/// sequence of the extended model's second send step follows rank order.
///
/// `ProcessId` is a `NonZeroU32` newtype, so `Option<ProcessId>` is
/// pointer-width-free (niche optimized) — relevant because the simulator
/// stores per-destination options in hot loops.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(NonZeroU32);

impl ProcessId {
    /// Creates a process id from its 1-based rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`; the paper's processes are numbered from 1.
    #[inline]
    pub fn new(rank: u32) -> Self {
        Self(NonZeroU32::new(rank).expect("process ranks are 1-based; rank 0 is invalid"))
    }

    /// Creates a process id from its 1-based rank, returning `None` for 0.
    #[inline]
    pub fn try_new(rank: u32) -> Option<Self> {
        NonZeroU32::new(rank).map(Self)
    }

    /// Creates a process id from a 0-based index (e.g. a `Vec` slot).
    ///
    /// # Panics
    ///
    /// Panics if `idx + 1` overflows `u32`.
    #[inline]
    pub fn from_idx(idx: usize) -> Self {
        let rank = u32::try_from(idx + 1).expect("process index out of u32 range");
        Self::new(rank)
    }

    /// The 1-based rank (`p_1` has rank 1).
    #[inline]
    pub fn rank(self) -> u32 {
        self.0.get()
    }

    /// The 0-based index (`p_1` has index 0), for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        (self.0.get() - 1) as usize
    }

    /// The next process in rank order (`p_{r+1}`).
    #[inline]
    pub fn next(self) -> Self {
        Self::new(self.rank() + 1)
    }

    /// Iterator over all process ids `p_1 … p_n` for a system of size `n`.
    #[inline]
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        (1..=u32::try_from(n).expect("n out of u32 range")).map(ProcessId::new)
    }

    /// Iterator over the processes with a **strictly higher** rank, i.e. the
    /// destinations of the paper's Figure 1 line 4/5 sends
    /// (`p_{r+1}, …, p_n`), in rank order.
    #[inline]
    pub fn higher(self, n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        (self.rank() + 1..=u32::try_from(n).expect("n out of u32 range")).map(ProcessId::new)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.rank())
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.rank())
    }
}

/// A dense set of process ids for a system of known size `n`.
///
/// Backed by `u64` words; all operations are branch-light and allocation is
/// amortized (one `Vec` per set). Used for the adversary's *arbitrary data
/// delivery subsets* (Section 2.1), crashed-process tracking, and the
/// "heard-from" sets of the flooding baselines.
///
/// Two `PidSet`s compare equal iff they have the same universe size **and**
/// the same members; this is deliberate, since delivery subsets are only
/// meaningful relative to a system size.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PidSet {
    /// Universe size `n`; member ranks are in `1..=n`.
    n: usize,
    /// Bit `i` of the concatenated words == membership of rank `i+1`.
    words: PidWords,
}

/// Word storage for a [`PidSet`].  Universes of up to 128 processes —
/// every system the checker's hot paths ever build — live **inline**:
/// constructing, cloning, and dropping such a set touches no allocator,
/// which is what makes crash-outcome enumeration and delivery filtering
/// allocation-free.  Larger universes (the flooding baselines allow
/// them) fall back to heap words.  The representation is a function of
/// `n` alone, so derived `Eq`/`Hash` never compare across variants; the
/// words beyond `word_count(n)` in an inline set are kept zero.
#[derive(Clone, PartialEq, Eq, Hash)]
enum PidWords {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

const WORD_BITS: usize = 64;

/// Inline words: 2 × 64 bits covers `n ≤ 128`.
const INLINE_WORDS: usize = 2;

impl PidSet {
    /// The empty set over a universe of `n` processes.
    pub fn empty(n: usize) -> Self {
        let count = Self::word_count(n);
        Self {
            n,
            words: if count <= INLINE_WORDS {
                PidWords::Inline([0; INLINE_WORDS])
            } else {
                PidWords::Heap(vec![0; count])
            },
        }
    }

    /// Words needed for a universe of `n` processes.
    #[inline]
    fn word_count(n: usize) -> usize {
        n.div_ceil(WORD_BITS)
    }

    /// The live words of this set (exactly `word_count(n)` of them).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.words {
            PidWords::Inline(words) => &words[..Self::word_count(self.n)],
            PidWords::Heap(words) => words,
        }
    }

    /// Mutable view of the live words.
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let count = Self::word_count(self.n);
        match &mut self.words {
            PidWords::Inline(words) => &mut words[..count],
            PidWords::Heap(words) => words,
        }
    }

    /// The full set `{p_1, …, p_n}`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for w in s.words_mut() {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Builds a set over universe `n` from an iterator of members.
    ///
    /// # Panics
    ///
    /// Panics if any member's rank exceeds `n`.
    pub fn from_iter<I: IntoIterator<Item = ProcessId>>(n: usize, members: I) -> Self {
        let mut s = Self::empty(n);
        for pid in members {
            s.insert(pid);
        }
        s
    }

    /// Universe size `n` this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Whether the set contains every process in the universe.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.n
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `pid`'s rank exceeds the universe size.
    #[inline]
    pub fn contains(&self, pid: ProcessId) -> bool {
        let i = self.checked_bit(pid);
        self.words()[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Inserts a member; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, pid: ProcessId) -> bool {
        let i = self.checked_bit(pid);
        let w = &mut self.words_mut()[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes a member; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, pid: ProcessId) -> bool {
        let i = self.checked_bit(pid);
        let w = &mut self.words_mut()[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &PidSet) {
        assert_eq!(self.n, other.n, "PidSet universes differ");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &PidSet) {
        assert_eq!(self.n, other.n, "PidSet universes differ");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place set difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &PidSet) {
        assert_eq!(self.n, other.n, "PidSet universes differ");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset(&self, other: &PidSet) -> bool {
        assert_eq!(self.n, other.n, "PidSet universes differ");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in ascending rank order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            BitIter { word: w, base }
        })
    }

    /// The lowest-ranked member, if any.
    pub fn min(&self) -> Option<ProcessId> {
        self.iter().next()
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in self.words_mut() {
            *w = 0;
        }
    }

    #[inline]
    fn checked_bit(&self, pid: ProcessId) -> usize {
        let i = pid.idx();
        assert!(i < self.n, "{pid} out of universe 1..={n}", n = self.n);
        i
    }

    /// Zeroes the bits above `n` in the last word so `Eq`/`Hash` stay honest.
    fn clear_tail(&mut self) {
        let tail = self.n % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl SpillCodec for PidSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n.encode(out);
        // Byte-identical to the former `Vec<u64>` encoding: u32 count,
        // then the live words little-endian.
        let words = self.words();
        (words.len() as u32).encode(out);
        for w in words {
            w.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let n = usize::decode(input)?;
        let words = Vec::<u64>::decode(input)?;
        if words.len() != Self::word_count(n) {
            return None;
        }
        let mut set = PidSet::empty(n);
        set.words_mut().copy_from_slice(&words);
        // Reject non-canonical tails: `Eq`/`Hash` assume the bits above
        // `n` are zero, so a decoded set must honor that too.
        let mut canonical = set.clone();
        canonical.clear_tail();
        (canonical == set).then_some(set)
    }
}

impl fmt::Debug for PidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, pid) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{pid}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the set bits of a single word.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = ProcessId;

    #[inline]
    fn next(&mut self) -> Option<ProcessId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1; // clear lowest set bit
        Some(ProcessId::from_idx(self.base + tz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rank_and_idx_round_trip() {
        for rank in 1..=70u32 {
            let pid = ProcessId::new(rank);
            assert_eq!(pid.rank(), rank);
            assert_eq!(pid.idx(), (rank - 1) as usize);
            assert_eq!(ProcessId::from_idx(pid.idx()), pid);
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_panics() {
        let _ = ProcessId::new(0);
    }

    #[test]
    fn try_new_rejects_zero() {
        assert!(ProcessId::try_new(0).is_none());
        assert_eq!(ProcessId::try_new(3), Some(ProcessId::new(3)));
    }

    #[test]
    fn higher_matches_paper_destinations() {
        // Figure 1 line 4: coordinator p_r sends to processes with a higher
        // identity, i.e. p_{r+1} .. p_n in rank order.
        let dests: Vec<_> = ProcessId::new(2).higher(5).collect();
        assert_eq!(
            dests,
            vec![ProcessId::new(3), ProcessId::new(4), ProcessId::new(5)]
        );
        // The last process has no higher destination.
        assert_eq!(ProcessId::new(5).higher(5).count(), 0);
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(3).collect();
        assert_eq!(
            ids,
            vec![ProcessId::new(1), ProcessId::new(2), ProcessId::new(3)]
        );
    }

    #[test]
    fn empty_full_invariants() {
        for n in [0usize, 1, 5, 63, 64, 65, 130] {
            let e = PidSet::empty(n);
            let f = PidSet::full(n);
            assert_eq!(e.len(), 0);
            assert!(e.is_empty());
            assert_eq!(f.len(), n);
            assert!(f.is_full());
            assert!(e.is_subset(&f));
            if n > 0 {
                assert!(!f.is_subset(&e));
            }
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = PidSet::empty(10);
        let p3 = ProcessId::new(3);
        assert!(!s.contains(p3));
        assert!(s.insert(p3));
        assert!(!s.insert(p3), "double insert reports not-fresh");
        assert!(s.contains(p3));
        assert_eq!(s.len(), 1);
        assert!(s.remove(p3));
        assert!(!s.remove(p3), "double remove reports absent");
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_panics() {
        let s = PidSet::empty(4);
        let _ = s.contains(ProcessId::new(5));
    }

    #[test]
    fn full_set_word_boundary() {
        // n = 64 exactly fills one word; n = 65 spills into a second.
        let f64b = PidSet::full(64);
        assert_eq!(f64b.len(), 64);
        assert!(f64b.contains(ProcessId::new(64)));
        let f65 = PidSet::full(65);
        assert_eq!(f65.len(), 65);
        assert!(f65.contains(ProcessId::new(65)));
    }

    #[test]
    fn eq_depends_on_universe() {
        // Same members, different universes: not equal (a delivery subset is
        // only meaningful relative to a system size).
        let a = PidSet::from_iter(4, [ProcessId::new(1)]);
        let b = PidSet::from_iter(5, [ProcessId::new(1)]);
        assert_ne!(a, b);
    }

    #[test]
    fn set_algebra_matches_reference() {
        let n = 70;
        let a = PidSet::from_iter(n, (1..=40).map(ProcessId::new));
        let b = PidSet::from_iter(n, (30..=70).map(ProcessId::new));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 70);

        let mut i = a.clone();
        i.intersect_with(&b);
        let want: BTreeSet<u32> = (30..=40).collect();
        let got: BTreeSet<u32> = i.iter().map(|p| p.rank()).collect();
        assert_eq!(got, want);

        let mut d = a.clone();
        d.difference_with(&b);
        let want: BTreeSet<u32> = (1..=29).collect();
        let got: BTreeSet<u32> = d.iter().map(|p| p.rank()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn iter_ascending_and_min() {
        let s = PidSet::from_iter(100, [70, 3, 99, 64, 65].map(ProcessId::new));
        let ranks: Vec<u32> = s.iter().map(|p| p.rank()).collect();
        assert_eq!(ranks, vec![3, 64, 65, 70, 99]);
        assert_eq!(s.min(), Some(ProcessId::new(3)));
        assert_eq!(PidSet::empty(5).min(), None);
    }

    #[test]
    fn debug_formats() {
        let s = PidSet::from_iter(5, [1, 3].map(ProcessId::new));
        assert_eq!(format!("{s:?}"), "{p1, p3}");
        assert_eq!(format!("{}", ProcessId::new(2)), "p2");
    }
}
