//! Compact, self-delimiting byte encoding for model-checker state — the
//! [`SpillCodec`] trait and its impls for the primitive building blocks.
//!
//! The model checker's two-tier memo spills cold entries to disk, and its
//! distributed engine ships whole memo segments between worker processes
//! as a portable interchange format.  Both paths need every piece of a
//! memo entry — the configuration key (per-process protocol snapshots)
//! *and* the subtree summary — to round-trip through bytes.  The trait
//! lives here, at the bottom of the workspace, so every crate that
//! defines protocol state (`twostep-core`, `twostep-baselines`, test
//! protocols…) can implement it without depending on the model checker.
//!
//! The contract is the obvious one: `decode` must invert `encode` —
//! appending `encode`'s output to a buffer and then decoding from it
//! yields an equal value and consumes exactly the bytes `encode`
//! produced.  `decode` returns `None` on truncated or malformed input
//! instead of panicking; the memo treats that as a corrupt record.

use std::collections::BTreeSet;

use crate::pid::ProcessId;
use crate::value::WideValue;

/// Byte encoding for values stored in spilled memo records and
/// distributed-exploration interchange segments.
///
/// Implemented for the primitive integers, `usize`, `bool`, `()`,
/// [`ProcessId`], [`PidSet`](crate::PidSet), [`WideValue`], `Option<T>`,
/// `Vec<T>`, `BTreeSet<T>`, and pairs.  Protocol crates implement it for
/// their process-state types so the model checker can spill and exchange
/// configuration keys.
pub trait SpillCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes; `None` if the bytes do not form a valid value.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Splits `n` bytes off the front of `input`, or `None` if it is shorter.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! impl_spill_codec_int {
    ($($ty:ty),*) => {$(
        impl SpillCodec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

impl_spill_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl SpillCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input)?.try_into().ok()
    }
}

impl SpillCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match take(input, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl SpillCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl SpillCodec for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rank().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let rank = u32::decode(input)?;
        (rank >= 1).then(|| ProcessId::new(rank))
    }
}

impl SpillCodec for WideValue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.width().encode(out);
        self.ident().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let bits = u32::decode(input)?;
        let ident = u64::decode(input)?;
        if bits == 0 {
            return None; // Theorem 2 values are at least one bit wide.
        }
        let value = WideValue::new(bits, ident);
        // Reject non-canonical encodings (identity bits above the width):
        // equal values must have equal encodings.
        (value.ident() == ident).then_some(value)
    }
}

impl<T: SpillCodec> SpillCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match take(input, 1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<T: SpillCodec> SpillCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Some(out)
    }
}

impl<T: SpillCodec + Ord> SpillCodec for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            if !out.insert(T::decode(input)?) {
                return None; // duplicate element: not a set encoding
            }
        }
        Some(out)
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PidSet;

    fn roundtrip<T: SpillCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut input = buf.as_slice();
        let back = T::decode(&mut input).expect("decodes");
        assert_eq!(back, value);
        assert!(input.is_empty(), "decode consumed exactly the encoding");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-5i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(Some(17u32));
        roundtrip(None::<u32>);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((7u32, Some(9u64)));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        roundtrip(WideValue::new(1, 1));
        roundtrip(WideValue::new(128, 42));
        roundtrip(ProcessId::new(7));
        roundtrip(PidSet::from_iter(
            130,
            [ProcessId::new(1), ProcessId::new(130)],
        ));
    }

    #[test]
    fn truncated_input_decodes_to_none() {
        let mut buf = Vec::new();
        12345u64.encode(&mut buf);
        let mut short = &buf[..5];
        assert!(u64::decode(&mut short).is_none());
        let mut bad_bool = &[7u8][..];
        assert!(bool::decode(&mut bad_bool).is_none());
        let mut zero_rank = &[0u8; 4][..];
        assert!(ProcessId::decode(&mut zero_rank).is_none());
    }

    #[test]
    fn duplicate_set_elements_rejected() {
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        5u64.encode(&mut buf);
        5u64.encode(&mut buf);
        let mut input = buf.as_slice();
        assert!(BTreeSet::<u64>::decode(&mut input).is_none());
    }
}
