//! Compact, self-delimiting byte encoding for model-checker state — the
//! [`SpillCodec`] trait and its impls for the primitive building blocks.
//!
//! The model checker's two-tier memo spills cold entries to disk, and its
//! distributed engine ships whole memo segments between worker processes
//! as a portable interchange format.  Both paths need every piece of a
//! memo entry — the configuration key (per-process protocol snapshots)
//! *and* the subtree summary — to round-trip through bytes.  The trait
//! lives here, at the bottom of the workspace, so every crate that
//! defines protocol state (`twostep-core`, `twostep-baselines`, test
//! protocols…) can implement it without depending on the model checker.
//!
//! The contract is the obvious one: `decode` must invert `encode` —
//! appending `encode`'s output to a buffer and then decoding from it
//! yields an equal value and consumes exactly the bytes `encode`
//! produced.  `decode` returns `None` on truncated or malformed input
//! instead of panicking; the memo treats that as a corrupt record.

use std::collections::BTreeSet;

use crate::pid::ProcessId;
use crate::value::WideValue;

/// What the model checker knows about one **active** process when it asks
/// [`SpillCodec::rank_inert`] whether that process's rank can still
/// influence the future of the execution (the *partial-orbit* symmetry
/// tier).  Everything here is derived from the configuration alone, so
/// the answer is a pure function of the canonical key's inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SymmetryContext {
    /// The round the configuration is about to play (1-based).
    pub round: u32,
    /// Crashes the adversary can still schedule (`t` minus crashes so
    /// far) — an upper bound on how many active processes can leave the
    /// execution by crashing rather than by deciding.
    pub crash_budget: usize,
    /// Active processes whose 1-based rank lies in `[round, my rank)` —
    /// the actives that would all have to crash (deciding settles this
    /// process too, under a highest-first commit order) before this
    /// process's own coordination turn could arrive.
    pub actives_below: usize,
}

/// Byte encoding for values stored in spilled memo records and
/// distributed-exploration interchange segments.
///
/// Implemented for the primitive integers, `usize`, `bool`, `()`,
/// [`ProcessId`], [`PidSet`](crate::PidSet), [`WideValue`], `Option<T>`,
/// `Vec<T>`, `BTreeSet<T>`, and pairs.  Protocol crates implement it for
/// their process-state types so the model checker can spill and exchange
/// configuration keys.
pub trait SpillCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes; `None` if the bytes do not form a valid value.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// Whether this protocol-state type is **pid-symmetric**: its dynamics
    /// are invariant under any permutation of process indexes, provided
    /// each moved state is re-encoded for its new slot with
    /// [`encode_relabelled`](SpillCodec::encode_relabelled).
    ///
    /// The contract a `true` answer asserts (it is a *semantic* promise
    /// about the protocol, not just about the encoding):
    ///
    /// * the owning process id is used only for self-identification
    ///   (e.g. excluding itself from a broadcast), never to special-case
    ///   a rank (rotating coordinators, ring successors, leader ranks);
    /// * no other process's id or rank is embedded in the state (views,
    ///   heard-from sets, per-rank vectors all break the symmetry);
    /// * `encode_relabelled(at, …)` with a fixed `at` is injective on
    ///   states modulo the owner id: two states relabelled to the same
    ///   slot encode equal iff they differ only in their owner.
    ///
    /// Symmetry reduction in the model checker uses this to quotient the
    /// state space by the full permutation group; rank-dependent
    /// protocols keep the default `false` and still benefit from the
    /// weaker (always-sound) settled-record canonicalization.
    fn pid_symmetric() -> bool {
        false
    }

    /// Appends this value's encoding *as if its owner were the process at
    /// 0-based index `at`* — the permutation remap used by symmetry
    /// reduction when it moves a state to a canonical slot.
    ///
    /// The default encodes unchanged, which is correct for every state
    /// that does not embed its owner's id.  Types that do embed it (and
    /// opt into [`pid_symmetric`](SpillCodec::pid_symmetric)) must
    /// override this to substitute the owner for the process at `at`.
    fn encode_relabelled(&self, _at: usize, out: &mut Vec<u8>) {
        self.encode(out)
    }

    /// Whether this **active** process's rank is *inert* — provably
    /// irrelevant to every reachable future — in the configuration
    /// described by `ctx`.  Rank-inert actives may be pooled with the
    /// settled records by the model checker's partial-orbit symmetry
    /// tier (their records are owner-stripped via
    /// [`encode_relabelled`](SpillCodec::encode_relabelled) and sorted).
    ///
    /// The contract a `true` answer asserts:
    ///
    /// * no reachable future reaches a round in which this process
    ///   *sends* while still active (its sending turns are all in the
    ///   past, or unreachable within the remaining crash budget);
    /// * in every reachable round, every delivery pattern the adversary
    ///   can aim at this process it can aim identically at any other
    ///   currently-inert active (deliveries are rank-windowed only in
    ///   ways that cover all inert actives uniformly, e.g. highest-first
    ///   commit prefixes over a set the inert ranks share membership of);
    /// * the current round's coordinator (or any process whose identity
    ///   the round's dynamics single out) is never reported inert.
    ///
    /// The default `false` opts out: every active keeps its true slot.
    fn rank_inert(&self, _ctx: &SymmetryContext) -> bool {
        false
    }

    /// Whether this type's *dynamics* commute with the value involution
    /// given by [`value_swapped`](SpillCodec::value_swapped): applying
    /// the swap to every proposal and replaying any adversary schedule
    /// yields the swapped states, messages, and decisions, move for
    /// move.  Plain value types answer for themselves (the swap is just
    /// a relabelling); protocol state types answer for their transition
    /// function — adopt/forward protocols qualify, while protocols that
    /// *compute* on values (min/max/threshold decisions) do not.
    ///
    /// The model checker's value-symmetry tier activates only when this
    /// is `true` **and** the run's proposal set is closed under the
    /// swap; it then keys each configuration by the lexicographically
    /// smaller of its encoding and its swapped encoding.
    fn value_symmetric() -> bool {
        false
    }

    /// The image of this value/state under the type's value involution
    /// (`None` if the involution is undefined for it).  Must be a true
    /// involution where defined: `x.value_swapped().and_then(|y|
    /// y.value_swapped()) == Some(x)`, with equal values mapping to
    /// equal images.  For protocol states this swaps every embedded
    /// value (estimates, decisions) and nothing else.
    fn value_swapped(&self) -> Option<Self> {
        None
    }
}

/// Splits `n` bytes off the front of `input`, or `None` if it is shorter.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! impl_spill_codec_int {
    ($($ty:ty),*) => {$(
        impl SpillCodec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

impl_spill_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl SpillCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input)?.try_into().ok()
    }
}

impl SpillCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match take(input, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl SpillCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl SpillCodec for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rank().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let rank = u32::decode(input)?;
        (rank >= 1).then(|| ProcessId::new(rank))
    }
}

impl SpillCodec for WideValue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.width().encode(out);
        self.ident().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let bits = u32::decode(input)?;
        let ident = u64::decode(input)?;
        if bits == 0 {
            return None; // Theorem 2 values are at least one bit wide.
        }
        let value = WideValue::new(bits, ident);
        // Reject non-canonical encodings (identity bits above the width):
        // equal values must have equal encodings.
        (value.ident() == ident).then_some(value)
    }

    /// A value carries no dynamics of its own, so the swap is always a
    /// sound relabelling; the involution itself is only defined on the
    /// binary (1-bit) alphabet, where it flips the identity bit.
    fn value_symmetric() -> bool {
        true
    }

    fn value_swapped(&self) -> Option<Self> {
        (self.width() == 1).then(|| WideValue::new(1, self.ident() ^ 1))
    }
}

impl<T: SpillCodec> SpillCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match take(input, 1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<T: SpillCodec> SpillCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Some(out)
    }
}

impl<T: SpillCodec + Ord> SpillCodec for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            if !out.insert(T::decode(input)?) {
                return None; // duplicate element: not a set encoding
            }
        }
        Some(out)
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

// ---------------------------------------------------------------------------
// Canonical ordering of encoded records (symmetry reduction)
// ---------------------------------------------------------------------------

/// Reusable scratch for sorting a batch of encoded records into a
/// canonical order — the permutation step of the model checker's
/// symmetry reduction, which runs once per configuration visit and must
/// therefore not allocate in steady state.
///
/// Usage: [`begin`](Canonicalizer::begin), then one
/// [`record`](Canonicalizer::record) call per item (append the item's
/// bytes to the returned buffer), then [`sort`](Canonicalizer::sort),
/// then read back via [`iter_sorted`](Canonicalizer::iter_sorted).
/// Record buffers are pooled across calls; the sort is an argsort (the
/// buffers never move), ordered by record bytes with ties broken by
/// original index — ties encode identical bytes, so the tie-break keeps
/// the sort deterministic without breaking the normal form.
#[derive(Default)]
pub struct Canonicalizer {
    /// Pooled record buffers; only the first `live` are meaningful.
    bufs: Vec<Vec<u8>>,
    /// Number of records appended since the last `begin`.
    live: usize,
    /// Argsort of `bufs[..live]`, valid after `sort`.
    order: Vec<u32>,
    /// Scratch for [`sort_from`](Canonicalizer::sort_from)'s tail run.
    tail_order: Vec<u32>,
}

impl Canonicalizer {
    /// A fresh canonicalizer with no pooled buffers yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new batch, forgetting previous records but keeping their
    /// buffers pooled.
    pub fn begin(&mut self) {
        self.live = 0;
    }

    /// Opens the next record and returns its (cleared) buffer; append
    /// the record's encoding to it.
    pub fn record(&mut self) -> &mut Vec<u8> {
        if self.live == self.bufs.len() {
            self.bufs.push(Vec::new());
        }
        let buf = &mut self.bufs[self.live];
        self.live += 1;
        buf.clear();
        buf
    }

    /// Number of records in the current batch.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the current batch has no records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Sorts the batch by record bytes (ties by original index).
    pub fn sort(&mut self) {
        self.sort_from(0);
    }

    /// Sorts the batch assuming records `0..sorted_prefix` are *already*
    /// in byte order (the incremental canonicalization path: a child
    /// configuration re-seeds its parent's sorted immutable records and
    /// appends only what changed).  Sorts the tail, then merges the two
    /// runs — byte-for-byte the same sorted sequence [`sort`] produces,
    /// since equal records have equal bytes and the emitted key copies
    /// bytes, never indexes.
    pub fn sort_from(&mut self, sorted_prefix: usize) {
        debug_assert!(sorted_prefix <= self.live, "prefix within the batch");
        debug_assert!(
            self.bufs[..sorted_prefix].windows(2).all(|w| w[0] <= w[1]),
            "seeded prefix must be byte-sorted"
        );
        let bufs = &self.bufs;
        self.tail_order.clear();
        self.tail_order
            .extend(sorted_prefix as u32..self.live as u32);
        self.tail_order
            .sort_unstable_by(|&a, &b| bufs[a as usize].cmp(&bufs[b as usize]).then(a.cmp(&b)));
        self.order.clear();
        let (mut i, mut j) = (0u32, 0usize);
        while (i as usize) < sorted_prefix && j < self.tail_order.len() {
            let t = self.tail_order[j];
            // Prefix-first on byte ties: prefix indexes are the smaller
            // ones, so this reproduces the full sort's index tie-break.
            if bufs[i as usize] <= bufs[t as usize] {
                self.order.push(i);
                i += 1;
            } else {
                self.order.push(t);
                j += 1;
            }
        }
        self.order.extend(i..sorted_prefix as u32);
        self.order.extend_from_slice(&self.tail_order[j..]);
    }

    /// The sorted batch as `(original_index, record_bytes)` pairs; call
    /// only after [`sort`](Canonicalizer::sort).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        debug_assert_eq!(self.order.len(), self.live, "sort() before iter_sorted()");
        self.order
            .iter()
            .map(move |&i| (i as usize, self.bufs[i as usize].as_slice()))
    }
}

// ---------------------------------------------------------------------------
// Stable 64-bit hashing for encoded state
// ---------------------------------------------------------------------------

/// Multiplicative mixing constants (from the wyhash family of hashes).
const STABLE_P0: u64 = 0xa076_1d64_78bd_642f;
const STABLE_P1: u64 = 0xe703_7ed1_a0b4_28db;

/// Folds a 128-bit product back to 64 bits (the wyhash "mum" step).
#[inline]
fn stable_mix(a: u64, b: u64) -> u64 {
    let r = u128::from(a).wrapping_mul(u128::from(b));
    (r as u64) ^ ((r >> 64) as u64)
}

/// Stable, fast 64-bit hash of a byte string — the hash of the model
/// checker's canonical configuration-key encodings.
///
/// Three properties the memo, spill index, distributed partitioner, and
/// persistent cache all rely on:
///
/// * **stable** — the value depends only on the bytes: identical across
///   runs, builds, platforms, and processes (explicit little-endian
///   chunking, no per-process seed), unlike `DefaultHasher`, which the
///   standard library is free to change;
/// * **one pass, word-at-a-time** — a wyhash-style multiply-mix over
///   8-byte chunks, several times faster than the byte-at-a-time FNV the
///   cache fingerprint uses (fine there: fingerprints hash a few dozen
///   bytes once per run, while this runs once per configuration visit);
/// * **length-aware** — the length is folded into the seed, so a prefix
///   of a string never trivially collides with it.
///
/// Collisions are still possible (any 64-bit hash has them); every
/// consumer chains on the full key bytes and compares them on hit.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h = STABLE_P0 ^ (bytes.len() as u64).wrapping_mul(STABLE_P1);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = stable_mix(h ^ word, STABLE_P1);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = stable_mix(h ^ u64::from_le_bytes(tail), STABLE_P1);
    }
    stable_mix(h, STABLE_P0)
}

// ---------------------------------------------------------------------------
// Varint + LZ compression for segment records
// ---------------------------------------------------------------------------

/// Appends the LEB128 varint encoding of `value` to `out` (1–10 bytes).
///
/// Used by the segment-record compressor below, where lengths and match
/// distances are overwhelmingly small and a fixed-width `u64` would
/// double the size of short records.
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from the front of `input`, advancing past
/// it; `None` on truncation or a non-canonical over-long encoding.
pub fn decode_varint(input: &mut &[u8]) -> Option<u64> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 9 && byte > 0x01 {
            return None; // would overflow 64 bits
        }
        value |= u64::from(byte & 0x7F) << (7 * i as u32);
        if byte & 0x80 == 0 {
            if i > 0 && byte == 0 {
                return None; // over-long encoding: not canonical
            }
            *input = &input[i + 1..];
            return Some(value);
        }
        if i == 9 {
            return None;
        }
    }
    None // ran out of bytes mid-varint
}

/// Shortest run the compressor encodes as a back-reference instead of
/// literals: a match token costs at least two varint bytes plus the
/// literal-run header, so anything shorter is a net loss.
const MIN_MATCH: usize = 4;

/// How far back a match may reach.  64 KiB covers whole memo records
/// many times over while keeping distances one or two varint bytes.
const MAX_DISTANCE: usize = 64 * 1024;

/// Log2 of the compressor's hash-table size (positions of 4-byte seeds).
const HASH_BITS: u32 = 14;

fn hash4(bytes: &[u8]) -> usize {
    let seed = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (seed.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable compressor state: the 4-byte-seed hash table, generation
/// stamped so back-to-back records (the memo's eviction and export hot
/// paths) pay neither a fresh allocation nor a 64 KiB zeroing per call.
/// Output is byte-identical to a fresh compressor every time — a slot
/// from an earlier record is simply invisible to the current one.
pub struct Compressor {
    /// `(generation, position + 1)` of the most recent occurrence of
    /// each seed hash; a slot is live only when its generation matches
    /// the current call's.  One probe, no chain — compression ratio is
    /// traded for a simple, allocation-free hot path.
    table: Vec<(u32, u32)>,
    generation: u32,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// A fresh compressor (128 KiB of table, allocated once).
    pub fn new() -> Self {
        Compressor {
            table: vec![(0, 0); 1 << HASH_BITS],
            generation: 0,
        }
    }

    /// Compresses `raw` into `out` (cleared first) with the workspace's
    /// LZ-style codec: a varint uncompressed length, then alternating
    /// literal runs and back-references (`varint literal_len, literals,
    /// varint match_len - MIN_MATCH, varint distance`), the final run
    /// literal-only.  Self-contained — no external crates — because
    /// segment files must be writable and readable in offline builds.
    ///
    /// Memo records are highly repetitive (per-process snapshots of
    /// mostly identical processes), so even this greedy single-pass
    /// matcher typically halves them; incompressible input costs a few
    /// header bytes.  [`decompress`] inverts the encoding exactly.
    /// Inputs are bounded by the segment record framing (`u32` lengths),
    /// comfortably within the table's `u32` positions.
    pub fn compress_into(&mut self, raw: &[u8], out: &mut Vec<u8>) {
        out.clear();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Generation wrapped: ancient stamps could alias as live.
            // Reset once per 2^32 calls.
            self.table.fill((0, 0));
            self.generation = 1;
        }
        let generation = self.generation;
        encode_varint(raw.len() as u64, out);
        let mut i = 0;
        let mut literal_start = 0;
        while i + MIN_MATCH <= raw.len() {
            let slot = hash4(&raw[i..]);
            let (seen_generation, stored) = self.table[slot];
            self.table[slot] = (generation, (i + 1) as u32);
            if seen_generation == generation && stored > 0 {
                let candidate = (stored - 1) as usize;
                let distance = i - candidate;
                if (1..=MAX_DISTANCE).contains(&distance)
                    && raw[candidate..candidate + MIN_MATCH] == raw[i..i + MIN_MATCH]
                {
                    let mut len = MIN_MATCH;
                    while i + len < raw.len() && raw[candidate + len] == raw[i + len] {
                        len += 1;
                    }
                    encode_varint((i - literal_start) as u64, out);
                    out.extend_from_slice(&raw[literal_start..i]);
                    encode_varint((len - MIN_MATCH) as u64, out);
                    encode_varint(distance as u64, out);
                    i += len;
                    literal_start = i;
                    continue;
                }
            }
            i += 1;
        }
        if literal_start < raw.len() {
            encode_varint((raw.len() - literal_start) as u64, out);
            out.extend_from_slice(&raw[literal_start..]);
        }
    }
}

/// One-shot convenience over [`Compressor::compress_into`] for call
/// sites without a compressor to reuse (tests, single records).
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 10);
    Compressor::new().compress_into(raw, &mut out);
    out
}

/// Decompresses a buffer produced by [`compress`]; `None` if the bytes
/// are truncated, malformed, carry trailing garbage, or claim an
/// uncompressed length above `max_len` (the caller's allocation bound —
/// a corrupted length claim must never force a giant allocation).
pub fn decompress(mut input: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let raw_len = decode_varint(&mut input)? as usize;
    if raw_len > max_len {
        return None;
    }
    let mut out = Vec::with_capacity(raw_len.min(1 << 20));
    while out.len() < raw_len {
        let literal_len = decode_varint(&mut input)? as usize;
        if literal_len > raw_len - out.len() || literal_len > input.len() {
            return None;
        }
        out.extend_from_slice(take(&mut input, literal_len)?);
        if out.len() == raw_len {
            break;
        }
        // Bound the match-length token *before* adding MIN_MATCH: a
        // crafted varint near u64::MAX must be rejected, not overflow
        // the addition (debug panic / release wrap).
        let remaining_out = raw_len - out.len();
        if remaining_out < MIN_MATCH {
            return None; // no admissible match fits in the output
        }
        let token = decode_varint(&mut input)?;
        if token > (remaining_out - MIN_MATCH) as u64 {
            return None;
        }
        let match_len = token as usize + MIN_MATCH;
        let distance = decode_varint(&mut input)? as usize;
        if distance == 0 || distance > out.len() {
            return None;
        }
        let start = out.len() - distance;
        if distance >= match_len {
            // Non-overlapping match — the common case for memo records —
            // copies as one block instead of per-byte pushes (this is
            // the rehydrate-read hot path of the spill tier).
            out.extend_from_within(start..start + match_len);
        } else {
            // Overlapping match (the run-length idiom): the source grows
            // as we copy, so it must go byte by byte.
            for k in 0..match_len {
                let byte = out[start + k];
                out.push(byte);
            }
        }
    }
    if !input.is_empty() {
        return None; // trailing garbage is never a valid encoding
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PidSet;

    fn roundtrip<T: SpillCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut input = buf.as_slice();
        let back = T::decode(&mut input).expect("decodes");
        assert_eq!(back, value);
        assert!(input.is_empty(), "decode consumed exactly the encoding");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-5i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(Some(17u32));
        roundtrip(None::<u32>);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((7u32, Some(9u64)));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        roundtrip(WideValue::new(1, 1));
        roundtrip(WideValue::new(128, 42));
        roundtrip(ProcessId::new(7));
        roundtrip(PidSet::from_iter(
            130,
            [ProcessId::new(1), ProcessId::new(130)],
        ));
    }

    #[test]
    fn stable_hash64_is_pinned() {
        // The hash keys on-disk spill indexes, interchange partitioning,
        // and persistent-cache reuse, so its values must never drift
        // between builds or platforms: pin them.
        assert_eq!(stable_hash64(b""), 0xf47c_dffd_9671_363d);
        assert_eq!(stable_hash64(b"a"), 0x4445_08c4_5b1e_0093);
        assert_eq!(stable_hash64(b"abc"), 0x5373_c0d1_9c8c_277a);
        assert_eq!(stable_hash64(b"12345678"), 0x22e2_940f_d14f_72c5);
        assert_eq!(stable_hash64(b"123456789"), 0x62b4_ba6e_e5ba_7e6b);
        assert_eq!(
            stable_hash64(b"the quick brown fox jumps over the lazy dog"),
            0x1bbb_390d_5f54_a386
        );
        assert_eq!(stable_hash64(&[0u8; 8]), 0x9da8_e3ea_9593_a726);
        assert_eq!(stable_hash64(&[0u8; 16]), 0xbd5e_3218_5e8e_fe99);
    }

    #[test]
    fn stable_hash64_separates_lengths_and_contents() {
        // Zero-padded tails must not collide with their padded forms,
        // and single-bit flips anywhere must change the hash (a smoke
        // test, not a cryptographic claim).
        let mut seen = std::collections::BTreeSet::new();
        for len in 0..32usize {
            assert!(seen.insert(stable_hash64(&vec![0u8; len])), "len {len}");
        }
        let base: Vec<u8> = (0..32u8).collect();
        let h0 = stable_hash64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(stable_hash64(&flipped), h0, "flip {i}.{bit}");
            }
        }
    }

    #[test]
    fn truncated_input_decodes_to_none() {
        let mut buf = Vec::new();
        12345u64.encode(&mut buf);
        let mut short = &buf[..5];
        assert!(u64::decode(&mut short).is_none());
        let mut bad_bool = &[7u8][..];
        assert!(bool::decode(&mut bad_bool).is_none());
        let mut zero_rank = &[0u8; 4][..];
        assert!(ProcessId::decode(&mut zero_rank).is_none());
    }

    #[test]
    fn varint_roundtrips() {
        for value in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_varint(value, &mut buf);
            let mut input = buf.as_slice();
            assert_eq!(decode_varint(&mut input), Some(value));
            assert!(input.is_empty(), "value {value} consumed exactly");
        }
        // Truncated mid-varint.
        let mut buf = Vec::new();
        encode_varint(u64::MAX, &mut buf);
        let mut short = &buf[..4];
        assert!(decode_varint(&mut short).is_none());
        // Over-long (non-canonical) encoding of 1.
        let mut overlong = &[0x81u8, 0x00][..];
        assert!(decode_varint(&mut overlong).is_none());
        // An 11-byte continuation chain can never be a u64.
        let mut absurd = &[0xFFu8; 11][..];
        assert!(decode_varint(&mut absurd).is_none());
    }

    fn compression_roundtrip(raw: &[u8]) -> usize {
        let packed = compress(raw);
        let back = decompress(&packed, raw.len().max(1)).expect("decompresses");
        assert_eq!(back, raw, "roundtrip of {} bytes", raw.len());
        packed.len()
    }

    #[test]
    fn compression_roundtrips() {
        compression_roundtrip(b"");
        compression_roundtrip(b"x");
        compression_roundtrip(b"abc");
        compression_roundtrip(&[0u8; 1000]);
        compression_roundtrip(b"abcdabcdabcdabcdabcdabcd");
        // Overlapping match (run-length idiom: distance < match length).
        compression_roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaab");
        // Pseudo-random (incompressible) bytes survive untouched.
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        compression_roundtrip(&noise);
        // A long repetitive buffer must actually shrink.
        let repetitive: Vec<u8> = b"round census terminal valency "
            .iter()
            .cycle()
            .take(30_000)
            .copied()
            .collect();
        let packed = compression_roundtrip(&repetitive);
        assert!(
            packed < repetitive.len() / 4,
            "repetitive input must compress well: {packed} of {}",
            repetitive.len()
        );
    }

    #[test]
    fn reused_compressor_matches_fresh_compressor() {
        // The generation-stamped table makes reuse output-identical to a
        // fresh compressor: stale slots from earlier records never leak
        // matches into later ones.
        let inputs: Vec<Vec<u8>> = vec![
            b"abcdabcdabcdabcd".to_vec(),
            b"completely different content, no overlap".to_vec(),
            vec![0u8; 500],
            b"abcdabcdabcdabcd".to_vec(), // repeat of the first
            (0..512u32).map(|i| (i % 7) as u8).collect(),
        ];
        let mut reused = Compressor::new();
        let mut out = Vec::new();
        for raw in &inputs {
            reused.compress_into(raw, &mut out);
            assert_eq!(out, compress(raw), "reuse must not change the encoding");
            let back = decompress(&out, raw.len().max(1)).expect("decompresses");
            assert_eq!(&back, raw);
        }
    }

    #[test]
    fn decompress_rejects_malformed_input() {
        // Truncated compressed stream.
        let packed = compress(b"abcdabcdabcdabcdXYZ");
        for cut in 0..packed.len() {
            assert!(
                decompress(&packed[..cut], 1024).is_none(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage.
        let mut noisy = packed.clone();
        noisy.push(0x55);
        assert!(decompress(&noisy, 1024).is_none());
        // A length claim above the caller's bound is refused before any
        // allocation of that size.
        let mut absurd = Vec::new();
        encode_varint(u64::MAX, &mut absurd);
        assert!(decompress(&absurd, 1 << 20).is_none());
        // Distance reaching before the start of the output.
        let mut bad = Vec::new();
        encode_varint(8, &mut bad); // raw_len
        encode_varint(2, &mut bad); // two literals
        bad.extend_from_slice(b"ab");
        encode_varint(0, &mut bad); // match_len = MIN_MATCH
        encode_varint(7, &mut bad); // distance 7 > 2 bytes produced
        assert!(decompress(&bad, 1024).is_none());
        // Zero distance is never valid.
        let mut zero = Vec::new();
        encode_varint(8, &mut zero);
        encode_varint(2, &mut zero);
        zero.extend_from_slice(b"ab");
        encode_varint(0, &mut zero);
        encode_varint(0, &mut zero);
        assert!(decompress(&zero, 1024).is_none());
        // A match-length token near u64::MAX must be rejected before the
        // `+ MIN_MATCH` addition, not overflow it (debug panic).
        let mut huge = Vec::new();
        encode_varint(8, &mut huge);
        encode_varint(2, &mut huge);
        huge.extend_from_slice(b"ab");
        encode_varint(u64::MAX, &mut huge);
        encode_varint(1, &mut huge);
        assert!(decompress(&huge, 1024).is_none());
    }

    #[test]
    fn canonicalizer_sorts_and_pools() {
        let mut canon = Canonicalizer::new();
        for _ in 0..2 {
            // Two passes: the second reuses pooled buffers and must see
            // none of the first batch's bytes.
            canon.begin();
            assert!(canon.is_empty());
            canon.record().extend_from_slice(b"bb");
            canon.record().extend_from_slice(b"aa");
            canon.record().extend_from_slice(b"aa");
            canon.record().extend_from_slice(b"a");
            assert_eq!(canon.len(), 4);
            canon.sort();
            let sorted: Vec<(usize, &[u8])> = canon.iter_sorted().collect();
            // Byte order with index tie-break: "a" < "aa"(idx 1) <
            // "aa"(idx 2) < "bb".
            assert_eq!(
                sorted,
                vec![
                    (3, b"a".as_slice()),
                    (1, b"aa".as_slice()),
                    (2, b"aa".as_slice()),
                    (0, b"bb".as_slice()),
                ]
            );
        }
        // A shrinking batch must not resurrect stale records.
        canon.begin();
        canon.record().extend_from_slice(b"zz");
        canon.sort();
        assert_eq!(canon.iter_sorted().count(), 1);
    }

    #[test]
    fn sort_from_matches_full_sort() {
        // The incremental path (sorted seed + merged tail) must emit the
        // same byte sequence as a from-scratch sort, for every split of
        // every batch — including byte ties straddling the seed/tail
        // boundary.
        let batches: Vec<Vec<&[u8]>> = vec![
            vec![],
            vec![b"a"],
            vec![b"aa", b"ab", b"zz", b"aa", b"a", b"zz"],
            vec![b"x", b"x", b"x"],
            vec![b"b", b"d", b"f", b"a", b"c", b"e", b"g"],
        ];
        let mut canon = Canonicalizer::new();
        for batch in &batches {
            for split in 0..=batch.len() {
                let mut seed: Vec<&[u8]> = batch[..split].to_vec();
                seed.sort();
                canon.begin();
                for rec in &seed {
                    canon.record().extend_from_slice(rec);
                }
                for rec in &batch[split..] {
                    canon.record().extend_from_slice(rec);
                }
                canon.sort_from(split);
                let incremental: Vec<Vec<u8>> =
                    canon.iter_sorted().map(|(_, b)| b.to_vec()).collect();
                canon.begin();
                for rec in batch {
                    canon.record().extend_from_slice(rec);
                }
                canon.sort();
                let full: Vec<Vec<u8>> = canon.iter_sorted().map(|(_, b)| b.to_vec()).collect();
                assert_eq!(incremental, full, "batch {batch:?} split {split}");
            }
        }
    }

    #[test]
    fn value_swap_is_a_binary_involution() {
        // Defined exactly on the 1-bit alphabet, where it flips the bit.
        let zero = WideValue::new(1, 0);
        let one = WideValue::new(1, 1);
        assert_eq!(zero.value_swapped(), Some(one));
        assert_eq!(one.value_swapped(), Some(zero));
        assert_eq!(
            zero.value_swapped().and_then(|v| v.value_swapped()),
            Some(zero)
        );
        // Wider alphabets have no canonical involution: undefined.
        assert_eq!(WideValue::new(2, 3).value_swapped(), None);
        assert_eq!(WideValue::new(128, 42).value_swapped(), None);
        assert!(WideValue::value_symmetric());
        // The blanket defaults stay conservative: no primitive claims
        // value symmetry or an involution.
        assert!(!u64::value_symmetric());
        assert_eq!(7u64.value_swapped(), None);
        let ctx = SymmetryContext {
            round: 3,
            crash_budget: 1,
            actives_below: 2,
        };
        assert!(!7u64.rank_inert(&ctx), "default rank_inert opts out");
    }

    #[test]
    fn default_codec_is_not_pid_symmetric() {
        // The opt-in must never leak through the blanket defaults: every
        // primitive keeps `false`, and the default relabel is the plain
        // encoding.
        assert!(!u64::pid_symmetric());
        assert!(!ProcessId::pid_symmetric());
        assert!(!Vec::<u32>::pid_symmetric());
        let v = WideValue::new(4, 9);
        let mut a = Vec::new();
        let mut b = Vec::new();
        v.encode(&mut a);
        v.encode_relabelled(3, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_set_elements_rejected() {
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        5u64.encode(&mut buf);
        5u64.encode(&mut buf);
        let mut input = buf.as_slice();
        assert!(BTreeSet::<u64>::decode(&mut input).is_none());
    }
}
