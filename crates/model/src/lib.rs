//! # twostep-model — foundation types for the extended synchronous model
//!
//! This crate defines the vocabulary shared by every layer of the `twostep`
//! workspace, which reproduces *"The Power and Limit of Adding
//! Synchronization Messages for Synchronous Agreement"* (Cao, Raynal, Wang,
//! Wu — ICPP 2006):
//!
//! * [`ProcessId`] / [`PidSet`] — 1-based process ranks (the paper's
//!   `p_1 … p_n`) and dense bitsets over them;
//! * [`Round`] — 1-based synchronous round numbers;
//! * [`CrashStage`], [`CrashPoint`], [`CrashSchedule`] — the paper's crash
//!   fault model, in which a process that crashes during the *data* sending
//!   step delivers an **arbitrary subset** of its data messages, while a
//!   process that crashes during the *control* (synchronization) sending
//!   step delivers an ordered **prefix** of its control messages
//!   (Section 2.1 of the paper);
//! * [`SystemConfig`] — the `(n, t)` resilience configuration;
//! * [`RunMetrics`] and the [`theorem2`] closed forms — message/bit
//!   accounting exactly as Theorem 2 counts it (a data message costs `b`
//!   bits, a commit message costs one bit);
//! * [`TimingModel`] and the [`timing`] formulas — the Section 2.2 cost
//!   model (`D` = classic round duration, `d` = marginal cost of the
//!   pipelined control step, extended round = `D + d`).
//!
//! Everything here is deterministic, allocation-light and independent of any
//! particular simulator; the round engine (`twostep-sim`), the event kernel
//! (`twostep-events`), the threaded runtime (`twostep-runtime`) and the
//! model checker (`twostep-modelcheck`) all consume these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod fault;
pub mod metrics;
pub mod pid;
pub mod round;
pub mod schedule_text;
pub mod theorem2;
pub mod timing;
pub mod value;

pub use codec::{Canonicalizer, SpillCodec, SymmetryContext};
pub use config::SystemConfig;
pub use fault::{CrashPoint, CrashSchedule, CrashStage, DeliveryOutcome};
pub use metrics::RunMetrics;
pub use pid::{PidSet, ProcessId};
pub use round::Round;
pub use schedule_text::{format_schedule, parse_schedule};
pub use timing::TimingModel;
pub use value::{BitSized, WideValue};
