//! A compact textual format for crash schedules, for CLI use and debug
//! output.
//!
//! Grammar (whitespace-insensitive around separators):
//!
//! ```text
//! schedule   := "none" | entry ("," entry)*
//! entry      := "p" RANK "@r" ROUND ":" stage
//! stage      := "before-send"
//!             | "mid-data{" RANK ("," RANK)* "}" | "mid-data{}"
//!             | "mid-control/" PREFIX
//!             | "end-of-round"
//! ```
//!
//! Examples: `p1@r1:mid-control/2`, `p1@r1:mid-data{3,5},p2@r2:before-send`.

use crate::fault::{CrashPoint, CrashSchedule, CrashStage};
use crate::pid::{PidSet, ProcessId};
use crate::round::Round;
use std::fmt;

/// Renders a schedule in the textual format (`none` when failure-free).
pub fn format_schedule(schedule: &CrashSchedule) -> String {
    let n = schedule.universe();
    let mut parts: Vec<String> = Vec::new();
    for pid in ProcessId::all(n) {
        let Some(cp) = schedule.crash_point(pid) else {
            continue;
        };
        let stage = match &cp.stage {
            CrashStage::BeforeSend => "before-send".to_string(),
            CrashStage::MidData { delivered } => {
                let ranks: Vec<String> = delivered.iter().map(|p| p.rank().to_string()).collect();
                format!("mid-data{{{}}}", ranks.join(","))
            }
            CrashStage::MidControl { prefix_len } => format!("mid-control/{prefix_len}"),
            CrashStage::EndOfRound => "end-of-round".to_string(),
        };
        parts.push(format!("p{}@r{}:{stage}", pid.rank(), cp.round));
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(",")
    }
}

/// Errors from [`parse_schedule`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Parses the textual format into a schedule over a universe of `n`.
pub fn parse_schedule(n: usize, text: &str) -> Result<CrashSchedule, ParseError> {
    let text = text.trim();
    let mut schedule = CrashSchedule::none(n);
    if text.is_empty() || text == "none" {
        return Ok(schedule);
    }

    // Split on commas that are not inside a mid-data brace group.
    let mut entries: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                entries.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        entries.push(current);
    }

    for entry in entries {
        let entry = entry.trim();
        let Some(rest) = entry.strip_prefix('p') else {
            return err(format!("entry '{entry}' must start with 'p<rank>'"));
        };
        let Some((rank_str, rest)) = rest.split_once("@r") else {
            return err(format!("entry '{entry}' is missing '@r<round>'"));
        };
        let Some((round_str, stage_str)) = rest.split_once(':') else {
            return err(format!("entry '{entry}' is missing ':<stage>'"));
        };
        let rank: u32 = match rank_str.trim().parse() {
            Ok(r) if r >= 1 => r,
            _ => return err(format!("bad rank '{rank_str}' in '{entry}'")),
        };
        if rank as usize > n {
            return err(format!("rank p{rank} outside universe 1..={n}"));
        }
        let round: u32 = match round_str.trim().parse() {
            Ok(r) if r >= 1 => r,
            _ => return err(format!("bad round '{round_str}' in '{entry}'")),
        };

        let stage_str = stage_str.trim();
        let stage = if stage_str == "before-send" {
            CrashStage::BeforeSend
        } else if stage_str == "end-of-round" {
            CrashStage::EndOfRound
        } else if let Some(prefix) = stage_str.strip_prefix("mid-control/") {
            match prefix.trim().parse::<usize>() {
                Ok(k) => CrashStage::MidControl { prefix_len: k },
                Err(_) => return err(format!("bad prefix '{prefix}' in '{entry}'")),
            }
        } else if let Some(body) = stage_str
            .strip_prefix("mid-data{")
            .and_then(|s| s.strip_suffix('}'))
        {
            let mut delivered = PidSet::empty(n);
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match part.parse::<u32>() {
                    Ok(r) if r >= 1 && r as usize <= n => {
                        delivered.insert(ProcessId::new(r));
                    }
                    _ => return err(format!("bad delivered rank '{part}' in '{entry}'")),
                }
            }
            CrashStage::MidData { delivered }
        } else {
            return err(format!("unknown stage '{stage_str}' in '{entry}'"));
        };

        if schedule.crash_point(ProcessId::new(rank)).is_some() {
            return err(format!("p{rank} crashes twice"));
        }
        schedule.set(
            ProcessId::new(rank),
            Some(CrashPoint::new(Round::new(round), stage)),
        );
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    #[test]
    fn none_round_trips() {
        let s = CrashSchedule::none(4);
        assert_eq!(format_schedule(&s), "none");
        assert_eq!(parse_schedule(4, "none").unwrap(), s);
        assert_eq!(parse_schedule(4, "  ").unwrap(), s);
    }

    #[test]
    fn every_stage_round_trips() {
        let s = CrashSchedule::none(5)
            .with_crash(
                pid(1),
                CrashPoint::new(Round::new(1), CrashStage::BeforeSend),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(
                    Round::new(2),
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(5, [pid(3), pid(5)]),
                    },
                ),
            )
            .with_crash(
                pid(3),
                CrashPoint::new(Round::new(1), CrashStage::MidControl { prefix_len: 2 }),
            )
            .with_crash(
                pid(4),
                CrashPoint::new(Round::new(3), CrashStage::EndOfRound),
            );
        let text = format_schedule(&s);
        assert_eq!(
            text,
            "p1@r1:before-send,p2@r2:mid-data{3,5},p3@r1:mid-control/2,p4@r3:end-of-round"
        );
        assert_eq!(parse_schedule(5, &text).unwrap(), s);
    }

    #[test]
    fn empty_mid_data_round_trips() {
        let s = CrashSchedule::none(3).with_crash(
            pid(2),
            CrashPoint::new(
                Round::new(1),
                CrashStage::MidData {
                    delivered: PidSet::empty(3),
                },
            ),
        );
        let text = format_schedule(&s);
        assert_eq!(text, "p2@r1:mid-data{}");
        assert_eq!(parse_schedule(3, &text).unwrap(), s);
    }

    #[test]
    fn whitespace_tolerated() {
        let s = parse_schedule(4, " p1@r1:mid-control/0 , p3@r2:before-send ").unwrap();
        assert_eq!(s.f(), 2);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (input, needle) in [
            ("q1@r1:before-send", "must start with 'p"),
            ("p1:before-send", "missing '@r"),
            ("p1@r1", "missing ':"),
            ("p0@r1:before-send", "bad rank"),
            ("p9@r1:before-send", "outside universe"),
            ("p1@r0:before-send", "bad round"),
            ("p1@r1:exploded", "unknown stage"),
            ("p1@r1:mid-control/x", "bad prefix"),
            ("p1@r1:mid-data{7}", "bad delivered rank"),
            ("p1@r1:before-send,p1@r2:before-send", "crashes twice"),
        ] {
            let e = parse_schedule(4, input).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "input '{input}': got '{e}', wanted '{needle}'"
            );
        }
    }
}
