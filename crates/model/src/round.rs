//! Synchronous round numbers.
//!
//! The paper's global clock variable `r` takes the successive integer values
//! `1, 2, …` (Section 2.1); processes can only read it. [`Round`] mirrors
//! that: a 1-based counter with explicit, overflow-checked arithmetic.

use std::fmt;

/// A 1-based synchronous round number.
///
/// Round numbers index the lockstep structure of both the classic and the
/// extended model; in the paper's Figure 1, round `r` is coordinated by
/// process `p_r`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(u32);

impl Round {
    /// The first round, `r = 1`.
    pub const FIRST: Round = Round(1);

    /// Creates a round number.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`; rounds are 1-based.
    #[inline]
    pub fn new(r: u32) -> Self {
        assert!(r >= 1, "rounds are 1-based; round 0 is invalid");
        Round(r)
    }

    /// The round's numeric value.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The next round, `r + 1`.
    #[inline]
    pub fn next(self) -> Self {
        Round(self.0.checked_add(1).expect("round counter overflow"))
    }

    /// The previous round, or `None` if this is round 1.
    #[inline]
    pub fn prev(self) -> Option<Self> {
        (self.0 > 1).then(|| Round(self.0 - 1))
    }

    /// Iterator over rounds `1..=last`.
    pub fn up_to(last: u32) -> impl DoubleEndedIterator<Item = Round> + Clone {
        (1..=last).map(Round)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_is_one() {
        assert_eq!(Round::FIRST.get(), 1);
        assert_eq!(Round::FIRST, Round::new(1));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_zero_panics() {
        let _ = Round::new(0);
    }

    #[test]
    fn next_prev() {
        let r3 = Round::new(3);
        assert_eq!(r3.next(), Round::new(4));
        assert_eq!(r3.prev(), Some(Round::new(2)));
        assert_eq!(Round::FIRST.prev(), None);
    }

    #[test]
    fn up_to_enumerates() {
        let rs: Vec<u32> = Round::up_to(4).map(Round::get).collect();
        assert_eq!(rs, vec![1, 2, 3, 4]);
        assert_eq!(Round::up_to(0).count(), 0);
    }

    #[test]
    fn ordering_follows_numbers() {
        assert!(Round::new(2) < Round::new(10));
        assert_eq!(format!("{:?}", Round::new(7)), "r7");
        assert_eq!(format!("{}", Round::new(7)), "7");
    }
}
