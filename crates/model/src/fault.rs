//! The crash fault model of the extended synchronous system (Section 2.1).
//!
//! A process may crash at any point of a round, and *where* it crashes
//! determines what the other processes see:
//!
//! * crash during the **data sending step** — an *arbitrary subset* of the
//!   data messages it was supposed to send is actually received (the usual
//!   assumption of the crash-prone synchronous model), and **no** control
//!   message is sent (the control step never starts);
//! * crash during the **control sending step** — all data messages were
//!   already sent, and the one-bit control message reaches an ordered
//!   **prefix** of the destination sequence: if `p` sends to `q₁, q₂, …` in
//!   that order and crashes, it is impossible for `q₂` to receive the
//!   message while `q₁` does not;
//! * crash at the **end of the round** — the process participated fully
//!   (it sent everything, received, computed, and possibly *decided*) and is
//!   gone from the next round on.  This stage matters for *uniform*
//!   agreement: a process may decide and then crash, and its decision must
//!   still agree with everyone else's.
//!
//! The adversary's entire power over a run is captured by a
//! [`CrashSchedule`]: at most `t` processes get a [`CrashPoint`], i.e. a
//! round plus a [`CrashStage`] with the concrete delivery choice.

use crate::config::SystemConfig;
use crate::pid::{PidSet, ProcessId};
use crate::round::Round;
use std::fmt;

/// Where, within its crash round, a process stops — together with the
/// adversary's concrete delivery choice for that stage.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CrashStage {
    /// Crashes before sending anything: no data, no control, and the
    /// process does not take part in the receive/compute phase.
    BeforeSend,
    /// Crashes during the data sending step: exactly the destinations in
    /// `delivered` (intersected with the actual send plan) receive their
    /// data message; the control step never starts.
    MidData {
        /// The subset of destinations the adversary lets receive data.
        delivered: PidSet,
    },
    /// Crashes during the control sending step: every data message was
    /// delivered, and the control message reaches the first `prefix_len`
    /// destinations of the protocol's *ordered* control list (clamped to
    /// the list length).
    MidControl {
        /// Length of the delivered prefix of the ordered control sequence.
        prefix_len: usize,
    },
    /// Crashes at the very end of the round: full participation in the
    /// round (including receive/compute — the process may decide!) and
    /// crashed from the next round on.
    EndOfRound,
}

/// The canonical effect of a crash stage on the crashing process's round:
/// what gets delivered and whether the process still receives/computes.
///
/// Produced by [`CrashStage::effect`]; consumed by every execution substrate
/// (the round simulator, the threaded runtime, the model checker) so that
/// all of them enforce identical semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeliveryOutcome {
    /// Which destinations of the *data* step receive their message:
    /// `None` means "no filtering — everything is delivered".
    pub data_filter: Option<PidSet>,
    /// How many entries of the ordered *control* list are delivered:
    /// `None` means "all of them".
    pub control_prefix: Option<usize>,
    /// Whether the process still executes the receive + compute phase of
    /// this round (and may therefore decide before dying).
    pub receives_this_round: bool,
}

impl DeliveryOutcome {
    /// The outcome of a round with **no** crash: everything delivered,
    /// full participation.
    pub fn unimpeded() -> Self {
        DeliveryOutcome {
            data_filter: None,
            control_prefix: None,
            receives_this_round: true,
        }
    }
}

impl CrashStage {
    /// The delivery outcome this stage imposes on the crashing process's
    /// round (Section 2.1 semantics, see module docs).
    pub fn effect(&self, universe: usize) -> DeliveryOutcome {
        match self {
            CrashStage::BeforeSend => DeliveryOutcome {
                data_filter: Some(PidSet::empty(universe)),
                control_prefix: Some(0),
                receives_this_round: false,
            },
            CrashStage::MidData { delivered } => DeliveryOutcome {
                data_filter: Some(delivered.clone()),
                control_prefix: Some(0),
                receives_this_round: false,
            },
            CrashStage::MidControl { prefix_len } => DeliveryOutcome {
                data_filter: None,
                control_prefix: Some(*prefix_len),
                receives_this_round: false,
            },
            CrashStage::EndOfRound => DeliveryOutcome {
                data_filter: None,
                control_prefix: None,
                receives_this_round: true,
            },
        }
    }

    /// Whether this stage lets the process complete its entire send phase.
    ///
    /// Figure 1's coordinator decides (line 6) only if it "executes
    /// entirely" lines 4–5; a crash in `BeforeSend`, `MidData` or
    /// `MidControl` interrupts the send phase, so a decision scheduled for
    /// after the send must not be recorded.
    pub fn completes_send_phase(&self) -> bool {
        matches!(self, CrashStage::EndOfRound)
    }
}

/// A crash point: the round in which a process crashes plus the stage
/// within that round.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CrashPoint {
    /// The round during which the crash happens.
    pub round: Round,
    /// The stage within the round, with the adversary's delivery choice.
    pub stage: CrashStage,
}

impl CrashPoint {
    /// Convenience constructor.
    pub fn new(round: Round, stage: CrashStage) -> Self {
        CrashPoint { round, stage }
    }
}

/// Errors produced when validating a [`CrashSchedule`] against a
/// [`SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// More crashes scheduled than the resilience bound `t` allows.
    TooManyCrashes {
        /// Scheduled number of crashes `f`.
        scheduled: usize,
        /// The configuration's resilience bound `t`.
        bound: usize,
    },
    /// The schedule was built for a different system size.
    WrongUniverse {
        /// The schedule's universe.
        schedule_n: usize,
        /// The configuration's `n`.
        config_n: usize,
    },
    /// A `MidData` delivery subset ranges over the wrong universe.
    SubsetUniverseMismatch {
        /// Process whose crash stage is malformed.
        pid: ProcessId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::TooManyCrashes { scheduled, bound } => {
                write!(f, "schedule crashes {scheduled} processes but t={bound}")
            }
            ScheduleError::WrongUniverse {
                schedule_n,
                config_n,
            } => {
                write!(f, "schedule universe n={schedule_n} != config n={config_n}")
            }
            ScheduleError::SubsetUniverseMismatch { pid } => {
                write!(f, "MidData subset of {pid} ranges over the wrong universe")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The adversary's complete plan for a run: an optional [`CrashPoint`] per
/// process, with at most `t` processes crashing.
///
/// `CrashSchedule` is `Eq + Hash` so the model checker can memoize over
/// (configuration, schedule-prefix) pairs.
///
/// # Examples
///
/// The paper's signature scenario — the first coordinator crashes during
/// its ordered commit step, delivering a prefix of length 1:
///
/// ```
/// use twostep_model::{
///     CrashPoint, CrashSchedule, CrashStage, ProcessId, Round, SystemConfig,
/// };
///
/// let schedule = CrashSchedule::none(5).with_crash(
///     ProcessId::new(1),
///     CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
/// );
/// assert_eq!(schedule.f(), 1);
/// assert!(schedule.validate(&SystemConfig::new(5, 2).unwrap()).is_ok());
/// assert!(schedule.faulty().contains(ProcessId::new(1)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CrashSchedule {
    n: usize,
    points: Vec<Option<CrashPoint>>,
}

impl CrashSchedule {
    /// The failure-free schedule for `n` processes.
    pub fn none(n: usize) -> Self {
        CrashSchedule {
            n,
            points: vec![None; n],
        }
    }

    /// Clears every crash point in place — a reusable schedule buffer
    /// returns to the failure-free state without reallocating (the
    /// model checker rebuilds a pseudo-schedule per explored terminal).
    pub fn reset(&mut self) {
        for point in &mut self.points {
            *point = None;
        }
    }

    /// Adds (or replaces) a crash point for `pid`, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is outside the universe.
    pub fn with_crash(mut self, pid: ProcessId, point: CrashPoint) -> Self {
        self.set(pid, Some(point));
        self
    }

    /// Sets or clears the crash point of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is outside the universe.
    pub fn set(&mut self, pid: ProcessId, point: Option<CrashPoint>) {
        assert!(pid.idx() < self.n, "{pid} outside universe 1..={}", self.n);
        self.points[pid.idx()] = point;
    }

    /// The universe size `n` the schedule was built for.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The crash point of `pid`, if it is scheduled to crash.
    #[inline]
    pub fn crash_point(&self, pid: ProcessId) -> Option<&CrashPoint> {
        self.points[pid.idx()].as_ref()
    }

    /// The number of processes that crash in this schedule — the paper's
    /// `f` (actual failures in the run).
    pub fn f(&self) -> usize {
        self.points.iter().filter(|p| p.is_some()).count()
    }

    /// The set of faulty processes (those with a crash point).
    pub fn faulty(&self) -> PidSet {
        PidSet::from_iter(
            self.n,
            self.points
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| ProcessId::from_idx(i)),
        )
    }

    /// The set of correct processes (complement of [`faulty`](Self::faulty)).
    pub fn correct(&self) -> PidSet {
        let mut s = PidSet::full(self.n);
        s.difference_with(&self.faulty());
        s
    }

    /// Processes whose crash round is exactly `round`.
    pub fn crashing_in(&self, round: Round) -> impl Iterator<Item = ProcessId> + '_ {
        self.points
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.as_ref().is_some_and(|cp| cp.round == round))
            .map(|(i, _)| ProcessId::from_idx(i))
    }

    /// The largest crash round in the schedule, if any process crashes.
    pub fn last_crash_round(&self) -> Option<Round> {
        self.points
            .iter()
            .filter_map(|p| p.as_ref().map(|cp| cp.round))
            .max()
    }

    /// Validates the schedule against a configuration: matching universe,
    /// at most `t` crashes, well-formed delivery subsets.
    pub fn validate(&self, config: &SystemConfig) -> Result<(), ScheduleError> {
        if self.n != config.n() {
            return Err(ScheduleError::WrongUniverse {
                schedule_n: self.n,
                config_n: config.n(),
            });
        }
        let f = self.f();
        if f > config.t() {
            return Err(ScheduleError::TooManyCrashes {
                scheduled: f,
                bound: config.t(),
            });
        }
        for (i, p) in self.points.iter().enumerate() {
            if let Some(CrashPoint {
                stage: CrashStage::MidData { delivered },
                ..
            }) = p
            {
                if delivered.universe() != self.n {
                    return Err(ScheduleError::SubsetUniverseMismatch {
                        pid: ProcessId::from_idx(i),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    #[test]
    fn unimpeded_outcome() {
        let o = DeliveryOutcome::unimpeded();
        assert_eq!(o.data_filter, None);
        assert_eq!(o.control_prefix, None);
        assert!(o.receives_this_round);
    }

    #[test]
    fn before_send_delivers_nothing() {
        let e = CrashStage::BeforeSend.effect(4);
        assert_eq!(e.data_filter, Some(PidSet::empty(4)));
        assert_eq!(e.control_prefix, Some(0));
        assert!(!e.receives_this_round);
        assert!(!CrashStage::BeforeSend.completes_send_phase());
    }

    #[test]
    fn mid_data_delivers_subset_and_no_control() {
        // Section 2.1: crash during the data step ⇒ arbitrary subset of data
        // delivered, control step never starts.
        let subset = PidSet::from_iter(5, [pid(2), pid(4)]);
        let stage = CrashStage::MidData {
            delivered: subset.clone(),
        };
        let e = stage.effect(5);
        assert_eq!(e.data_filter, Some(subset));
        assert_eq!(e.control_prefix, Some(0), "control step never starts");
        assert!(!e.receives_this_round);
        assert!(!stage.completes_send_phase());
    }

    #[test]
    fn mid_control_delivers_all_data_and_prefix() {
        // Section 2.1: crash during the control step ⇒ all data delivered,
        // control delivered to an ordered prefix.
        let stage = CrashStage::MidControl { prefix_len: 2 };
        let e = stage.effect(5);
        assert_eq!(e.data_filter, None, "data step already completed");
        assert_eq!(e.control_prefix, Some(2));
        assert!(!e.receives_this_round);
        assert!(!stage.completes_send_phase());
    }

    #[test]
    fn end_of_round_participates_fully() {
        let e = CrashStage::EndOfRound.effect(5);
        assert_eq!(e.data_filter, None);
        assert_eq!(e.control_prefix, None);
        assert!(
            e.receives_this_round,
            "may decide before dying — uniform agreement must cover it"
        );
        assert!(CrashStage::EndOfRound.completes_send_phase());
    }

    #[test]
    fn schedule_f_and_sets() {
        let mut s = CrashSchedule::none(4);
        assert_eq!(s.f(), 0);
        assert!(s.faulty().is_empty());
        assert!(s.correct().is_full());

        s.set(
            pid(1),
            Some(CrashPoint::new(Round::new(1), CrashStage::BeforeSend)),
        );
        s.set(
            pid(3),
            Some(CrashPoint::new(
                Round::new(2),
                CrashStage::MidControl { prefix_len: 1 },
            )),
        );
        assert_eq!(s.f(), 2);
        assert_eq!(s.faulty(), PidSet::from_iter(4, [pid(1), pid(3)]));
        assert_eq!(s.correct(), PidSet::from_iter(4, [pid(2), pid(4)]));
        assert_eq!(s.last_crash_round(), Some(Round::new(2)));
        let in_r2: Vec<_> = s.crashing_in(Round::new(2)).collect();
        assert_eq!(in_r2, vec![pid(3)]);
    }

    #[test]
    fn builder_style() {
        let s = CrashSchedule::none(3).with_crash(
            pid(2),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        assert_eq!(s.f(), 1);
        assert!(s.crash_point(pid(2)).is_some());
        assert!(s.crash_point(pid(1)).is_none());
    }

    #[test]
    fn validation_catches_too_many_crashes() {
        let config = SystemConfig::new(4, 1).unwrap();
        let s = CrashSchedule::none(4)
            .with_crash(
                pid(1),
                CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
            );
        assert_eq!(
            s.validate(&config),
            Err(ScheduleError::TooManyCrashes {
                scheduled: 2,
                bound: 1
            })
        );
    }

    #[test]
    fn validation_catches_wrong_universe() {
        let config = SystemConfig::new(5, 2).unwrap();
        let s = CrashSchedule::none(4);
        assert!(matches!(
            s.validate(&config),
            Err(ScheduleError::WrongUniverse {
                schedule_n: 4,
                config_n: 5
            })
        ));
    }

    #[test]
    fn validation_catches_subset_mismatch() {
        let config = SystemConfig::new(4, 2).unwrap();
        let bad_subset = PidSet::empty(7); // wrong universe
        let s = CrashSchedule::none(4).with_crash(
            pid(2),
            CrashPoint::new(
                Round::FIRST,
                CrashStage::MidData {
                    delivered: bad_subset,
                },
            ),
        );
        assert_eq!(
            s.validate(&config),
            Err(ScheduleError::SubsetUniverseMismatch { pid: pid(2) })
        );
    }

    #[test]
    fn validation_accepts_well_formed() {
        let config = SystemConfig::new(4, 2).unwrap();
        let s = CrashSchedule::none(4)
            .with_crash(
                pid(1),
                CrashPoint::new(
                    Round::FIRST,
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(4, [pid(3)]),
                    },
                ),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(Round::new(2), CrashStage::MidControl { prefix_len: 0 }),
            );
        assert_eq!(s.validate(&config), Ok(()));
    }
}
