//! System configuration: the `(n, t)` pair and its well-formedness rules.

use crate::pid::ProcessId;
use std::fmt;

/// The static configuration of a synchronous system run.
///
/// * `n` — number of processes `p_1 … p_n`;
/// * `t` — resilience: the maximum number of processes *allowed* to crash.
///   The paper assumes `1 ≤ t < n` (an algorithm tolerating `t = n` crashes
///   is trivial: nothing has to be guaranteed when everybody may die), and
///   the lower-bound section additionally assumes `n ≥ t + 2` so that at
///   least two correct processes can compare their views (Section 5).
///
/// The number of crashes that *actually occur* in a run, `f ≤ t`, is a
/// property of a [`CrashSchedule`](crate::fault::CrashSchedule), not of the
/// configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    n: usize,
    t: usize,
}

/// Errors produced when validating a [`SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n == 0`: a system needs at least one process.
    NoProcesses,
    /// `t >= n`: the resilience bound must leave at least one process alive.
    ResilienceTooHigh {
        /// Requested number of processes.
        n: usize,
        /// Requested resilience bound.
        t: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoProcesses => write!(f, "system must have at least one process"),
            ConfigError::ResilienceTooHigh { n, t } => {
                write!(f, "resilience t={t} must be < n={n}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SystemConfig {
    /// Creates a configuration, validating `n ≥ 1` and `t < n`.
    pub fn new(n: usize, t: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if t >= n {
            return Err(ConfigError::ResilienceTooHigh { n, t });
        }
        Ok(Self { n, t })
    }

    /// Creates a configuration with the maximum resilience `t = n - 1`
    /// (the paper's algorithm tolerates any `t < n`).
    pub fn max_resilience(n: usize) -> Result<Self, ConfigError> {
        Self::new(n, n.saturating_sub(1))
    }

    /// Number of processes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resilience bound `t` (maximum crashes tolerated).
    #[inline]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Whether the lower-bound section's standing assumption `n ≥ t + 2`
    /// holds (Section 5 requires two correct processes to compare views).
    #[inline]
    pub fn satisfies_lower_bound_assumption(&self) -> bool {
        self.n >= self.t + 2
    }

    /// Whether MR99's requirement of a correct majority (`t < n/2`) holds —
    /// needed when comparing against the asynchronous bridge of Section 4.
    #[inline]
    pub fn has_correct_majority(&self) -> bool {
        2 * self.t < self.n
    }

    /// All process ids `p_1 … p_n`.
    pub fn pids(&self) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }

    /// The worst-case decision round of the paper's algorithm for `f`
    /// actual crashes: `f + 1` (Theorem 1).
    #[inline]
    pub fn crw_round_bound(&self, f: usize) -> u32 {
        debug_assert!(f <= self.t);
        (f + 1) as u32
    }

    /// The classic-model early-deciding uniform consensus bound for `f`
    /// actual crashes: `min(f + 2, t + 1)`.
    #[inline]
    pub fn classic_early_bound(&self, f: usize) -> u32 {
        debug_assert!(f <= self.t);
        ((f + 2).min(self.t + 1)) as u32
    }

    /// The classic-model flooding bound: `t + 1` rounds regardless of `f`.
    #[inline]
    pub fn flooding_bound(&self) -> u32 {
        (self.t + 1) as u32
    }
}

impl fmt::Debug for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SystemConfig(n={}, t={})", self.n, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = SystemConfig::new(5, 3).unwrap();
        assert_eq!(c.n(), 5);
        assert_eq!(c.t(), 3);
        assert_eq!(c.pids().count(), 5);
    }

    #[test]
    fn rejects_zero_processes() {
        assert_eq!(SystemConfig::new(0, 0), Err(ConfigError::NoProcesses));
    }

    #[test]
    fn rejects_t_geq_n() {
        assert_eq!(
            SystemConfig::new(4, 4),
            Err(ConfigError::ResilienceTooHigh { n: 4, t: 4 })
        );
        assert!(SystemConfig::new(4, 5).is_err());
    }

    #[test]
    fn max_resilience_is_n_minus_one() {
        let c = SystemConfig::max_resilience(6).unwrap();
        assert_eq!(c.t(), 5);
        // n = 1 ⇒ t = 0 is still valid (a lone process can't crash "more").
        let c1 = SystemConfig::max_resilience(1).unwrap();
        assert_eq!(c1.t(), 0);
    }

    #[test]
    fn lower_bound_assumption() {
        assert!(SystemConfig::new(5, 3)
            .unwrap()
            .satisfies_lower_bound_assumption());
        assert!(!SystemConfig::new(5, 4)
            .unwrap()
            .satisfies_lower_bound_assumption());
    }

    #[test]
    fn majority_check() {
        assert!(SystemConfig::new(5, 2).unwrap().has_correct_majority());
        assert!(!SystemConfig::new(4, 2).unwrap().has_correct_majority());
    }

    #[test]
    fn round_bounds_match_paper() {
        let c = SystemConfig::new(10, 6).unwrap();
        // Theorem 1: f + 1.
        assert_eq!(c.crw_round_bound(0), 1);
        assert_eq!(c.crw_round_bound(6), 7);
        // Classic early deciding: min(f+2, t+1).
        assert_eq!(c.classic_early_bound(0), 2);
        assert_eq!(c.classic_early_bound(5), 7);
        assert_eq!(c.classic_early_bound(6), 7, "capped at t+1");
        // Flooding: t + 1.
        assert_eq!(c.flooding_bound(), 7);
    }

    #[test]
    fn display_of_errors() {
        let e = SystemConfig::new(3, 3).unwrap_err();
        assert!(e.to_string().contains("t=3"));
    }
}
