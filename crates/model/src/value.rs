//! Proposed values and their bit sizes.
//!
//! Theorem 2 of the paper counts complexity in *bits*: a data message
//! carries a proposed value of `b ≥ 1` bits, while a commit message is a
//! pure one-bit signal.  (Footnote 7: a one-bit message is recognized as a
//! commit; two or more bits make it a data message.)  The [`BitSized`]
//! trait lets any message type report the bit size Theorem 2 would charge
//! for it, and [`WideValue`] is a test/workload value with an *exact*,
//! caller-chosen bit width `b` so the experiments can sweep `b`
//! independently of the Rust representation.

use std::fmt;

/// Types that know the number of bits Theorem 2's accounting charges for
/// them when carried inside a data message.
pub trait BitSized {
    /// The bit size `b` of this value.
    fn bit_size(&self) -> u64;
}

macro_rules! impl_bitsized_prim {
    ($($ty:ty),*) => {
        $(impl BitSized for $ty {
            #[inline]
            fn bit_size(&self) -> u64 {
                (std::mem::size_of::<$ty>() * 8) as u64
            }
        })*
    };
}

impl_bitsized_prim!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl BitSized for bool {
    #[inline]
    fn bit_size(&self) -> u64 {
        1
    }
}

impl BitSized for () {
    #[inline]
    fn bit_size(&self) -> u64 {
        0
    }
}

impl<T: BitSized> BitSized for Option<T> {
    #[inline]
    fn bit_size(&self) -> u64 {
        // One presence bit plus the payload when present.
        1 + self.as_ref().map_or(0, BitSized::bit_size)
    }
}

impl<T: BitSized> BitSized for Vec<T> {
    #[inline]
    fn bit_size(&self) -> u64 {
        self.iter().map(BitSized::bit_size).sum()
    }
}

impl<A: BitSized, B: BitSized> BitSized for (A, B) {
    #[inline]
    fn bit_size(&self) -> u64 {
        self.0.bit_size() + self.1.bit_size()
    }
}

/// A proposed value with an exact, caller-chosen logical bit width.
///
/// `WideValue` stores a numeric identity (so validity/agreement checks can
/// compare values) together with the logical width `b` used for Theorem 2
/// accounting.  Two values are equal iff both the identity and the width
/// match — mixing widths inside one run would make bit accounting
/// meaningless, and the constructors of the experiment harness never do.
///
/// The identity is kept in the *low* `min(b, 64)` bits; constructing a
/// `WideValue` masks the identity to the declared width so that, e.g., a
/// 1-bit value can only be 0 or 1 (as in the binary-input lower-bound
/// experiments).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WideValue {
    bits: u32,
    ident: u64,
}

impl WideValue {
    /// Creates a value of logical width `bits` (`1..=u32::MAX`) with the
    /// given identity, masked to the width.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`; Theorem 2 assumes `b ≥ 1`.
    pub fn new(bits: u32, ident: u64) -> Self {
        assert!(bits >= 1, "Theorem 2 assumes values of at least one bit");
        let masked = if bits >= 64 {
            ident
        } else {
            ident & ((1u64 << bits) - 1)
        };
        WideValue {
            bits,
            ident: masked,
        }
    }

    /// The value's identity (its low 64 bits of payload).
    #[inline]
    pub fn ident(&self) -> u64 {
        self.ident
    }

    /// The declared logical width `b`.
    #[inline]
    pub fn width(&self) -> u32 {
        self.bits
    }
}

impl BitSized for WideValue {
    #[inline]
    fn bit_size(&self) -> u64 {
        self.bits as u64
    }
}

impl fmt::Debug for WideValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}b", self.ident, self.bits)
    }
}

impl fmt::Display for WideValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_bit_sizes() {
        assert_eq!(5u64.bit_size(), 64);
        assert_eq!(5u8.bit_size(), 8);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(().bit_size(), 0);
    }

    #[test]
    fn option_and_vec_sizes() {
        assert_eq!(Some(1u8).bit_size(), 9);
        assert_eq!(None::<u8>.bit_size(), 1);
        assert_eq!(vec![1u8, 2, 3].bit_size(), 24);
        assert_eq!((1u8, 2u16).bit_size(), 24);
    }

    #[test]
    fn wide_value_width_and_mask() {
        let v = WideValue::new(4, 0xFF);
        assert_eq!(v.width(), 4);
        assert_eq!(v.ident(), 0x0F, "identity masked to declared width");
        assert_eq!(v.bit_size(), 4);

        let w = WideValue::new(128, 42);
        assert_eq!(w.bit_size(), 128);
        assert_eq!(w.ident(), 42);
    }

    #[test]
    fn binary_values_are_binary() {
        // Width-1 values can only be 0 or 1 — the lower-bound experiments
        // rely on this.
        assert_eq!(WideValue::new(1, 7).ident(), 1);
        assert_eq!(WideValue::new(1, 6).ident(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_panics() {
        let _ = WideValue::new(0, 1);
    }

    #[test]
    fn equality_includes_width() {
        assert_ne!(WideValue::new(8, 1), WideValue::new(9, 1));
        assert_eq!(WideValue::new(8, 1), WideValue::new(8, 1));
    }

    #[test]
    fn ordering_is_total() {
        let a = WideValue::new(8, 1);
        let b = WideValue::new(8, 2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
    }
}
