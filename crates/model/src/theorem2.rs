//! Closed forms from Theorem 2: the bit/message complexity of the paper's
//! algorithm (Figure 1) in the best and worst case.
//!
//! Theorem 2 considers proposed values of `b ≥ 1` bits, data messages
//! costing `b` bits and commit messages costing one bit, and derives:
//!
//! * **Best case** (no crash): a single round coordinated by `p_1`, which
//!   sends one data and one commit message to each of the other `n-1`
//!   processes — `(n-1)·(b+1)` bits in `2(n-1)` messages.
//!
//! * **Worst case** (`f = t` crashes, each coordinator crashing after
//!   partially sending): coordinator `p_k` (for `k = 1..t+1`, with the
//!   first `t` crashing) sends up to `n-k` data messages and up to `n-k`
//!   commit messages, so the number of data messages is bounded by
//!
//!   ```text
//!   Σ_{k=1}^{t+1} (n-k)  =  (t+1)·n − (t+1)(t+2)/2
//!   ```
//!
//!   giving `O(n·t)` messages and `O(n·t·b)` bits overall.
//!
//! These functions are the reference curves for experiment **E3**
//! (`repro e3-bits`): the harness runs the real algorithm under the
//! best-case (no-crash) and worst-case adversaries and checks the measured
//! counters against these forms.

/// Number of messages (data + commit) in the **best case** (no crash):
/// `2(n-1)` — one data and one commit from `p_1` to each other process.
pub fn best_case_messages(n: usize) -> u64 {
    2 * (n as u64 - 1)
}

/// Bit complexity in the **best case** (no crash): `(n-1)(b+1)`.
pub fn best_case_bits(n: usize, b: u64) -> u64 {
    (n as u64 - 1) * (b + 1)
}

/// Upper bound on the number of **data** messages in the worst case with
/// `f` crashing coordinators (so coordinators `p_1 … p_{f+1}` all send):
/// `Σ_{k=1}^{f+1} (n-k) = (f+1)n − (f+1)(f+2)/2`.
///
/// # Panics
///
/// Panics if `f + 1 > n` (there are only `n` possible coordinators).
pub fn worst_case_data_messages(n: usize, f: usize) -> u64 {
    assert!(f < n, "at most n coordinators exist");
    let n = n as u64;
    let k = f as u64 + 1; // number of coordinators that get to send
    k * n - k * (k + 1) / 2
}

/// Upper bound on the number of **commit** messages in the worst case —
/// same count as the data messages (each coordinator commits to at most the
/// processes it sent data to).
pub fn worst_case_control_messages(n: usize, f: usize) -> u64 {
    worst_case_data_messages(n, f)
}

/// Upper bound on the total number of messages in the worst case:
/// `≤ 2·[(f+1)n − (f+1)(f+2)/2] = O(n·t)`.
pub fn worst_case_messages(n: usize, f: usize) -> u64 {
    2 * worst_case_data_messages(n, f)
}

/// Upper bound on the total bit complexity in the worst case:
/// `(b+1)·[(f+1)n − (f+1)(f+2)/2] = O(n·t·b)`.
pub fn worst_case_bits(n: usize, f: usize, b: u64) -> u64 {
    (b + 1) * worst_case_data_messages(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_case_forms() {
        // n = 5, b = 8: p_1 sends 4 data (8 bits each) + 4 commits (1 bit).
        assert_eq!(best_case_messages(5), 8);
        assert_eq!(best_case_bits(5, 8), 4 * 9);
        // Theorem 2's statement: (n-1)(b+1).
        for n in 2..50 {
            for b in [1u64, 8, 64, 1024] {
                assert_eq!(best_case_bits(n, b), (n as u64 - 1) * (b + 1));
            }
        }
    }

    #[test]
    fn worst_case_sum_matches_naive() {
        // The closed form equals the literal sum Σ_{k=1}^{f+1}(n-k).
        for n in 2..30usize {
            for f in 0..n {
                if f + 1 > n {
                    continue;
                }
                let naive: u64 = (1..=f as u64 + 1).map(|k| n as u64 - k).sum();
                assert_eq!(worst_case_data_messages(n, f), naive, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn worst_case_zero_crash_degenerates_to_best_case() {
        // f = 0: only p_1 sends, n-1 data + n-1 commits.
        assert_eq!(worst_case_data_messages(10, 0), 9);
        assert_eq!(worst_case_messages(10, 0), best_case_messages(10));
        assert_eq!(worst_case_bits(10, 0, 8), best_case_bits(10, 8));
    }

    #[test]
    fn worst_case_is_monotone_in_f() {
        for f in 0..9 {
            assert!(worst_case_bits(10, f + 1, 8) >= worst_case_bits(10, f, 8));
        }
    }

    #[test]
    fn worst_case_is_o_ntb() {
        // Sanity: the bound is ≤ (f+1)·n·(b+1), the O(ntb) shape.
        for n in 2..20usize {
            for f in 0..n {
                for b in [1u64, 16, 256] {
                    assert!(worst_case_bits(n, f, b) <= (f as u64 + 1) * n as u64 * (b + 1));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most n coordinators")]
    fn too_many_coordinators_panics() {
        let _ = worst_case_data_messages(3, 3);
    }
}
