//! Run metrics: rounds, messages, bits, decision rounds.
//!
//! Accounting follows Theorem 2 of the paper exactly:
//!
//! * a **data** message carrying a `b`-bit value costs `b` bits;
//! * a **commit** (control/synchronization) message costs **one** bit;
//! * messages count when *transmitted* (put on the wire by a sender whose
//!   crash filter let them through) — a sender cannot know a destination
//!   has halted, and the paper's worst-case scenario sums the messages the
//!   surviving coordinators send.  A message suppressed by the sender's own
//!   mid-send crash was never transmitted and does not count.
//!
//! Decision rounds are tracked per process so the experiments can report
//! both the *first* decision (the coordinator's, Figure 1 line 6) and the
//! *last* decision (the round-complexity figure of Theorem 1: "no process
//! decides after round `f+1`").

use crate::pid::ProcessId;
use crate::round::Round;
use std::fmt;

/// Counters collected while executing one run.
#[derive(PartialEq, Eq, Debug)]
pub struct RunMetrics {
    /// Number of rounds the engine executed before every live process had
    /// decided (or the round cap was hit).
    pub rounds_executed: u32,
    /// Data messages actually delivered.
    pub data_messages: u64,
    /// Control (commit) messages actually delivered.
    pub control_messages: u64,
    /// Total bits of delivered data messages (`Σ b` per Theorem 2).
    pub data_bits: u64,
    /// Total bits of delivered control messages (one per message).
    pub control_bits: u64,
    /// Per-process decision round (`None` = never decided, e.g. crashed
    /// first or the protocol did not terminate for it).
    pub decision_round: Vec<Option<Round>>,
}

/// Manual so `clone_from` reuses the decision-round vector's
/// allocation: the model checker re-forks pooled executions once per
/// explored edge, and the derived struct `clone_from` (a full
/// `*self = source.clone()`) would reallocate it every time.  Adding a
/// field to the struct shows up here as a compile error, never a
/// silently un-copied field.
impl Clone for RunMetrics {
    fn clone(&self) -> Self {
        RunMetrics {
            rounds_executed: self.rounds_executed,
            data_messages: self.data_messages,
            control_messages: self.control_messages,
            data_bits: self.data_bits,
            control_bits: self.control_bits,
            decision_round: self.decision_round.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        let RunMetrics {
            rounds_executed,
            data_messages,
            control_messages,
            data_bits,
            control_bits,
            decision_round,
        } = source;
        self.rounds_executed = *rounds_executed;
        self.data_messages = *data_messages;
        self.control_messages = *control_messages;
        self.data_bits = *data_bits;
        self.control_bits = *control_bits;
        self.decision_round.clone_from(decision_round);
    }
}

impl RunMetrics {
    /// Fresh counters for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        RunMetrics {
            rounds_executed: 0,
            data_messages: 0,
            control_messages: 0,
            data_bits: 0,
            control_bits: 0,
            decision_round: vec![None; n],
        }
    }

    /// Records the delivery of one data message of `bits` bits.
    #[inline]
    pub fn count_data(&mut self, bits: u64) {
        self.data_messages += 1;
        self.data_bits += bits;
    }

    /// Records the delivery of one one-bit control message.
    #[inline]
    pub fn count_control(&mut self) {
        self.control_messages += 1;
        self.control_bits += 1;
    }

    /// Records that `pid` decided in `round` (first decision wins; a
    /// process decides at most once).
    pub fn record_decision(&mut self, pid: ProcessId, round: Round) {
        let slot = &mut self.decision_round[pid.idx()];
        if slot.is_none() {
            *slot = Some(round);
        }
    }

    /// Total messages delivered (data + control).
    #[inline]
    pub fn total_messages(&self) -> u64 {
        self.data_messages + self.control_messages
    }

    /// Total bits delivered (data + control) — Theorem 2's bit complexity.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        self.data_bits + self.control_bits
    }

    /// The earliest decision round across all processes, if any decided.
    pub fn first_decision_round(&self) -> Option<Round> {
        self.decision_round.iter().flatten().min().copied()
    }

    /// The latest decision round across all processes, if any decided —
    /// the quantity bounded by Theorem 1 ("no process decides after round
    /// `f+1`").
    pub fn last_decision_round(&self) -> Option<Round> {
        self.decision_round.iter().flatten().max().copied()
    }

    /// Number of processes that decided.
    pub fn deciders(&self) -> usize {
        self.decision_round.iter().filter(|d| d.is_some()).count()
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} msgs={} (data={}, ctl={}) bits={} deciders={}/{} last-decision={}",
            self.rounds_executed,
            self.total_messages(),
            self.data_messages,
            self.control_messages,
            self.total_bits(),
            self.deciders(),
            self.decision_round.len(),
            match self.last_decision_round() {
                Some(r) => r.to_string(),
                None => "-".into(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_metrics_are_zero() {
        let m = RunMetrics::new(3);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.total_bits(), 0);
        assert_eq!(m.deciders(), 0);
        assert_eq!(m.first_decision_round(), None);
        assert_eq!(m.last_decision_round(), None);
    }

    #[test]
    fn counting_follows_theorem2() {
        let mut m = RunMetrics::new(2);
        m.count_data(64);
        m.count_data(64);
        m.count_control();
        assert_eq!(m.data_messages, 2);
        assert_eq!(m.data_bits, 128);
        assert_eq!(m.control_messages, 1);
        assert_eq!(m.control_bits, 1, "a commit message costs exactly one bit");
        assert_eq!(m.total_bits(), 129);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn first_decision_sticks() {
        let mut m = RunMetrics::new(2);
        let p1 = ProcessId::new(1);
        m.record_decision(p1, Round::new(2));
        m.record_decision(p1, Round::new(5)); // ignored: decides at most once
        assert_eq!(m.decision_round[0], Some(Round::new(2)));
    }

    #[test]
    fn first_and_last_decisions() {
        let mut m = RunMetrics::new(3);
        m.record_decision(ProcessId::new(1), Round::new(1));
        m.record_decision(ProcessId::new(3), Round::new(4));
        assert_eq!(m.first_decision_round(), Some(Round::new(1)));
        assert_eq!(m.last_decision_round(), Some(Round::new(4)));
        assert_eq!(m.deciders(), 2);
    }

    #[test]
    fn display_smoke() {
        let mut m = RunMetrics::new(2);
        m.rounds_executed = 1;
        m.count_data(8);
        let s = m.to_string();
        assert!(s.contains("rounds=1"), "{s}");
        assert!(s.contains("bits=8"), "{s}");
    }
}
