//! Property-based verification of the fault model: crash-stage effects,
//! schedule bookkeeping, and the Theorem 2 / timing closed forms.

use proptest::prelude::*;
use twostep_model::{
    theorem2, CrashPoint, CrashSchedule, CrashStage, PidSet, ProcessId, Round, SystemConfig,
    TimingModel, WideValue,
};

fn stage_strategy(n: usize) -> impl Strategy<Value = CrashStage> {
    prop_oneof![
        Just(CrashStage::BeforeSend),
        prop::collection::btree_set(1u32..=n as u32, 0..=n).prop_map(move |ranks| {
            CrashStage::MidData {
                delivered: PidSet::from_iter(n, ranks.into_iter().map(ProcessId::new)),
            }
        }),
        (0usize..=n).prop_map(|k| CrashStage::MidControl { prefix_len: k }),
        Just(CrashStage::EndOfRound),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn stage_effects_are_internally_consistent(
        n in 1usize..=16,
        stage in (1usize..=16).prop_flat_map(stage_strategy),
    ) {
        let e = stage.effect(n);
        // A stage that completes the send phase must deliver everything.
        if stage.completes_send_phase() {
            prop_assert_eq!(e.data_filter.clone(), None);
            prop_assert_eq!(e.control_prefix, None);
            prop_assert!(e.receives_this_round);
        } else {
            // Every non-completing stage kills the receive phase.
            prop_assert!(!e.receives_this_round);
        }
        // Control can only flow if the data step completed.
        if let Some(k) = e.control_prefix {
            if k > 0 {
                prop_assert!(e.data_filter.is_none(), "commit implies full data step");
            }
        }
    }

    #[test]
    fn schedule_bookkeeping_is_consistent(
        n in 2usize..=12,
        crashers in prop::collection::btree_set(1u32..=12u32, 0..6),
        round in 1u32..=6,
    ) {
        let crashers: Vec<u32> = crashers.into_iter().filter(|r| *r <= n as u32).collect();
        let mut s = CrashSchedule::none(n);
        for (i, r) in crashers.iter().enumerate() {
            s.set(
                ProcessId::new(*r),
                Some(CrashPoint::new(
                    Round::new(round + (i as u32 % 2)),
                    CrashStage::BeforeSend,
                )),
            );
        }
        prop_assert_eq!(s.f(), crashers.len());
        prop_assert_eq!(s.faulty().len(), crashers.len());
        prop_assert_eq!(s.correct().len(), n - crashers.len());
        let mut both = s.faulty();
        both.union_with(&s.correct());
        prop_assert!(both.is_full(), "faulty ∪ correct = everyone");
        let per_round: usize = (1..=8)
            .map(|r| s.crashing_in(Round::new(r)).count())
            .sum();
        prop_assert_eq!(per_round, crashers.len(), "each crasher in exactly one round");
        // Validation agrees with the count: t = n-1 admits any f < n.
        if let Ok(config) = SystemConfig::new(n, n - 1) {
            prop_assert_eq!(s.validate(&config).is_ok(), crashers.len() < n);
        }
        if !crashers.is_empty() {
            let tight = SystemConfig::new(n, crashers.len() - 1);
            if let Ok(tight) = tight {
                prop_assert!(s.validate(&tight).is_err());
            }
        }
    }

    #[test]
    fn theorem2_worst_case_is_monotone_and_exact(
        n in 2usize..=64,
        b in 1u64..=1024,
    ) {
        for f in 0..n - 1 {
            let naive: u64 = (1..=f as u64 + 1).map(|k| n as u64 - k).sum();
            prop_assert_eq!(theorem2::worst_case_data_messages(n, f), naive);
            prop_assert!(theorem2::worst_case_bits(n, f, b) >= theorem2::best_case_bits(n, b) || f == 0);
            if f > 0 {
                prop_assert!(
                    theorem2::worst_case_data_messages(n, f)
                        > theorem2::worst_case_data_messages(n, f - 1)
                );
            }
        }
        prop_assert_eq!(
            theorem2::worst_case_bits(n, 0, b),
            theorem2::best_case_bits(n, b),
            "f = 0 degenerates to the best case"
        );
    }

    #[test]
    fn timing_model_is_monotone(
        big_d in 1u64..=1_000_000,
        small_d in 0u64..=1_000_000,
        t in 1usize..=32,
    ) {
        let tm = TimingModel::new(big_d, small_d);
        for f in 0..t {
            prop_assert!(tm.crw_decision_time(f + 1) > tm.crw_decision_time(f));
            prop_assert!(
                tm.classic_early_decision_time(f + 1, t)
                    >= tm.classic_early_decision_time(f, t)
            );
            prop_assert!(tm.fastfd_decision_time(f + 1) >= tm.fastfd_decision_time(f));
            // The paper's crossover inequality, both directions.
            let wins = tm.extended_beats_classic(f, t);
            let lhs = (f as u64 + 1) * tm.extended_round();
            let rhs = ((f + 2).min(t + 1)) as u64 * tm.round;
            prop_assert_eq!(wins, lhs < rhs);
        }
    }

    #[test]
    fn wide_values_respect_width(bits in 1u32..=128, ident in any::<u64>()) {
        let v = WideValue::new(bits, ident);
        prop_assert_eq!(v.width(), bits);
        if bits < 64 {
            prop_assert!(v.ident() < (1u64 << bits));
        }
        use twostep_model::BitSized;
        prop_assert_eq!(v.bit_size(), bits as u64);
        // Idempotent re-wrap.
        prop_assert_eq!(WideValue::new(bits, v.ident()), v);
    }
}
