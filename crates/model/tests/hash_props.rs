//! Property tests for [`twostep_model::codec::stable_hash64`], the
//! single hash of the model checker's canonical configuration keys.
//!
//! The pinned cross-platform test vectors live in the codec's unit
//! tests; these properties cover the behaviors consumers lean on:
//! determinism (same bytes, same hash — across calls and across byte
//! layouts), and practical injectivity (distinct generated inputs never
//! collide — any counterexample here would be a 2⁻⁶⁴ miracle worth
//! investigating, not shrinking).

use proptest::prelude::*;
use twostep_model::codec::stable_hash64;

proptest! {
    #[test]
    fn equal_bytes_hash_equal(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let copy = bytes.clone();
        prop_assert_eq!(stable_hash64(&bytes), stable_hash64(&copy));
        // Slicing a larger buffer down to the same bytes changes nothing.
        let mut padded = vec![0xEEu8; 8];
        padded.extend_from_slice(&bytes);
        prop_assert_eq!(stable_hash64(&padded[8..]), stable_hash64(&bytes));
    }

    #[test]
    fn distinct_bytes_hash_distinct(
        a in prop::collection::vec(any::<u8>(), 0..128),
        b in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        if a == b {
            return Ok(());
        }
        prop_assert_ne!(stable_hash64(&a), stable_hash64(&b));
    }

    #[test]
    fn extending_changes_the_hash(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        extra in any::<u8>(),
    ) {
        // A string and any extension of it must differ — the length is
        // folded into the seed, so zero-padded tails cannot alias.
        let mut longer = bytes.clone();
        longer.push(extra);
        prop_assert_ne!(stable_hash64(&longer), stable_hash64(&bytes));
    }
}
