//! Property tests for [`twostep_model::codec::stable_hash64`], the
//! single hash of the model checker's canonical configuration keys.
//!
//! The pinned cross-platform test vectors live in the codec's unit
//! tests; these properties cover the behaviors consumers lean on:
//! determinism (same bytes, same hash — across calls and across byte
//! layouts), and practical injectivity (distinct generated inputs never
//! collide — any counterexample here would be a 2⁻⁶⁴ miracle worth
//! investigating, not shrinking).

use proptest::prelude::*;
use twostep_model::codec::stable_hash64;
use twostep_model::Canonicalizer;

/// The canonical byte image of a multiset of per-process records, as
/// the model checker's symmetry reduction produces it: records pooled
/// through a [`Canonicalizer`], emitted in sorted order, each
/// length-prefixed (real configuration records are self-delimiting;
/// the prefix stands in for that here so record boundaries cannot
/// alias across concatenation).
fn canonical_image(records: &[Vec<u8>]) -> Vec<u8> {
    let mut canon = Canonicalizer::new();
    canon.begin();
    for r in records {
        canon.record().extend_from_slice(r);
    }
    canon.sort();
    let mut out = Vec::new();
    for (_, bytes) in canon.iter_sorted() {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Deterministic Fisher–Yates driven by an LCG, so a plain `u64` seed
/// names a pid permutation.
fn permute<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #[test]
    fn equal_bytes_hash_equal(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let copy = bytes.clone();
        prop_assert_eq!(stable_hash64(&bytes), stable_hash64(&copy));
        // Slicing a larger buffer down to the same bytes changes nothing.
        let mut padded = vec![0xEEu8; 8];
        padded.extend_from_slice(&bytes);
        prop_assert_eq!(stable_hash64(&padded[8..]), stable_hash64(&bytes));
    }

    #[test]
    fn distinct_bytes_hash_distinct(
        a in prop::collection::vec(any::<u8>(), 0..128),
        b in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        if a == b {
            return Ok(());
        }
        prop_assert_ne!(stable_hash64(&a), stable_hash64(&b));
    }

    #[test]
    fn extending_changes_the_hash(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        extra in any::<u8>(),
    ) {
        // A string and any extension of it must differ — the length is
        // folded into the seed, so zero-padded tails cannot alias.
        let mut longer = bytes.clone();
        longer.push(extra);
        prop_assert_ne!(stable_hash64(&longer), stable_hash64(&bytes));
    }

    /// Canonicalization is a true normal form: relabelling the processes
    /// (any permutation of the record slots) leaves the canonical image
    /// — and therefore the memo key and its hash — byte-identical.
    #[test]
    fn canonical_image_is_permutation_invariant(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..8),
        seed in any::<u64>(),
    ) {
        let reference = canonical_image(&records);
        let mut permuted = records.clone();
        permute(&mut permuted, seed);
        prop_assert_eq!(
            canonical_image(&permuted),
            reference.clone(),
            "permuting record slots must not change the canonical image"
        );
        prop_assert_eq!(
            stable_hash64(&canonical_image(&permuted)),
            stable_hash64(&reference)
        );
    }

    /// And it is injective on the quotient: two record *multisets* that
    /// actually differ (not mere relabellings of each other) produce
    /// different canonical images — the reduction merges exactly the
    /// permutation orbit, never distinct configurations.
    #[test]
    fn canonical_image_separates_distinct_multisets(
        a in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..8),
        b in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..8),
    ) {
        let mut a_sorted = a.clone();
        let mut b_sorted = b.clone();
        a_sorted.sort();
        b_sorted.sort();
        if a_sorted == b_sorted {
            prop_assert_eq!(canonical_image(&a), canonical_image(&b));
        } else {
            prop_assert_ne!(canonical_image(&a), canonical_image(&b));
        }
    }
}
