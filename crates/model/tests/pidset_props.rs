//! Property-based verification of `PidSet` against a reference
//! implementation (`BTreeSet`), across universe sizes that straddle the
//! 64-bit word boundary.

use proptest::prelude::*;
use std::collections::BTreeSet;
use twostep_model::{PidSet, ProcessId};

/// A universe size and a list of member operations within it.
fn ops_strategy() -> impl Strategy<Value = (usize, Vec<(bool, u32)>)> {
    (1usize..=130).prop_flat_map(|n| {
        let ops = prop::collection::vec((any::<bool>(), 1u32..=n as u32), 0..200);
        (Just(n), ops)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn insert_remove_matches_reference((n, ops) in ops_strategy()) {
        let mut set = PidSet::empty(n);
        let mut reference: BTreeSet<u32> = BTreeSet::new();
        for (insert, rank) in ops {
            let pid = ProcessId::new(rank);
            if insert {
                prop_assert_eq!(set.insert(pid), reference.insert(rank));
            } else {
                prop_assert_eq!(set.remove(pid), reference.remove(&rank));
            }
        }
        prop_assert_eq!(set.len(), reference.len());
        prop_assert_eq!(set.is_empty(), reference.is_empty());
        let got: Vec<u32> = set.iter().map(|p| p.rank()).collect();
        let want: Vec<u32> = reference.iter().copied().collect();
        prop_assert_eq!(got, want, "iteration in ascending rank order");
        prop_assert_eq!(set.min().map(|p| p.rank()), reference.first().copied());
        for rank in 1..=n as u32 {
            prop_assert_eq!(
                set.contains(ProcessId::new(rank)),
                reference.contains(&rank)
            );
        }
    }

    #[test]
    fn algebra_matches_reference(
        (n, ops_a) in ops_strategy(),
        seed in any::<u64>(),
    ) {
        // Build two sets over the same universe from ops_a and a rotation.
        let mut a = PidSet::empty(n);
        let mut ra: BTreeSet<u32> = BTreeSet::new();
        let mut b = PidSet::empty(n);
        let mut rb: BTreeSet<u32> = BTreeSet::new();
        for (i, (ins, rank)) in ops_a.iter().enumerate() {
            let rotated = (*rank as u64 + seed) % n as u64 + 1;
            let pid_a = ProcessId::new(*rank);
            let pid_b = ProcessId::new(rotated as u32);
            if *ins || i % 3 == 0 {
                a.insert(pid_a);
                ra.insert(*rank);
                b.insert(pid_b);
                rb.insert(rotated as u32);
            }
        }

        let mut union = a.clone();
        union.union_with(&b);
        let r_union: BTreeSet<u32> = ra.union(&rb).copied().collect();
        prop_assert_eq!(
            union.iter().map(|p| p.rank()).collect::<Vec<_>>(),
            r_union.iter().copied().collect::<Vec<_>>()
        );

        let mut inter = a.clone();
        inter.intersect_with(&b);
        let r_inter: BTreeSet<u32> = ra.intersection(&rb).copied().collect();
        prop_assert_eq!(
            inter.iter().map(|p| p.rank()).collect::<Vec<_>>(),
            r_inter.iter().copied().collect::<Vec<_>>()
        );

        let mut diff = a.clone();
        diff.difference_with(&b);
        let r_diff: BTreeSet<u32> = ra.difference(&rb).copied().collect();
        prop_assert_eq!(
            diff.iter().map(|p| p.rank()).collect::<Vec<_>>(),
            r_diff.iter().copied().collect::<Vec<_>>()
        );

        // Subset laws.
        prop_assert!(inter.is_subset(&a));
        prop_assert!(inter.is_subset(&b));
        prop_assert!(a.is_subset(&union));
        prop_assert!(diff.is_subset(&a));
    }

    #[test]
    fn full_and_empty_are_extremes(n in 1usize..=130) {
        let full = PidSet::full(n);
        let empty = PidSet::empty(n);
        prop_assert_eq!(full.len(), n);
        prop_assert!(full.is_full());
        prop_assert!(empty.is_subset(&full));
        prop_assert!(!full.is_subset(&empty) || n == 0);
        // Every pid is in full, none in empty.
        for pid in ProcessId::all(n) {
            prop_assert!(full.contains(pid));
            prop_assert!(!empty.contains(pid));
        }
    }

    #[test]
    fn eq_and_hash_agree((n, ops) in ops_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = PidSet::empty(n);
        let mut b = PidSet::empty(n);
        for (ins, rank) in &ops {
            let pid = ProcessId::new(*rank);
            if *ins {
                a.insert(pid);
                b.insert(pid);
            } else {
                a.remove(pid);
                b.remove(pid);
            }
        }
        prop_assert_eq!(&a, &b);
        let hash = |s: &PidSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&a), hash(&b));
    }
}
