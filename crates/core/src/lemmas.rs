//! The paper's proof obligations (Section 3.3), mechanized as trace-level
//! checkers.
//!
//! Lemma 2's agreement argument rests on two claims:
//!
//! * **C1** — some coordinator executes line 4 entirely (there are at most
//!   `t < n` faulty processes, so one of the first `t+1` coordinators
//!   completes its data step);
//! * **C2** — before the *first* such round `r`, nobody decided, and every
//!   earlier coordinator crashed.
//!
//! From C1+C2 the decided value is **locked**: it is the estimate the
//! first line-4-completing coordinator broadcast, and no other value can
//! ever be decided.
//!
//! These checkers read a full-trace [`RunReport`] of the algorithm and
//! verify the claims on the *observed* execution — a lemma-level test
//! oracle that property tests run against thousands of random schedules.
//! They are deliberately independent of the algorithm's internals: they
//! look only at transmitted messages and decisions, exactly like the
//! paper's proofs quantify over executions.

use crate::crw::{coordinator_of, Crw};
use std::collections::BTreeMap;
use std::fmt;
use twostep_model::{BitSized, ProcessId, Round};
use twostep_sim::RunReport;

/// A violation of the Section 3.3 proof structure on an observed run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LemmaViolation<V> {
    /// No coordinator ever completed line 4 even though decisions exist.
    NoLockingRound,
    /// Someone decided strictly before the first line-4-complete round
    /// (contradicts claim C2).
    EarlyDecision {
        /// The early decider.
        pid: ProcessId,
        /// Its decision round.
        round: Round,
        /// The first locking round.
        locking_round: Round,
    },
    /// A coordinator earlier than the locking round survived its own round
    /// without deciding (contradicts C2's "they all crashed").
    SurvivingEarlyCoordinator {
        /// The coordinator that should have crashed.
        pid: ProcessId,
    },
    /// A decision differs from the locked value (contradicts Lemma 2).
    UnlockedDecision {
        /// The deviating decider.
        pid: ProcessId,
        /// What it decided.
        decided: V,
        /// The locked value.
        locked: V,
    },
}

impl<V: fmt::Debug> fmt::Display for LemmaViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LemmaViolation::NoLockingRound => {
                write!(f, "decisions exist but no coordinator completed line 4")
            }
            LemmaViolation::EarlyDecision {
                pid,
                round,
                locking_round,
            } => write!(
                f,
                "{pid} decided in round {round}, before the locking round {locking_round}"
            ),
            LemmaViolation::SurvivingEarlyCoordinator { pid } => write!(
                f,
                "{pid} coordinated before the locking round yet neither crashed nor decided"
            ),
            LemmaViolation::UnlockedDecision {
                pid,
                decided,
                locked,
            } => write!(
                f,
                "{pid} decided {decided:?} but the locked value is {locked:?}"
            ),
        }
    }
}

/// The locking analysis of one observed run.
#[derive(Clone, Debug)]
pub struct LockReport<V> {
    /// The first round whose coordinator completed line 4, with the
    /// coordinator and the estimate it locked (`None` if no round did —
    /// only possible when nobody decides).
    pub locking: Option<(Round, ProcessId, V)>,
    /// All claim violations found (empty = the run matches the proofs).
    pub violations: Vec<LemmaViolation<V>>,
}

impl<V> LockReport<V> {
    /// Whether the observed run satisfies claims C1/C2 and Lemma 2.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Analyzes a **full-trace** run of the algorithm against the Section 3.3
/// claims.
///
/// # Panics
///
/// Panics if the report was not recorded at
/// [`TraceLevel::Full`](twostep_sim::TraceLevel) (the analysis needs the
/// per-message events).
pub fn check_value_locking<V>(n: usize, report: &RunReport<Crw<V>>) -> LockReport<V>
where
    V: Clone + Eq + fmt::Debug + BitSized + Send + Sync,
{
    // Count the data transmissions of each round's coordinator; line 4 is
    // complete when all `n - r` higher-ranked destinations were served.
    // (Transmission, not delivery: the lock is about what left the
    // coordinator — a halted receiver still "knows" nothing new can win.)
    let mut tx_per_round: BTreeMap<u32, (usize, Option<V>)> = BTreeMap::new();
    for ev in report.trace.events() {
        if let twostep_sim::Event::Data {
            round,
            from,
            transmitted: true,
            msg,
            ..
        } = ev
        {
            if coordinator_of(*round, n) == Some(*from) {
                let entry = tx_per_round.entry(round.get()).or_insert((0, None));
                entry.0 += 1;
                entry.1 = Some(msg.clone());
            }
        }
    }
    let mut locking: Option<(Round, ProcessId, V)> = None;
    for r in 1..=n as u32 {
        let expected = n - r as usize; // destinations of line 4
        if expected == 0 {
            // Round n: the top-ranked coordinator has nobody above it, so
            // line 4 completes *vacuously* the moment it executes the
            // round — witnessed by its line-6 decision in that round.
            let coord = ProcessId::new(r);
            if let Some(d) = &report.decisions[coord.idx()] {
                if d.round.get() == r {
                    locking = Some((Round::new(r), coord, d.value.clone()));
                    break;
                }
            }
        } else if let Some((count, value)) = tx_per_round.get(&r) {
            if *count == expected {
                locking = Some((
                    Round::new(r),
                    ProcessId::new(r),
                    value.clone().expect("complete round has messages"),
                ));
                break;
            }
        }
    }

    let mut violations: Vec<LemmaViolation<V>> = Vec::new();
    let any_decision = report.decisions.iter().any(|d| d.is_some());

    let Some((lock_round, _lock_coord, locked)) = locking.clone() else {
        if any_decision {
            violations.push(LemmaViolation::NoLockingRound);
        }
        return LockReport {
            locking,
            violations,
        };
    };

    for (i, d) in report.decisions.iter().enumerate() {
        if let Some(d) = d {
            // C2: no decision before the locking round.
            if d.round < lock_round {
                violations.push(LemmaViolation::EarlyDecision {
                    pid: ProcessId::from_idx(i),
                    round: d.round,
                    locking_round: lock_round,
                });
            }
            // Lemma 2: every decision equals the locked value.
            if d.value != locked {
                violations.push(LemmaViolation::UnlockedDecision {
                    pid: ProcessId::from_idx(i),
                    decided: d.value.clone(),
                    locked: locked.clone(),
                });
            }
        }
    }

    // C2, second half: coordinators of rounds before `lock_round` must all
    // have crashed (had one survived its round undecided, it would have
    // completed line 4 itself; had it decided, the early-decision check
    // fires).
    for r in 1..lock_round.get() {
        let pid = ProcessId::new(r);
        if !report.crashed.contains(pid) && report.decisions[pid.idx()].is_none() {
            violations.push(LemmaViolation::SurvivingEarlyCoordinator { pid });
        }
    }

    LockReport {
        locking,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crw::run_crw;
    use twostep_model::{CrashPoint, CrashSchedule, CrashStage, PidSet, SystemConfig};
    use twostep_sim::TraceLevel;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn props(n: usize) -> Vec<u64> {
        (1..=n as u64).map(|i| 100 + i).collect()
    }

    #[test]
    fn clean_run_locks_in_round_one() {
        let config = SystemConfig::new(5, 2).unwrap();
        let report = run_crw(
            &config,
            &CrashSchedule::none(5),
            &props(5),
            TraceLevel::Full,
        )
        .unwrap();
        let lock = check_value_locking(5, &report);
        assert!(lock.ok(), "{:?}", lock.violations);
        let (r, c, v) = lock.locking.unwrap();
        assert_eq!((r, c, v), (Round::FIRST, pid(1), 101));
    }

    #[test]
    fn mid_data_crash_defers_locking() {
        // p_1's incomplete line 4 must NOT count as a lock; p_2 locks in
        // round 2.
        let config = SystemConfig::new(5, 2).unwrap();
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(
                Round::FIRST,
                CrashStage::MidData {
                    delivered: PidSet::from_iter(5, [pid(3), pid(4)]),
                },
            ),
        );
        let report = run_crw(&config, &schedule, &props(5), TraceLevel::Full).unwrap();
        let lock = check_value_locking(5, &report);
        assert!(lock.ok(), "{:?}", lock.violations);
        let (r, c, v) = lock.locking.unwrap();
        assert_eq!(r, Round::new(2));
        assert_eq!(c, pid(2));
        assert_eq!(
            v, 102,
            "p_2's own estimate: p_1's partial data reached only p_3/p_4"
        );
    }

    #[test]
    fn mid_control_crash_still_locks() {
        // Line 4 completed (all data transmitted) — the value is locked in
        // round 1 even though the commit step was cut.
        let config = SystemConfig::new(5, 2).unwrap();
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 0 }),
        );
        let report = run_crw(&config, &schedule, &props(5), TraceLevel::Full).unwrap();
        let lock = check_value_locking(5, &report);
        assert!(lock.ok(), "{:?}", lock.violations);
        let (r, _, v) = lock.locking.unwrap();
        assert_eq!(
            (r, v),
            (Round::FIRST, 101),
            "lock = line 4 completion, not commits"
        );
    }

    #[test]
    fn cascade_locks_at_first_survivor() {
        let config = SystemConfig::new(6, 3).unwrap();
        let schedule = CrashSchedule::none(6)
            .with_crash(
                pid(1),
                CrashPoint::new(Round::new(1), CrashStage::BeforeSend),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(Round::new(2), CrashStage::BeforeSend),
            );
        let report = run_crw(&config, &schedule, &props(6), TraceLevel::Full).unwrap();
        let lock = check_value_locking(6, &report);
        assert!(lock.ok(), "{:?}", lock.violations);
        assert_eq!(lock.locking.unwrap().1, pid(3));
    }

    #[test]
    fn single_process_locks_vacuously() {
        let config = SystemConfig::new(1, 0).unwrap();
        let report = run_crw(&config, &CrashSchedule::none(1), &[9u64], TraceLevel::Full).unwrap();
        let lock = check_value_locking(1, &report);
        assert!(lock.ok());
        assert_eq!(lock.locking.unwrap().2, 9);
    }
}
