//! The paper's uniform consensus algorithm (Figure 1), line for line.
//!
//! ```text
//! Function Consensus(v_i):
//! (1)  est_i := v_i;
//! (2)  when r = 1, 2, …  do
//! (3)  begin round
//! (4)  case (r = i) then for each j ∈ {i+1, …, n} do send DATA(est_i) to p_j end do;
//! (5)                    for j from n down to i+1 do send COMMIT to p_j end do;
//! (6)                    return(est_i)
//! (7)      (r < i) then if (DATA(v) received from p_r) then est_i := v end if;
//! (8)                   if (COMMIT received from p_r) then return(est_i) end if
//! (9)      (r > i) then % cannot happen %
//! (10) end case
//! (11) end round
//! ```
//!
//! ### A reconstruction note on the commit order (line 5)
//!
//! The available text of the paper lost the loop bounds of line 5 to OCR.
//! The order is **not** a free choice: sending commits lowest-rank-first
//! breaks Theorem 1.  Example (`n = 5`): `p_1` crashes mid-commit with the
//! delivered prefix reaching only `p_2`; `p_2` decides in round 1 and
//! halts; round 2's coordinator *is* the halted `p_2`, so nothing happens
//! until `p_3` coordinates round 3 — a 3-round run with `f = 1`,
//! contradicting the `f+1` bound.  Sending commits **highest-rank-first**
//! (`p_n, p_{n-1}, …, p_{r+1}`) repairs this: a delivered commit to `p_j`
//! implies (prefix semantics) delivery to every `p_k` with `k > j`, so
//! whenever some process decides early, *all* higher-ranked processes
//! decide with it, and an easy induction shows a live undecided process at
//! round `r` always has rank ≥ `r`.  This is also the only reading under
//! which Lemma 3's printed proof goes through ("we can conclude that all
//! the processes [above `p_{f+1}`] have received both messages").  The
//! descending order is therefore the default; the ascending variant is
//! kept as [`CommitOrder::LowestFirst`] for the ablation experiment, where
//! the model checker exhibits the Theorem 1 violation mechanically
//! (`repro ablation-commit-order`).
//!
//! | Figure 1 | here |
//! |---|---|
//! | line 1 | [`Crw::new`] initializes `est` to the proposal |
//! | line 4 | the `r == i` arm of `send`: data to every higher-ranked process |
//! | line 5 | same arm: control destinations `p_n … p_{i+1}`, highest first |
//! | line 6 | [`SendPlan::then_decide`] — recorded only if the send phase completes |
//! | lines 7–8 | `receive`: adopt the coordinator's estimate, decide on commit |
//! | line 9 | a `debug_assert` — a live undecided process has rank ≥ round |
//!
//! Why it works (Lemma 2, informally): the *first* coordinator that
//! executes line 4 entirely locks its estimate — every live process then
//! holds that estimate, so no other value can ever be decided.  The commit
//! only tells receivers the lock happened; any delivered commit implies
//! the coordinator finished its data step.

use std::fmt;
use std::hash::Hash;
use twostep_model::{BitSized, CrashSchedule, ProcessId, Round, SpillCodec, SystemConfig};
use twostep_sim::{
    Inbox, ModelKind, RunReport, SendPlan, SimError, Simulation, Step, SyncProtocol, TraceLevel,
};

/// The order in which the coordinator sends its commit messages (line 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CommitOrder {
    /// `p_n, p_{n-1}, …, p_{r+1}` — the paper's order (see the module-level
    /// reconstruction note).  Guarantees the `f+1` round bound.
    #[default]
    HighestFirst,
    /// `p_{r+1}, …, p_n` — the superficially natural order, kept as an
    /// **ablation**: uniform agreement still holds, but Theorem 1's round
    /// bound fails (a decided-and-halted low-rank process can leave a
    /// round without a live coordinator).
    LowestFirst,
}

/// One process of the Cao–Raynal–Wang–Wu consensus algorithm.
///
/// Runs on the **extended** model only ([`ModelKind::Extended`]); the
/// engine will not accept its commit messages under classic semantics.
///
/// `V` is the proposed-value type; [`WideValue`](twostep_model::WideValue)
/// gives experiments exact control over the Theorem 2 bit width `b`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Crw<V> {
    me: ProcessId,
    n: usize,
    /// `est_i` — the current estimate (line 1: initialized to the proposal).
    est: V,
    order: CommitOrder,
}

impl<V: Clone> Crw<V> {
    /// Creates process `me` of an `n`-process instance proposing
    /// `proposal` (Figure 1 line 1), with the paper's commit order.
    pub fn new(me: ProcessId, n: usize, proposal: V) -> Self {
        Self::with_order(me, n, proposal, CommitOrder::HighestFirst)
    }

    /// Like [`new`](Self::new) but with an explicit commit order — only
    /// the ablation experiments use `LowestFirst`.
    pub fn with_order(me: ProcessId, n: usize, proposal: V, order: CommitOrder) -> Self {
        assert!(me.idx() < n, "{me} outside a system of {n} processes");
        Crw {
            me,
            n,
            est: proposal,
            order,
        }
    }

    /// The process this instance plays.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The current estimate `est_i`.
    pub fn estimate(&self) -> &V {
        &self.est
    }
}

impl SpillCodec for CommitOrder {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CommitOrder::HighestFirst => 0,
            CommitOrder::LowestFirst => 1,
        });
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(CommitOrder::HighestFirst),
            1 => Some(CommitOrder::LowestFirst),
            _ => None,
        }
    }
}

/// CRW process state is spillable so the model checker can evict memo
/// entries keyed by it to disk and exchange them between worker processes
/// (distributed exploration).
impl<V: SpillCodec> SpillCodec for Crw<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.me.encode(out);
        self.n.encode(out);
        self.est.encode(out);
        self.order.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let est = V::decode(input)?;
        let order = CommitOrder::decode(input)?;
        (me.idx() < n).then_some(Crw { me, n, est, order })
    }

    /// CRW is rank-*dependent* (rotating coordinator), so it never claims
    /// `pid_symmetric`; the relabel still matters to the partial-orbit
    /// tier, which owner-strips rank-inert records before pooling them.
    fn encode_relabelled(&self, at: usize, out: &mut Vec<u8>) {
        ProcessId::from_idx(at).encode(out);
        self.n.encode(out);
        self.est.encode(out);
        self.order.encode(out);
    }

    /// Rank-inertness for the rotating-coordinator dynamics, sound only
    /// under the paper's highest-first commit order:
    ///
    /// * `p_i` sends only as round-`i` coordinator, and a live
    ///   undecided process always has rank ≥ the current round (the
    ///   engine's asserted invariant), so round `i` arriving with `p_i`
    ///   still active requires every active ranked in `[round, i)` to
    ///   leave the execution first *without* settling `p_i`;
    /// * under `HighestFirst`, any commit prefix that decides a process
    ///   ranked below `i` covers `p_i` too (prefixes run downward from
    ///   `p_n`), so those lower actives can only leave by **crashing**;
    /// * with more actives below `p_i` than the adversary has crashes
    ///   left, round `i` is therefore unreachable with `p_i` active: its
    ///   rank can no longer matter.  Deliveries reach inert actives
    ///   uniformly — data goes to every higher rank, commit prefixes to
    ///   rank-downward windows all inert ranks share — so the partial
    ///   tier may pool them (inertness is also monotone along reachable
    ///   futures: a crash lowers `actives_below` and the budget together,
    ///   and a decision below `i` settles `p_i` itself).
    ///
    /// Under the `LowestFirst` ablation the second bullet fails (a low
    /// prefix can settle lower ranks while leaving `p_i` active), so the
    /// answer is pinned `false` there.
    fn rank_inert(&self, ctx: &twostep_model::SymmetryContext) -> bool {
        self.order == CommitOrder::HighestFirst && ctx.actives_below > ctx.crash_budget
    }

    /// CRW only *adopts and forwards* values (lines 4, 7–8 of Figure 1);
    /// it never computes on them, so its dynamics commute with any value
    /// relabelling the value type defines.
    fn value_symmetric() -> bool {
        V::value_symmetric()
    }

    fn value_swapped(&self) -> Option<Self> {
        Some(Crw {
            me: self.me,
            n: self.n,
            est: self.est.value_swapped()?,
            order: self.order,
        })
    }
}

/// The coordinator of round `r` is `p_r` (rotating coordinator paradigm).
///
/// Returns `None` when `r > n` — after `n` rounds every process has either
/// coordinated (and decided or crashed) or decided earlier, so no such
/// round is ever executed by a live process.
pub fn coordinator_of(round: Round, n: usize) -> Option<ProcessId> {
    (round.get() as usize <= n).then(|| ProcessId::new(round.get()))
}

impl<V> SyncProtocol for Crw<V>
where
    V: Clone + Eq + fmt::Debug + BitSized + Send + Sync,
{
    type Msg = V;
    type Output = V;

    fn send(&mut self, round: Round) -> SendPlan<V, V> {
        let mut plan = SendPlan::quiet();
        self.send_into(round, &mut plan);
        plan
    }

    /// The allocation-free hot path: the model checker executes this
    /// once per process per explored round, so the plan's buffers are
    /// refilled in place instead of rebuilt ([`SendPlan::clear`] keeps
    /// their allocations).
    fn send_into(&mut self, round: Round, plan: &mut SendPlan<V, V>) {
        plan.clear();
        if round.get() == self.me.rank() {
            // Lines 4–6: I coordinate this round.  Data to all higher
            // processes, then commits to the same processes (order per
            // `self.order`), then decide.  The whole plan is one atomic
            // send phase: no computation between the data and control
            // steps, exactly as the model prescribes.
            plan.data.reserve(self.n - self.me.idx() - 1);
            for dst in self.me.higher(self.n) {
                plan.data.push((dst, self.est.clone()));
            }
            plan.control.reserve(self.n - self.me.idx() - 1);
            match self.order {
                CommitOrder::HighestFirst => {
                    for dst in self.me.higher(self.n).rev() {
                        plan.control.push(dst);
                    }
                }
                CommitOrder::LowestFirst => {
                    for dst in self.me.higher(self.n) {
                        plan.control.push(dst);
                    }
                }
            }
            plan.decide_after_send = Some(self.est.clone());
        } else {
            // Line 9: r > i cannot happen — p_i would have decided (line 6)
            // or crashed while coordinating round i < r.  (This invariant
            // does fail under the LowestFirst ablation, which is part of
            // what that ablation demonstrates, so it is debug-asserted only
            // for the paper's order.)
            debug_assert!(
                self.order == CommitOrder::LowestFirst || self.me.rank() > round.get(),
                "{me} is live and undecided in round {round}, past its own \
                 coordination round — Figure 1 line 9 violated",
                me = self.me
            );
        }
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<V>) -> Step<V> {
        let Some(coord) = coordinator_of(round, self.n) else {
            return Step::Continue;
        };
        // Line 7: adopt the coordinator's estimate if its DATA arrived.
        if let Some(v) = inbox.data_from(coord) {
            self.est = v.clone();
        }
        // Line 8: the commit proves the coordinator completed its data
        // step, so its estimate is locked — decide it.
        if inbox.control_from(coord) {
            Step::Decide(self.est.clone())
        } else {
            Step::Continue
        }
    }
}

/// Builds the `n` process instances for proposals `proposals[i]` (the
/// proposal of `p_{i+1}`).
///
/// # Panics
///
/// Panics if `proposals.len() != config.n()`.
pub fn crw_processes<V: Clone>(config: &SystemConfig, proposals: &[V]) -> Vec<Crw<V>> {
    assert_eq!(
        proposals.len(),
        config.n(),
        "one proposal per process required"
    );
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| Crw::new(ProcessId::from_idx(i), config.n(), v.clone()))
        .collect()
}

/// Convenience driver: runs CRW consensus under `schedule` on the extended
/// model and returns the run report.
///
/// The round cap is `n + 1`: Theorem 1 guarantees decision by round
/// `f + 1 ≤ t + 1 ≤ n`, so hitting the cap indicates a bug (and is
/// reported via [`RunReport::hit_round_cap`]).
///
/// # Examples
///
/// The Theorem 1 worst case, `f = 2`: coordinators `p_1`, `p_2` die in
/// their own rounds and `p_3` closes the deal in round `f + 1 = 3`:
///
/// ```
/// use twostep_core::run_crw;
/// use twostep_model::{
///     CrashPoint, CrashSchedule, CrashStage, ProcessId, Round, SystemConfig,
/// };
/// use twostep_sim::TraceLevel;
///
/// let config = SystemConfig::new(5, 2).unwrap();
/// let schedule = CrashSchedule::none(5)
///     .with_crash(ProcessId::new(1),
///         CrashPoint::new(Round::new(1), CrashStage::BeforeSend))
///     .with_crash(ProcessId::new(2),
///         CrashPoint::new(Round::new(2), CrashStage::BeforeSend));
/// let proposals = vec![10u64, 20, 30, 40, 50];
///
/// let report = run_crw(&config, &schedule, &proposals, TraceLevel::Off).unwrap();
/// assert_eq!(report.last_decision_round().unwrap().get(), 3); // f + 1
/// assert_eq!(report.decided_values(), vec![&30]);             // p_3's estimate
/// ```
pub fn run_crw<V>(
    config: &SystemConfig,
    schedule: &CrashSchedule,
    proposals: &[V],
    trace: TraceLevel,
) -> Result<RunReport<Crw<V>>, SimError>
where
    V: Clone + Eq + fmt::Debug + BitSized + Send + Sync,
{
    Simulation::new(*config, ModelKind::Extended, schedule)
        .max_rounds(config.n() as u32 + 1)
        .trace_level(trace)
        .run(crw_processes(config, proposals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::{CrashPoint, CrashStage, PidSet};
    use twostep_sim::check_uniform_consensus;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn cfg(n: usize, t: usize) -> SystemConfig {
        SystemConfig::new(n, t).unwrap()
    }

    fn props(n: usize) -> Vec<u64> {
        (1..=n as u64).map(|i| 100 + i).collect()
    }

    #[test]
    fn coordinator_rotation() {
        assert_eq!(coordinator_of(Round::new(1), 4), Some(pid(1)));
        assert_eq!(coordinator_of(Round::new(4), 4), Some(pid(4)));
        assert_eq!(coordinator_of(Round::new(5), 4), None);
    }

    #[test]
    fn commit_list_is_highest_first() {
        let mut p = Crw::new(pid(2), 5, 0u64);
        let plan = p.send(Round::new(2));
        assert_eq!(plan.control, vec![pid(5), pid(4), pid(3)]);
        // Data destinations are a set; we emit them ascending.
        let data_dsts: Vec<_> = plan.data.iter().map(|(d, _)| *d).collect();
        assert_eq!(data_dsts, vec![pid(3), pid(4), pid(5)]);
        assert_eq!(plan.decide_after_send, Some(0));
    }

    #[test]
    fn ablation_commit_list_is_lowest_first() {
        let mut p = Crw::with_order(pid(2), 5, 0u64, CommitOrder::LowestFirst);
        let plan = p.send(Round::new(2));
        assert_eq!(plan.control, vec![pid(3), pid(4), pid(5)]);
    }

    #[test]
    fn no_crash_decides_in_one_round_on_p1s_value() {
        // §3.2: "if the first coordinator does not crash, the decision is
        // obtained in one round, whatever the number of faulty processes".
        for n in [2usize, 3, 5, 16] {
            let config = SystemConfig::max_resilience(n).unwrap();
            let schedule = CrashSchedule::none(n);
            let report = run_crw(&config, &schedule, &props(n), TraceLevel::Off).unwrap();
            for d in &report.decisions {
                let d = d.as_ref().expect("everyone decides");
                assert_eq!(d.value, 101, "decision is p_1's estimate");
                assert_eq!(d.round, Round::FIRST);
            }
            let spec = check_uniform_consensus(
                &props(n),
                &report.decisions,
                &schedule,
                Some(config.crw_round_bound(0)),
            );
            assert!(spec.ok(), "{spec}");
        }
    }

    #[test]
    fn first_coordinator_crash_before_send_takes_two_rounds() {
        // p_1 dies silently: p_2 coordinates round 2 and imposes its value.
        let config = cfg(5, 2);
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let report = run_crw(&config, &schedule, &props(5), TraceLevel::Off).unwrap();
        for (i, d) in report.decisions.iter().enumerate() {
            if i == 0 {
                assert!(d.is_none(), "p_1 crashed before deciding");
            } else {
                let d = d.as_ref().unwrap();
                assert_eq!(d.value, 102, "p_2's estimate wins");
                assert_eq!(d.round, Round::new(2), "f=1 ⇒ decision in round 2");
            }
        }
        let spec = check_uniform_consensus(
            &props(5),
            &report.decisions,
            &schedule,
            Some(config.crw_round_bound(1)),
        );
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn commit_prefix_decides_high_ranks_first() {
        // p_1 crashes mid-commit with prefix length 1: highest-first order
        // means exactly p_5 gets the commit and decides in round 1.  The
        // others adopted 101 (all data was delivered) and decide in round 2
        // when p_2 — with the locked estimate 101 — coordinates.
        let config = cfg(5, 2);
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
        );
        let report = run_crw(&config, &schedule, &props(5), TraceLevel::Off).unwrap();
        let d5 = report.decisions[4].as_ref().unwrap();
        assert_eq!((d5.value, d5.round), (101, Round::FIRST));
        for i in [1usize, 2, 3] {
            let d = report.decisions[i].as_ref().unwrap();
            assert_eq!(d.value, 101, "locked value decided by p_{}", i + 1);
            assert_eq!(d.round, Round::new(2), "f=1 ⇒ by round 2");
        }
        let spec = check_uniform_consensus(
            &props(5),
            &report.decisions,
            &schedule,
            Some(config.crw_round_bound(1)),
        );
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn ablation_lowest_first_violates_theorem1() {
        // The reconstruction note's counterexample, mechanized: with
        // ascending commits, prefix {p_2} makes p_2 decide and halt; round
        // 2 then has a halted coordinator and the run needs 3 rounds with
        // f = 1 — Theorem 1's f+1 = 2 bound is violated.  (Uniform
        // agreement still holds.)
        let config = cfg(5, 2);
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
        );
        let procs: Vec<_> = props(5)
            .iter()
            .enumerate()
            .map(|(i, v)| Crw::with_order(ProcessId::from_idx(i), 5, *v, CommitOrder::LowestFirst))
            .collect();
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .max_rounds(6)
            .run(procs)
            .unwrap();
        assert_eq!(
            report.last_decision_round(),
            Some(Round::new(3)),
            "ascending order needs 3 rounds where the paper's order needs 2"
        );
        // Agreement is unaffected by the order.
        let spec = check_uniform_consensus(&props(5), &report.decisions, &schedule, None);
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn commit_implies_data_invariant() {
        // Model invariant (Section 2.1): a receiver holding the commit also
        // holds the data — check it on a full trace.
        let config = cfg(4, 2);
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 2 }),
        );
        let report = run_crw(&config, &schedule, &props(4), TraceLevel::Full).unwrap();
        let data: Vec<_> = report.trace.delivered_data().collect();
        for (round, from, to) in report.trace.delivered_control() {
            assert!(
                data.contains(&(round, from, to)),
                "commit from {from} to {to} in round {round} without data"
            );
        }
    }

    #[test]
    fn cascade_of_coordinator_crashes_decides_at_f_plus_1() {
        // Coordinators p_1..p_f each crash before sending anything; p_{f+1}
        // then decides in round f+1 — the Theorem 1 worst-case shape.
        let n = 8;
        let config = SystemConfig::max_resilience(n).unwrap();
        for f in 0..=5usize {
            let mut schedule = CrashSchedule::none(n);
            for k in 1..=f {
                schedule.set(
                    pid(k as u32),
                    Some(CrashPoint::new(
                        Round::new(k as u32),
                        CrashStage::BeforeSend,
                    )),
                );
            }
            let report = run_crw(&config, &schedule, &props(n), TraceLevel::Off).unwrap();
            assert_eq!(
                report.last_decision_round(),
                Some(Round::new(f as u32 + 1)),
                "f={f}"
            );
            let spec = check_uniform_consensus(
                &props(n),
                &report.decisions,
                &schedule,
                Some(config.crw_round_bound(f)),
            );
            assert!(spec.ok(), "f={f}: {spec}");
        }
    }

    #[test]
    fn mid_data_subset_does_not_break_uniformity() {
        // p_1 leaks its estimate to p_3 only, then dies.  p_3 adopts 101
        // but cannot decide; p_2 coordinates round 2 with est 102 — and
        // p_3's est is overwritten to 102.  Everyone decides 102.
        let config = cfg(4, 2);
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(
                Round::FIRST,
                CrashStage::MidData {
                    delivered: PidSet::from_iter(4, [pid(3)]),
                },
            ),
        );
        let report = run_crw(&config, &schedule, &props(4), TraceLevel::Off).unwrap();
        for d in report.decisions.iter().skip(1) {
            assert_eq!(d.as_ref().unwrap().value, 102);
        }
        let spec = check_uniform_consensus(&props(4), &report.decisions, &schedule, None);
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn decide_then_die_is_uniform() {
        // p_1 completes round 1 fully (decides at line 6) and crashes at the
        // end of the round: its decision stands and must agree with all.
        let config = cfg(4, 2);
        let schedule = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        let report = run_crw(&config, &schedule, &props(4), TraceLevel::Off).unwrap();
        let d1 = report.decisions[0].as_ref().expect("decided at line 6");
        assert_eq!(d1.value, 101);
        let spec = check_uniform_consensus(&props(4), &report.decisions, &schedule, None);
        assert!(spec.ok(), "{spec}");
    }

    #[test]
    fn theorem2_best_case_bit_complexity() {
        // Best case: (n-1) data of 64 bits + (n-1) commits of 1 bit.
        let n = 9;
        let config = SystemConfig::max_resilience(n).unwrap();
        let schedule = CrashSchedule::none(n);
        let report = run_crw(&config, &schedule, &props(n), TraceLevel::Off).unwrap();
        assert_eq!(
            report.metrics.total_bits(),
            twostep_model::theorem2::best_case_bits(n, 64)
        );
        assert_eq!(
            report.metrics.total_messages(),
            twostep_model::theorem2::best_case_messages(n)
        );
    }

    #[test]
    fn single_process_system_decides_alone() {
        // Degenerate n = 1: p_1 coordinates round 1, sends nothing,
        // decides its own proposal.
        let config = SystemConfig::new(1, 0).unwrap();
        let schedule = CrashSchedule::none(1);
        let report = run_crw(&config, &schedule, &[42u64], TraceLevel::Off).unwrap();
        let d = report.decisions[0].as_ref().unwrap();
        assert_eq!((d.value, d.round), (42, Round::FIRST));
        assert_eq!(report.metrics.total_messages(), 0);
    }

    #[test]
    fn estimate_accessor() {
        let p = Crw::new(pid(2), 4, 7u64);
        assert_eq!(*p.estimate(), 7);
        assert_eq!(p.id(), pid(2));
    }

    #[test]
    #[should_panic(expected = "outside a system")]
    fn constructor_bounds_check() {
        let _ = Crw::new(pid(5), 4, 0u64);
    }
}
