//! The Section 2.2 computability constructions: the extended and classic
//! models simulate each other, so they have the same computational power —
//! the extended model only buys *efficiency* (rounds), not computability.
//!
//! * [`ClassicOnExtended`] — the trivial direction: a classic-model
//!   protocol runs unchanged on the extended engine by never using the
//!   control step ("if we suppress the second sending step we obtain the
//!   traditional synchronous model").
//!
//! * [`ExtendedOnClassic`] — the costly direction: each extended round is
//!   simulated by a **block of `n` classic rounds**: one round for the data
//!   step, then one classic round *per ordered control destination slot*
//!   (`n-1` of them).  Sending each control message in its own consecutive
//!   round is what restores the ordered-prefix crash semantics inside the
//!   classic model, where a crash only yields an arbitrary subset of a
//!   single round's messages: if the simulated process crashes while
//!   sending control message `#k`, messages `#1 … #k-1` went out in
//!   earlier (completed) rounds and messages `#k+1 …` were never sent, so
//!   the delivered control set is exactly a prefix, possibly including
//!   `#k`.  This is the paper's "(using additional separate rounds allows
//!   ensuring that the control messages are sent in the prescribed
//!   order)".
//!
//! [`translate_schedule`] maps an extended-model crash schedule onto the
//! corresponding classic-model schedule so that equivalence can be tested
//! mechanically: for every extended schedule, the direct run and the
//! simulated run decide **identically** (experiment E6, `repro
//! e6-equivalence`).

use std::fmt;
use twostep_model::{
    BitSized, CrashPoint, CrashSchedule, CrashStage, PidSet, ProcessId, Round, SpillCodec,
};
use twostep_sim::{Inbox, SendPlan, Step, SyncProtocol};

/// Marker wrapper for running a classic-model protocol on the extended
/// engine (the trivial simulation direction).
///
/// Purely a documentation device: it delegates everything and adds a
/// debug-time check that the wrapped protocol really never uses the
/// control step.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ClassicOnExtended<P>(pub P);

impl<P: SyncProtocol> SyncProtocol for ClassicOnExtended<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn send(&mut self, round: Round) -> SendPlan<P::Msg, P::Output> {
        let plan = self.0.send(round);
        debug_assert!(
            plan.control.is_empty(),
            "a classic-model protocol must not use the control step"
        );
        plan
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<P::Msg>) -> Step<P::Output> {
        self.0.receive(round, inbox)
    }
}

impl<P: SpillCodec> SpillCodec for ClassicOnExtended<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ClassicOnExtended(P::decode(input)?))
    }
    // The wrapper adds no state of its own, so pid-symmetry is exactly
    // the wrapped protocol's property.  `ExtendedOnClassic` deliberately
    // keeps the conservative defaults: its buffered inbox embeds peer
    // `ProcessId`s, which the symmetry contract forbids.
    fn pid_symmetric() -> bool {
        P::pid_symmetric()
    }
    fn encode_relabelled(&self, at: usize, out: &mut Vec<u8>) {
        self.0.encode_relabelled(at, out);
    }
}

/// Message type of the classic-model simulation: either a real data
/// message of the wrapped protocol or an encoded one-bit control message.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum XMsg<M> {
    /// A data message of the simulated extended round.
    Data(M),
    /// A control (commit) message, encoded as a minimal data message.
    Control,
}

impl<M: BitSized> BitSized for XMsg<M> {
    fn bit_size(&self) -> u64 {
        match self {
            XMsg::Data(m) => m.bit_size(),
            // The simulation cannot do better than the classic model's
            // smallest message; Theorem 2's footnote prices it at one bit.
            XMsg::Control => 1,
        }
    }
}

/// Runs an extended-model protocol on the **classic** engine by expanding
/// every extended round into a block of `n` classic rounds.
///
/// Block layout for extended round `R` (with `B = n`):
///
/// ```text
/// classic round (R-1)·B + 1      : all data messages of R
/// classic round (R-1)·B + 1 + j  : ordered control message #j (j = 1..n-1)
/// ```
///
/// The wrapped protocol's send-phase decision (Figure 1 line 6) fires at
/// the **last** round of the block, after the final control slot — i.e.
/// only if the whole simulated send phase completed, mirroring the
/// extended engine's rule.  Inbound messages are buffered across the block
/// and handed to the wrapped protocol at the block's end, so a process
/// never acts on partial-round information.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExtendedOnClassic<P: SyncProtocol> {
    inner: P,
    n: usize,
    stash: Option<SendPlan<P::Msg, P::Output>>,
    buf_data: Vec<(ProcessId, P::Msg)>,
    buf_control: Vec<ProcessId>,
}

impl<P: SyncProtocol> ExtendedOnClassic<P> {
    /// Wraps one process of an `n`-process extended-model protocol.
    pub fn new(inner: P, n: usize) -> Self {
        assert!(n >= 1);
        ExtendedOnClassic {
            inner,
            n,
            stash: None,
            buf_data: Vec::new(),
            buf_control: Vec::new(),
        }
    }

    /// Classic rounds per simulated extended round: `n` (1 data slot +
    /// `n-1` ordered control slots).
    pub fn block_len(n: usize) -> u32 {
        n as u32
    }

    /// Decomposes a classic round into `(extended_round, slot)` with
    /// `slot ∈ 1..=n`; slot 1 is the data slot, slot `1+j` carries control
    /// message `#j`.
    pub fn decompose(classic: Round, n: usize) -> (Round, u32) {
        let b = Self::block_len(n);
        let zero = classic.get() - 1;
        (Round::new(zero / b + 1), zero % b + 1)
    }

    /// The classic round corresponding to `(extended_round, slot)`.
    pub fn compose(extended: Round, slot: u32, n: usize) -> Round {
        debug_assert!(slot >= 1 && slot <= Self::block_len(n));
        Round::new((extended.get() - 1) * Self::block_len(n) + slot)
    }

    /// Access to the wrapped protocol state.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// Mid-block simulation state (the stashed plan and the buffered inbox)
/// is part of the configuration key under the model checker, so the
/// whole wrapper must round-trip through bytes for the spilling memo and
/// the distributed interchange format.
impl<P> SpillCodec for ExtendedOnClassic<P>
where
    P: SyncProtocol + SpillCodec,
    P::Msg: SpillCodec,
    P::Output: SpillCodec,
{
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
        self.n.encode(out);
        self.stash.encode(out);
        self.buf_data.encode(out);
        self.buf_control.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let inner = P::decode(input)?;
        let n = usize::decode(input)?;
        let stash = Option::<SendPlan<P::Msg, P::Output>>::decode(input)?;
        let buf_data = Vec::<(ProcessId, P::Msg)>::decode(input)?;
        let buf_control = Vec::<ProcessId>::decode(input)?;
        (n >= 1).then_some(ExtendedOnClassic {
            inner,
            n,
            stash,
            buf_data,
            buf_control,
        })
    }
}

impl<P: SyncProtocol> SyncProtocol for ExtendedOnClassic<P> {
    type Msg = XMsg<P::Msg>;
    type Output = P::Output;

    fn send(&mut self, classic: Round) -> SendPlan<XMsg<P::Msg>, P::Output> {
        let (ext_round, slot) = Self::decompose(classic, self.n);
        let b = Self::block_len(self.n);
        let mut out: SendPlan<XMsg<P::Msg>, P::Output> = SendPlan::quiet();

        if slot == 1 {
            // Data slot: obtain the extended round's full plan (atomically,
            // before anything of this block is received) and emit its data.
            let plan = self.inner.send(ext_round);
            for (dst, msg) in &plan.data {
                out.data.push((*dst, XMsg::Data(msg.clone())));
            }
            self.stash = Some(plan);
        } else {
            // Control slot j = slot - 1: one ordered control message per
            // classic round restores prefix semantics under subset-crash.
            let j = (slot - 2) as usize;
            if let Some(plan) = &self.stash {
                if let Some(dst) = plan.control.get(j) {
                    out.data.push((*dst, XMsg::Control));
                }
            }
        }

        if slot == b {
            // End of the simulated send phase: the line-6 decision becomes
            // effective only now (and only if this very round's send
            // completes — the classic engine enforces that).
            if let Some(plan) = &mut self.stash {
                out.decide_after_send = plan.decide_after_send.take();
            }
        }
        out
    }

    fn receive(&mut self, classic: Round, inbox: &Inbox<XMsg<P::Msg>>) -> Step<P::Output> {
        let (ext_round, slot) = Self::decompose(classic, self.n);
        for (from, msg) in inbox.data() {
            match msg {
                XMsg::Data(m) => self.buf_data.push((*from, m.clone())),
                XMsg::Control => self.buf_control.push(*from),
            }
        }
        if slot == Self::block_len(self.n) {
            // Block complete: deliver the assembled extended inbox.
            let ext_inbox = Inbox::from_parts(
                std::mem::take(&mut self.buf_data),
                std::mem::take(&mut self.buf_control),
            );
            self.inner.receive(ext_round, &ext_inbox)
        } else {
            Step::Continue
        }
    }
}

/// Translates an **extended-model** crash schedule into the equivalent
/// **classic-model** schedule for the block simulation.
///
/// | extended crash in round `R` | classic crash |
/// |---|---|
/// | `BeforeSend` | block slot 1, `BeforeSend` |
/// | `MidData{S}` | block slot 1, `MidData{S}` |
/// | `MidControl{k}`, `k + 2 ≤ n` | block slot `k + 2`, `BeforeSend` (controls `1..k` already left in earlier slots) |
/// | `MidControl{k}`, `k + 2 > n` | block slot `n`, `MidData{all}` (everything delivered, but the slot-`n` decision is suppressed because the send phase did not complete) |
/// | `EndOfRound` | block slot `n`, `EndOfRound` |
///
/// The `k + 2 > n` case covers a coordinator that delivered its *entire*
/// control list and still crashed before line 6 — in the simulation the
/// crash must land in the last slot without suppressing that slot's
/// outgoing message, which is exactly `MidData{full}` (delivers everything,
/// does not complete the send phase).
pub fn translate_schedule(extended: &CrashSchedule, n: usize) -> CrashSchedule {
    let b = ExtendedOnClassic::<DummyP>::block_len(n);
    let mut classic = CrashSchedule::none(n);
    for pid in (1..=n as u32).map(ProcessId::new) {
        let Some(cp) = extended.crash_point(pid) else {
            continue;
        };
        let base = (cp.round.get() - 1) * b; // classic rounds before the block
        let (round, stage) = match &cp.stage {
            CrashStage::BeforeSend => (Round::new(base + 1), CrashStage::BeforeSend),
            CrashStage::MidData { delivered } => (
                Round::new(base + 1),
                CrashStage::MidData {
                    delivered: delivered.clone(),
                },
            ),
            CrashStage::MidControl { prefix_len } => {
                let k = *prefix_len as u32;
                if k + 2 <= b {
                    (Round::new(base + k + 2), CrashStage::BeforeSend)
                } else {
                    (
                        Round::new(base + b),
                        CrashStage::MidData {
                            delivered: PidSet::full(n),
                        },
                    )
                }
            }
            CrashStage::EndOfRound => (Round::new(base + b), CrashStage::EndOfRound),
        };
        classic.set(pid, Some(CrashPoint::new(round, stage)));
    }
    classic
}

/// Zero-sized protocol used only to name `ExtendedOnClassic::block_len`
/// from the free function above (the method does not depend on `P`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct DummyP;

impl SyncProtocol for DummyP {
    type Msg = u8;
    type Output = u8;
    fn send(&mut self, _round: Round) -> SendPlan<u8, u8> {
        SendPlan::quiet()
    }
    fn receive(&mut self, _round: Round, _inbox: &Inbox<u8>) -> Step<u8> {
        Step::Continue
    }
}

/// Pretty printer for the simulation overhead: classic rounds needed to
/// simulate `ext_rounds` extended rounds for system size `n`.
pub fn simulation_overhead(ext_rounds: u32, n: usize) -> u32 {
    ext_rounds * ExtendedOnClassic::<DummyP>::block_len(n)
}

impl<M: fmt::Display> fmt::Display for XMsg<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XMsg::Data(m) => write!(f, "DATA({m})"),
            XMsg::Control => write!(f, "COMMIT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crw::{crw_processes, run_crw, Crw};
    use twostep_model::{SystemConfig, TimingModel};
    use twostep_sim::{check_uniform_consensus, ModelKind, Simulation, TraceLevel};

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn props(n: usize) -> Vec<u64> {
        (1..=n as u64).map(|i| 100 + i).collect()
    }

    /// Runs CRW both natively (extended engine) and through the classic
    /// simulation, asserting identical decision values and spec compliance.
    fn assert_equivalent(n: usize, t: usize, schedule: &CrashSchedule) {
        let config = SystemConfig::new(n, t).unwrap();

        let native = run_crw(&config, schedule, &props(n), TraceLevel::Off).unwrap();

        let wrapped: Vec<_> = crw_processes(&config, &props(n))
            .into_iter()
            .map(|p| ExtendedOnClassic::new(p, n))
            .collect();
        let classic_schedule = translate_schedule(schedule, n);
        let simulated = Simulation::new(config, ModelKind::Classic, &classic_schedule)
            .max_rounds((n as u32 + 1) * ExtendedOnClassic::<Crw<u64>>::block_len(n))
            .run(wrapped)
            .unwrap();

        for i in 0..n {
            let nv = native.decisions[i].as_ref().map(|d| d.value);
            let sv = simulated.decisions[i].as_ref().map(|d| d.value);
            assert_eq!(nv, sv, "p_{} decision differs (native vs simulated)", i + 1);
            // Round correspondence: the simulated decision lands inside the
            // block of the native round.
            if let (Some(nd), Some(sd)) = (&native.decisions[i], &simulated.decisions[i]) {
                let (ext_round, _slot) = ExtendedOnClassic::<Crw<u64>>::decompose(sd.round, n);
                assert_eq!(ext_round, nd.round, "p_{} round block mismatch", i + 1);
            }
        }
        let spec = check_uniform_consensus(&props(n), &simulated.decisions, schedule, None);
        assert!(spec.ok(), "simulated run violates spec: {spec}");
    }

    #[test]
    fn decompose_compose_round_trip() {
        let n = 5;
        for ext in 1..=4u32 {
            for slot in 1..=5u32 {
                let classic = ExtendedOnClassic::<Crw<u64>>::compose(Round::new(ext), slot, n);
                assert_eq!(
                    ExtendedOnClassic::<Crw<u64>>::decompose(classic, n),
                    (Round::new(ext), slot)
                );
            }
        }
    }

    #[test]
    fn xmsg_bit_sizes() {
        assert_eq!(XMsg::Data(7u64).bit_size(), 64);
        assert_eq!(XMsg::<u64>::Control.bit_size(), 1);
        assert_eq!(XMsg::Data(7u64).to_string(), "DATA(7)");
        assert_eq!(XMsg::<u64>::Control.to_string(), "COMMIT");
    }

    #[test]
    fn equivalence_failure_free() {
        for n in [2usize, 3, 5, 8] {
            let schedule = CrashSchedule::none(n);
            assert_equivalent(n, n - 1, &schedule);
        }
    }

    #[test]
    fn equivalence_before_send_crash() {
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        assert_equivalent(5, 2, &schedule);
    }

    #[test]
    fn equivalence_mid_data_crash() {
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(
                Round::FIRST,
                CrashStage::MidData {
                    delivered: PidSet::from_iter(5, [pid(3), pid(5)]),
                },
            ),
        );
        assert_equivalent(5, 2, &schedule);
    }

    #[test]
    fn equivalence_mid_control_prefixes() {
        // Every possible prefix, including the full list (k = n-1).
        for k in 0..=4usize {
            let schedule = CrashSchedule::none(5).with_crash(
                pid(1),
                CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: k }),
            );
            assert_equivalent(5, 2, &schedule);
        }
    }

    #[test]
    fn equivalence_end_of_round_crash() {
        let schedule = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        assert_equivalent(5, 2, &schedule);
    }

    #[test]
    fn equivalence_two_crashes_across_rounds() {
        let schedule = CrashSchedule::none(6)
            .with_crash(
                pid(1),
                CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 2 }),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(
                    Round::new(2),
                    CrashStage::MidData {
                        delivered: PidSet::from_iter(6, [pid(4)]),
                    },
                ),
            );
        assert_equivalent(6, 3, &schedule);
    }

    #[test]
    fn simulation_pays_the_predicted_overhead() {
        // §2.2: the simulation costs extra rounds — exactly n classic
        // rounds per extended round in this construction, which is why the
        // extended model is *practically* interesting on LANs even though
        // it adds no computability.
        let n = 6;
        assert_eq!(simulation_overhead(3, n), 18);
        // And the timing model prices the native extended round at D + d,
        // far below n·D.
        let tm = TimingModel::new(1000, 50);
        assert!(tm.extended_round() < n as u64 * tm.round);
    }

    #[test]
    fn classic_on_extended_delegates() {
        // A trivially classic protocol (never uses control) runs unchanged.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Echo {
            me: ProcessId,
            got: Option<u64>,
        }
        impl SyncProtocol for Echo {
            type Msg = u64;
            type Output = u64;
            fn send(&mut self, _round: Round) -> SendPlan<u64, u64> {
                if self.me == ProcessId::new(1) {
                    SendPlan::quiet().with_data(ProcessId::new(2), 9)
                } else {
                    SendPlan::quiet()
                }
            }
            fn receive(&mut self, _round: Round, inbox: &Inbox<u64>) -> Step<u64> {
                if let Some(v) = inbox.data_from(ProcessId::new(1)) {
                    Step::Decide(*v)
                } else if self.me == ProcessId::new(1) {
                    Step::Decide(9)
                } else {
                    Step::Continue
                }
            }
        }
        let config = SystemConfig::new(2, 0).unwrap();
        let schedule = CrashSchedule::none(2);
        let report = Simulation::new(config, ModelKind::Extended, &schedule)
            .run(vec![
                ClassicOnExtended(Echo {
                    me: pid(1),
                    got: None,
                }),
                ClassicOnExtended(Echo {
                    me: pid(2),
                    got: None,
                }),
            ])
            .unwrap();
        assert_eq!(report.decisions[0].as_ref().unwrap().value, 9);
        assert_eq!(report.decisions[1].as_ref().unwrap().value, 9);
    }

    #[test]
    fn translate_schedule_maps_every_stage() {
        let n = 4;
        let ext = CrashSchedule::none(n)
            .with_crash(
                pid(1),
                CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
            )
            .with_crash(
                pid(2),
                CrashPoint::new(Round::new(2), CrashStage::MidControl { prefix_len: 1 }),
            )
            .with_crash(
                pid(3),
                CrashPoint::new(Round::new(3), CrashStage::EndOfRound),
            );
        let classic = translate_schedule(&ext, n);
        // p_1: block 1 slot 1.
        assert_eq!(classic.crash_point(pid(1)).unwrap().round, Round::new(1));
        // p_2: extended round 2 ⇒ base 4; k=1 ⇒ slot 3 ⇒ classic round 7.
        assert_eq!(classic.crash_point(pid(2)).unwrap().round, Round::new(7));
        // p_3: extended round 3 EndOfRound ⇒ last slot of block 3 = 12.
        let cp3 = classic.crash_point(pid(3)).unwrap();
        assert_eq!(cp3.round, Round::new(12));
        assert_eq!(cp3.stage, CrashStage::EndOfRound);
        assert_eq!(classic.f(), 3);
    }
}
