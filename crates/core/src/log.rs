//! A replicated command log built from consecutive consensus instances —
//! the application pattern the paper's introduction motivates ("agree on
//! the execution of the same action"), packaged as a reusable layer.
//!
//! Slot `k` of the log is decided by one full run of the Figure 1
//! algorithm.  Crashes accumulate across slots (a crashed process stays
//! crashed), and the layer enforces the system-wide resilience budget: the
//! *total* number of crashes over the log's lifetime must stay within `t`,
//! because each slot's uniform-consensus guarantee assumes at most `t`
//! faulty processes.
//!
//! Guarantees inherited from uniform consensus, per slot:
//!
//! * **log agreement** — all processes that commit slot `k` commit the
//!   same value, *even those that crash afterwards*;
//! * **log validity** — slot `k`'s value was proposed for slot `k`;
//! * **prefix consistency** — a process that crashes during slot `k` has
//!   committed a prefix of the survivors' log;
//! * **latency** — slot `k` costs `f_k + 1` extended rounds, where `f_k`
//!   is the number of crashes that actually hit slot `k` (one round in the
//!   common failure-free case).

use crate::crw::{crw_processes, run_crw};
use std::fmt;
use std::hash::Hash;
use twostep_model::{BitSized, CrashPoint, CrashSchedule, CrashStage, PidSet, Round, SystemConfig};
use twostep_sim::{Decision, SimError, TraceLevel};

/// Errors surfaced by the log layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogError {
    /// Scheduling more lifetime crashes than the resilience bound allows.
    ResilienceExhausted {
        /// Crashes so far plus newly scheduled ones.
        total: usize,
        /// The bound `t`.
        bound: usize,
    },
    /// A slot's schedule failed validation or execution.
    Slot(SimError),
    /// A slot ended with no decision at all (cannot happen within the
    /// resilience budget; reported rather than panicking).
    NoDecision {
        /// The slot index.
        slot: usize,
    },
    /// Wrong number of proposals for a slot.
    WrongProposalCount {
        /// Supplied proposals.
        got: usize,
        /// Expected (`n`).
        want: usize,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::ResilienceExhausted { total, bound } => {
                write!(f, "lifetime crashes {total} would exceed t={bound}")
            }
            LogError::Slot(e) => write!(f, "slot execution failed: {e}"),
            LogError::NoDecision { slot } => write!(f, "slot {slot} ended undecided"),
            LogError::WrongProposalCount { got, want } => {
                write!(f, "got {got} proposals for n={want}")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// Outcome of one committed slot.
#[derive(Clone, Debug)]
pub struct SlotReport<V> {
    /// The committed value.
    pub value: V,
    /// Per-process decision for this slot (`None` = crashed before
    /// deciding, this slot or earlier).
    pub decisions: Vec<Option<Decision<V>>>,
    /// Extended rounds this slot took (`f_k + 1` worst case).
    pub rounds: u32,
    /// Crashes that hit during this slot (not carried-over ones).
    pub fresh_crashes: usize,
}

/// A replicated log: one CRW consensus instance per slot, crash state
/// carried across slots.
///
/// # Examples
///
/// ```
/// use twostep_core::ReplicatedLog;
/// use twostep_model::{CrashSchedule, SystemConfig};
///
/// let config = SystemConfig::new(4, 1).unwrap();
/// let mut log: ReplicatedLog<u64> = ReplicatedLog::new(config);
///
/// log.append(&[11, 12, 13, 14], &CrashSchedule::none(4)).unwrap();
/// log.append(&[21, 22, 23, 24], &CrashSchedule::none(4)).unwrap();
///
/// assert_eq!(log.committed(), &[11, 21]); // p_1 leads both slots
/// assert!(log.check_prefix_consistency());
/// ```
#[derive(Clone, Debug)]
pub struct ReplicatedLog<V> {
    config: SystemConfig,
    crashed: PidSet,
    committed: Vec<V>,
    /// Per-process count of committed slots (prefix lengths).
    committed_upto: Vec<usize>,
}

impl<V> ReplicatedLog<V>
where
    V: Clone + Eq + Hash + fmt::Debug + BitSized + Send + Sync,
{
    /// An empty log over `config`.
    pub fn new(config: SystemConfig) -> Self {
        let n = config.n();
        ReplicatedLog {
            config,
            crashed: PidSet::empty(n),
            committed: Vec::new(),
            committed_upto: vec![0; n],
        }
    }

    /// The committed values so far.
    pub fn committed(&self) -> &[V] {
        &self.committed
    }

    /// Processes crashed so far.
    pub fn crashed(&self) -> &PidSet {
        &self.crashed
    }

    /// How many slots each process has committed — crashed processes stop
    /// at the slot where they died (prefix consistency).
    pub fn committed_upto(&self) -> &[usize] {
        &self.committed_upto
    }

    /// Remaining crash budget.
    pub fn remaining_resilience(&self) -> usize {
        self.config.t() - self.crashed.len()
    }

    /// Runs one consensus instance to commit the next slot.
    ///
    /// `proposals[i]` is `p_{i+1}`'s proposal for this slot (ignored for
    /// already-crashed processes); `slot_schedule` may crash additional
    /// processes *during* this slot, within the remaining lifetime budget.
    pub fn append(
        &mut self,
        proposals: &[V],
        slot_schedule: &CrashSchedule,
    ) -> Result<SlotReport<V>, LogError> {
        let n = self.config.n();
        if proposals.len() != n {
            return Err(LogError::WrongProposalCount {
                got: proposals.len(),
                want: n,
            });
        }

        // Merge carried-over crashes (dead from round 1) with this slot's
        // fresh schedule, and check the lifetime budget.
        let mut merged = slot_schedule.clone();
        let mut fresh = 0usize;
        for pid in self.config.pids() {
            if self.crashed.contains(pid) {
                merged.set(
                    pid,
                    Some(CrashPoint::new(Round::FIRST, CrashStage::BeforeSend)),
                );
            } else if slot_schedule.crash_point(pid).is_some() {
                fresh += 1;
            }
        }
        let total = self.crashed.len() + fresh;
        if total > self.config.t() {
            return Err(LogError::ResilienceExhausted {
                total,
                bound: self.config.t(),
            });
        }

        let report =
            run_crw(&self.config, &merged, proposals, TraceLevel::Off).map_err(LogError::Slot)?;

        let value = report
            .decisions
            .iter()
            .flatten()
            .next()
            .map(|d| d.value.clone())
            .ok_or(LogError::NoDecision {
                slot: self.committed.len(),
            })?;

        // Advance per-process prefixes and the crashed set.
        for pid in self.config.pids() {
            if report.decisions[pid.idx()].is_some() {
                self.committed_upto[pid.idx()] += 1;
            }
            if report.crashed.contains(pid) {
                self.crashed.insert(pid);
            }
        }
        self.committed.push(value.clone());

        Ok(SlotReport {
            value,
            rounds: report
                .decisions
                .iter()
                .flatten()
                .map(|d| d.round.get())
                .max()
                .unwrap_or(0),
            decisions: report.decisions,
            fresh_crashes: fresh,
        })
    }

    /// Checks prefix consistency: every process's committed count is at
    /// most the log length, and correct processes are fully caught up.
    pub fn check_prefix_consistency(&self) -> bool {
        let len = self.committed.len();
        self.config.pids().all(|pid| {
            let upto = self.committed_upto[pid.idx()];
            upto <= len && (self.crashed.contains(pid) || upto == len)
        })
    }
}

/// Convenience: builds the protocol instances for one slot (exposed for
/// tests that want to drive the engine directly).
pub fn slot_processes<V: Clone>(config: &SystemConfig, proposals: &[V]) -> Vec<crate::crw::Crw<V>> {
    crw_processes(config, proposals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twostep_model::ProcessId;

    fn pid(r: u32) -> ProcessId {
        ProcessId::new(r)
    }

    fn cfg(n: usize, t: usize) -> SystemConfig {
        SystemConfig::new(n, t).unwrap()
    }

    #[test]
    fn failure_free_log_commits_first_proposals() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(cfg(4, 2));
        for slot in 0..5u64 {
            let proposals = vec![slot * 10 + 1, slot * 10 + 2, slot * 10 + 3, slot * 10 + 4];
            let report = log.append(&proposals, &CrashSchedule::none(4)).unwrap();
            assert_eq!(report.value, slot * 10 + 1, "p1 imposes its proposal");
            assert_eq!(report.rounds, 1, "one round per slot, failure-free");
        }
        assert_eq!(log.committed(), &[1, 11, 21, 31, 41]);
        assert!(log.check_prefix_consistency());
        assert_eq!(log.remaining_resilience(), 2);
    }

    #[test]
    fn crashes_carry_across_slots() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(cfg(4, 2));
        let proposals = vec![1u64, 2, 3, 4];

        // Slot 0: p1 crashes before sending — p2's value commits.
        let s0 = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let r0 = log.append(&proposals, &s0).unwrap();
        assert_eq!(r0.value, 2);
        assert_eq!(r0.rounds, 2, "f=1 in this slot");
        assert_eq!(r0.fresh_crashes, 1);

        // Slot 1: nobody new crashes, but p1 stays dead — p2 still leads
        // (it coordinates round 2 after dead p1's silent round 1).
        let r1 = log.append(&proposals, &CrashSchedule::none(4)).unwrap();
        assert_eq!(r1.value, 2);
        assert_eq!(r1.fresh_crashes, 0);
        assert!(log.crashed().contains(pid(1)));
        assert!(log.check_prefix_consistency());
        // p1 committed nothing; the others committed both slots.
        assert_eq!(log.committed_upto()[0], 0);
        assert_eq!(log.committed_upto()[1], 2);
    }

    #[test]
    fn decide_then_die_keeps_prefix_consistency() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(cfg(4, 2));
        let proposals = vec![1u64, 2, 3, 4];
        // p1 completes slot 0 (decides!) then dies.
        let s0 = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::EndOfRound),
        );
        let r0 = log.append(&proposals, &s0).unwrap();
        assert_eq!(r0.value, 1, "its value committed before it died");
        let _ = log.append(&proposals, &CrashSchedule::none(4)).unwrap();
        assert!(log.check_prefix_consistency());
        assert_eq!(
            log.committed_upto()[0],
            1,
            "p1 committed exactly the slot it decided before dying"
        );
        assert_eq!(log.committed_upto()[2], 2);
    }

    #[test]
    fn lifetime_resilience_budget_enforced() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(cfg(4, 1));
        let proposals = vec![1u64, 2, 3, 4];
        let s0 = CrashSchedule::none(4).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        log.append(&proposals, &s0).unwrap();
        // A second crash would exceed t = 1, across slots.
        let s1 = CrashSchedule::none(4).with_crash(
            pid(2),
            CrashPoint::new(Round::FIRST, CrashStage::BeforeSend),
        );
        let err = log.append(&proposals, &s1).unwrap_err();
        assert_eq!(err, LogError::ResilienceExhausted { total: 2, bound: 1 });
        // The failed append must not have mutated the log.
        assert_eq!(log.committed().len(), 1);
        assert_eq!(log.remaining_resilience(), 0);
    }

    #[test]
    fn wrong_proposal_count_rejected() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(cfg(3, 1));
        let err = log.append(&[1u64, 2], &CrashSchedule::none(3)).unwrap_err();
        assert_eq!(err, LogError::WrongProposalCount { got: 2, want: 3 });
    }

    #[test]
    fn mid_slot_partial_commit_is_still_uniform_per_slot() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new(cfg(5, 2));
        let proposals = vec![1u64, 2, 3, 4, 5];
        // p1 commits only to the top process, then dies: p5 decides in
        // round 1, the rest in round 2 — all on value 1.
        let s0 = CrashSchedule::none(5).with_crash(
            pid(1),
            CrashPoint::new(Round::FIRST, CrashStage::MidControl { prefix_len: 1 }),
        );
        let r0 = log.append(&proposals, &s0).unwrap();
        assert_eq!(r0.value, 1, "locked value");
        assert!(r0
            .decisions
            .iter()
            .skip(1)
            .all(|d| d.as_ref().unwrap().value == 1));
        assert!(log.check_prefix_consistency());
    }
}
