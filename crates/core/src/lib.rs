//! # twostep-core — the paper's contribution
//!
//! The uniform consensus algorithm of *"The Power and Limit of Adding
//! Synchronization Messages for Synchronous Agreement"* (Cao, Raynal, Wang,
//! Wu — ICPP 2006), plus the Section 2.2 model transformations.
//!
//! * [`Crw`] — the Figure 1 rotating-coordinator algorithm: in round `r`,
//!   coordinator `p_r` sends `DATA(est)` to every higher-ranked process,
//!   then `COMMIT` to the same processes highest-rank-first (see the
//!   reconstruction note in [`crw`]), then decides.  Uniform consensus in
//!   at most `f+1` extended rounds (Theorem 1), one round when `p_1` is
//!   not crashed — the optimum for the extended model (Theorems 4–5).
//! * [`CommitOrder`] — the paper's commit order plus the broken ascending
//!   variant kept for ablation experiments.
//! * [`ExtendedOnClassic`] / [`ClassicOnExtended`] /
//!   [`translate_schedule`] — the two simulation directions proving the
//!   extended and classic models computationally equivalent (Section 2.2);
//!   the costly direction expands each extended round into `n` classic
//!   rounds to preserve the ordered-prefix commit semantics.
//! * [`run_crw`] — one-call driver used by examples, tests and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crw;
pub mod lemmas;
pub mod log;
pub mod xform;

pub use crw::{coordinator_of, crw_processes, run_crw, CommitOrder, Crw};
pub use lemmas::{check_value_locking, LemmaViolation, LockReport};
pub use log::{LogError, ReplicatedLog, SlotReport};
pub use xform::{
    simulation_overhead, translate_schedule, ClassicOnExtended, ExtendedOnClassic, XMsg,
};
