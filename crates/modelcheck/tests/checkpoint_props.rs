//! Property test for checkpoint composition: splitting one exploration
//! into an *arbitrary* sequence of step-budget partitions — suspend to
//! a checkpoint after each, resume into the next — must compose to the
//! bit-identical final report and bivalency census of one uninterrupted
//! walk.  The partition vector is generated (lengths, budget sizes, and
//! zero-step sessions all arbitrary); once the plan runs out the last
//! session runs unbounded, so every case terminates by the min-progress
//! guarantee.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use twostep_core::crw_processes;
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_with, CheckpointConfig, ExploreConfig, ExploreError, ExploreOptions, ExploreReport,
    Symmetry, WalkBudget,
};

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new() -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "twostep-ckpt-props-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Runs the (3, 1) CRW workload in sessions budgeted by `plan` (then
/// unbounded once the plan is spent), checkpointing between sessions,
/// and returns the composed final report plus the session count.
fn run_partitioned_walk(
    system: SystemConfig,
    config: ExploreConfig,
    proposals: &[WideValue],
    plan: &[u64],
) -> Result<(ExploreReport<WideValue>, usize), TestCaseError> {
    let dir = TempDir::new();
    let checkpoint = Some(CheckpointConfig::at(&dir.path));
    let mut sessions = 0usize;
    loop {
        let budget = match plan.get(sessions) {
            Some(&max_steps) => WalkBudget {
                max_steps: Some(max_steps),
                ..WalkBudget::unlimited()
            },
            None => WalkBudget::unlimited(),
        };
        sessions += 1;
        prop_assert!(sessions <= plan.len() + 1, "plan overrun");
        match explore_with(
            system,
            config,
            ExploreOptions::serial()
                .with_budget(budget)
                .with_checkpoint(checkpoint.clone()),
            crw_processes(&system, proposals),
            proposals.to_vec(),
        ) {
            Ok(report) => return Ok((report, sessions)),
            Err(ExploreError::Interrupted { checkpoint, .. }) => {
                prop_assert_eq!(
                    checkpoint.as_deref(),
                    Some(dir.path.as_path()),
                    "every interruption leaves the artifact"
                );
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error {other:?}")));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_step_partitions_compose_to_the_uninterrupted_report(
        plan in prop::collection::vec(0u64..60, 0..=12),
        odd_one_out in 0usize..3,
    ) {
        let system = SystemConfig::new(3, 1).unwrap();
        let config = ExploreConfig {
            symmetry: Symmetry::Off,
            ..ExploreConfig::for_crw(&system)
        };
        let proposals: Vec<WideValue> = (0..3)
            .map(|i| WideValue::new(1, u64::from(i == odd_one_out)))
            .collect();
        let uninterrupted = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();

        let (composed, sessions) =
            run_partitioned_walk(system, config, &proposals, &plan)?;
        prop_assert_eq!(&composed.root, &uninterrupted.root, "root summary");
        prop_assert_eq!(
            composed.distinct_states,
            uninterrupted.distinct_states,
            "distinct states"
        );
        prop_assert_eq!(
            &composed.bivalency_by_round,
            &uninterrupted.bivalency_by_round,
            "bivalency census"
        );
        // The plan really partitioned the walk whenever it starts with a
        // budget too small to finish in one go.
        if plan.first().is_some_and(|&steps| steps == 0) {
            prop_assert!(sessions > 1, "a zero-step opener must interrupt");
        }
    }
}
