//! Differential property test for the parallel exploration engine: for
//! every `(n, t)` with `n ≤ 5` and both model kinds, exploring with
//! `threads ∈ {2, 4, 8}` must produce a report identical to the serial
//! walk (`threads = 1`) in every aggregate — execution count, worst
//! decision round per `f`, valency (including its order), violation flag,
//! `distinct_states`, and the per-round bivalency census.
//!
//! The extended model runs the paper's algorithm (CRW); the classic model
//! runs FloodSet (CRW's control messages are rejected under classic
//! semantics).  Systems whose exhaustive space is too big for a routine
//! test run are capped by the `FULL_DEPTH_N` constant: beyond it only the
//! thin-budget `(n, 1)` and `(n, 2)` corners run, which still exercises
//! wide fan-out (many processes) without minutes of wall time.

use twostep_baselines::floodset_processes;
use twostep_core::crw_processes;
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore, explore_with, ExploreConfig, ExploreOptions, ExploreReport, MemoConfig, RoundBound,
    SpecMode, Symmetry, WalkBudget,
};
use twostep_sim::ModelKind;

/// Largest `n` explored at every `t`; larger `n` only with `t ≤ 2`.
const FULL_DEPTH_N: usize = 4;

fn systems() -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for n in 2..=5usize {
        for t in 1..n {
            if n <= FULL_DEPTH_N || t <= 2 {
                out.push((n, t));
            }
        }
    }
    out
}

fn assert_identical<O: std::fmt::Debug + Eq>(
    serial: &ExploreReport<O>,
    parallel: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(
        serial.root.terminals, parallel.root.terminals,
        "{label}: execution count"
    );
    assert_eq!(
        serial.root.worst_round_by_f, parallel.root.worst_round_by_f,
        "{label}: worst round per f"
    );
    assert_eq!(
        serial.root.decided, parallel.root.decided,
        "{label}: valency (and its merge order)"
    );
    assert_eq!(
        serial.root.violating, parallel.root.violating,
        "{label}: violation flag"
    );
    assert_eq!(
        serial.distinct_states, parallel.distinct_states,
        "{label}: distinct states"
    );
    assert_eq!(
        serial.bivalency_by_round, parallel.bivalency_by_round,
        "{label}: bivalency census"
    );
}

#[test]
fn extended_model_crw_parallel_equals_serial() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
        let config = ExploreConfig::for_crw(&system);
        let serial = explore(
            system,
            config,
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = explore_with(
                system,
                config,
                ExploreOptions {
                    threads,
                    shards: 16,
                    memo: MemoConfig::all_ram(),
                    donate_depth: None,
                    cache: None,
                    budget: WalkBudget::unlimited(),
                    checkpoint: None,
                },
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &serial,
                &parallel,
                &format!("extended crw n={n} t={t} threads={threads}"),
            );
        }
    }
}

#[test]
fn classic_model_floodset_parallel_equals_serial() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        let config = ExploreConfig {
            model: ModelKind::Classic,
            max_rounds: t as u32 + 2,
            max_states: 10_000_000,
            round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
            spec: SpecMode::Uniform,
            max_crashes_per_round: None,
            symmetry: Symmetry::Off,
        };
        let serial = explore(
            system,
            config,
            floodset_processes(n, t, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = explore_with(
                system,
                config,
                ExploreOptions {
                    threads,
                    shards: 16,
                    memo: MemoConfig::all_ram(),
                    donate_depth: None,
                    cache: None,
                    budget: WalkBudget::unlimited(),
                    checkpoint: None,
                },
                floodset_processes(n, t, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &serial,
                &parallel,
                &format!("classic floodset n={n} t={t} threads={threads}"),
            );
        }
    }
}

#[test]
fn theorem3_restricted_adversary_parallel_equals_serial() {
    // The one-crash-per-round adversary (Theorem 3) takes a different
    // branch through action enumeration; check it differentially too.
    let system = SystemConfig::new(4, 3).unwrap();
    let proposals: Vec<WideValue> = (0..4).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
    let config = ExploreConfig::theorem3(&system);
    let serial = explore(
        system,
        config,
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let parallel = explore_with(
        system,
        config,
        ExploreOptions::with_threads(4),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&serial, &parallel, "theorem3 n=4 t=3");
}
