//! Differential suite for the persistent result cache: a cold run that
//! commits a cache followed by a warm run that consumes it must produce
//! **bit-identical** exploration results — root summary, distinct-state
//! count, bivalency census, witness — with `cache_hits ==
//! distinct_states` on the warm pass, across both model kinds and every
//! engine shape {serial, parallel-4, spill, partitioned-2}.  A cache
//! primed by one engine must warm any other (the segments are
//! engine-agnostic memo images).  A *changed* fingerprint — different
//! proposals, different exploration options — must be loudly ignored:
//! the run matches its own cold report and, in ReadWrite mode, replaces
//! the stale cache.  A *damaged* cache segment must never panic, crash,
//! or corrupt a result: the run falls back to (partially) cold
//! exploration and still matches the baseline.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use twostep_baselines::floodset_processes;
use twostep_core::{crw_processes, CommitOrder, Crw};
use twostep_model::{ProcessId, SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_partitioned_in_process, explore_with, validate_segment_file, CacheConfig, CacheMode,
    DistOptions, ExploreConfig, ExploreOptions, ExploreReport, FaultPlan, MemoConfig, RoundBound,
    SpecMode, SpillError, StealConfig, SuperviseConfig, Symmetry, WalkBudget,
};
use twostep_sim::ModelKind;

/// A unique temp directory removed on drop (cache roots for the suite).
struct TempDir {
    path: PathBuf,
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    fn new(label: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "twostep-cache-test-{label}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn assert_identical<O: std::fmt::Debug + Eq>(
    a: &ExploreReport<O>,
    b: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(a.root, b.root, "{label}: root summary");
    assert_eq!(a.distinct_states, b.distinct_states, "{label}: states");
    assert_eq!(
        a.bivalency_by_round, b.bivalency_by_round,
        "{label}: bivalency census"
    );
}

/// The engine matrix of the acceptance criteria.  `partitioned-2` is
/// handled separately (it goes through the distributed entry point).
fn engines() -> Vec<(&'static str, ExploreOptions)> {
    vec![
        ("serial", ExploreOptions::serial()),
        (
            "parallel-4",
            ExploreOptions {
                threads: 4,
                shards: 8,
                memo: MemoConfig::all_ram(),
                donate_depth: None,
                cache: None,
                budget: WalkBudget::unlimited(),
                checkpoint: None,
            },
        ),
        (
            "spill",
            ExploreOptions::serial().with_memo(MemoConfig::spill(16)),
        ),
    ]
}

fn crw_proposals(n: usize) -> Vec<WideValue> {
    (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect()
}

/// One workload: how to build the initial processes and its config.
struct Workload<P, O> {
    system: SystemConfig,
    config: ExploreConfig,
    initial: Box<dyn Fn() -> Vec<P>>,
    proposals: Vec<O>,
}

fn crw_workload(n: usize, t: usize) -> Workload<Crw<WideValue>, WideValue> {
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let initial = {
        let proposals = proposals.clone();
        move || crw_processes(&system, &proposals)
    };
    Workload {
        system,
        config: ExploreConfig::for_crw(&system),
        initial: Box::new(initial),
        proposals,
    }
}

fn floodset_workload(n: usize, t: usize) -> Workload<twostep_baselines::FloodSet<u64>, u64> {
    let system = SystemConfig::new(n, t).unwrap();
    let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
    let config = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: t as u32 + 2,
        max_states: 10_000_000,
        round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
        spec: SpecMode::Uniform,
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
    };
    let initial = {
        let proposals = proposals.clone();
        move || floodset_processes(n, t, &proposals)
    };
    Workload {
        system,
        config,
        initial: Box::new(initial),
        proposals,
    }
}

/// Cold-commit then warm-consume, per engine, per model kind.
fn cold_then_warm_matrix<P, O>(workload: &Workload<P, O>, label: &str)
where
    P: twostep_modelcheck::CheckableProtocol,
    O: std::hash::Hash + std::fmt::Debug + Clone + Eq + twostep_modelcheck::SpillCodec,
    P: twostep_sim::SyncProtocol<Output = O>,
{
    let baseline = explore_with(
        workload.system,
        workload.config,
        ExploreOptions::serial(),
        (workload.initial)(),
        workload.proposals.clone(),
    )
    .unwrap();

    for (engine_label, engine) in engines() {
        let dir = TempDir::new(engine_label);
        let cached = |mode: CacheMode| {
            engine.clone().with_cache(Some(CacheConfig {
                dir: dir.path().to_path_buf(),
                mode,
            }))
        };

        let cold = explore_with(
            workload.system,
            workload.config,
            cached(CacheMode::ReadWrite),
            (workload.initial)(),
            workload.proposals.clone(),
        )
        .unwrap();
        assert_identical(&baseline, &cold, &format!("{label} {engine_label} cold"));
        assert_eq!(
            cold.cache_hits, 0,
            "{label} {engine_label}: cold has no hits"
        );
        assert_eq!(
            cold.fresh_states, cold.distinct_states,
            "{label} {engine_label}: cold is all fresh"
        );

        let warm = explore_with(
            workload.system,
            workload.config,
            cached(CacheMode::ReadWrite),
            (workload.initial)(),
            workload.proposals.clone(),
        )
        .unwrap();
        assert_identical(&baseline, &warm, &format!("{label} {engine_label} warm"));
        assert_eq!(
            warm.cache_hits, warm.distinct_states,
            "{label} {engine_label}: warm is answered entirely by the cache"
        );
        assert_eq!(
            warm.fresh_states, 0,
            "{label} {engine_label}: warm adds nothing"
        );

        // A fully-warm ReadWrite run must not have appended a segment:
        // the cache still holds exactly one (the cold run's image).
        let segments: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .collect();
        assert_eq!(
            segments.len(),
            1,
            "{label} {engine_label}: fully-warm commit writes no delta"
        );

        // Read-only warm consumption works the same way.
        let read_only = explore_with(
            workload.system,
            workload.config,
            cached(CacheMode::Read),
            (workload.initial)(),
            workload.proposals.clone(),
        )
        .unwrap();
        assert_identical(&baseline, &read_only, &format!("{label} {engine_label} ro"));
        assert_eq!(read_only.cache_hits, read_only.distinct_states);
    }
}

#[test]
fn extended_crw_cold_then_warm_is_bit_identical() {
    cold_then_warm_matrix(&crw_workload(4, 2), "extended crw (4,2)");
    cold_then_warm_matrix(&crw_workload(3, 2), "extended crw (3,2)");
}

#[test]
fn classic_floodset_cold_then_warm_is_bit_identical() {
    cold_then_warm_matrix(&floodset_workload(4, 2), "classic floodset (4,2)");
    cold_then_warm_matrix(&floodset_workload(3, 1), "classic floodset (3,1)");
}

/// The partitioned-2 engine: cold commit, then a warm run whose workers
/// are seeded from the cache and export (empty) deltas.
#[test]
fn partitioned_cold_then_warm_is_bit_identical() {
    let workload = crw_workload(4, 2);
    let baseline = explore_with(
        workload.system,
        workload.config,
        ExploreOptions::serial(),
        (workload.initial)(),
        workload.proposals.clone(),
    )
    .unwrap();
    let dir = TempDir::new("partitioned");
    let options = |mode: CacheMode| DistOptions {
        partitions: 2,
        depth: 1,
        attempts: 3,
        scratch_dir: None,
        replay: ExploreOptions::serial(),
        cache: Some(CacheConfig {
            dir: dir.path().to_path_buf(),
            mode,
        }),
        steal: StealConfig::default(),
        faults: FaultPlan::none(),
        supervise: SuperviseConfig::default(),
    };

    let cold = explore_partitioned_in_process(
        workload.system,
        workload.config,
        &options(CacheMode::ReadWrite),
        ExploreOptions::serial(),
        (workload.initial)(),
        workload.proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &cold, "partitioned cold");
    assert_eq!(cold.cache_hits, 0);

    let warm = explore_partitioned_in_process(
        workload.system,
        workload.config,
        &options(CacheMode::ReadWrite),
        ExploreOptions::serial(),
        (workload.initial)(),
        workload.proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &warm, "partitioned warm");
    assert_eq!(
        warm.cache_hits, warm.distinct_states,
        "warm partitioned run is answered entirely by the cache"
    );
    assert_eq!(warm.fresh_states, 0);
}

/// A cache primed by one engine warms every other: the segments are
/// engine-agnostic memo images (serial primes; parallel, spill, and
/// partitioned consume).
#[test]
fn cache_is_engine_agnostic() {
    let workload = crw_workload(4, 3);
    let dir = TempDir::new("xengine");
    let cache = |mode: CacheMode| {
        Some(CacheConfig {
            dir: dir.path().to_path_buf(),
            mode,
        })
    };
    let baseline = explore_with(
        workload.system,
        workload.config,
        ExploreOptions::serial().with_cache(cache(CacheMode::ReadWrite)),
        (workload.initial)(),
        workload.proposals.clone(),
    )
    .unwrap();
    for (engine_label, engine) in engines() {
        let warm = explore_with(
            workload.system,
            workload.config,
            engine.with_cache(cache(CacheMode::Read)),
            (workload.initial)(),
            workload.proposals.clone(),
        )
        .unwrap();
        assert_identical(&baseline, &warm, &format!("cross-engine {engine_label}"));
        assert_eq!(warm.cache_hits, warm.distinct_states, "{engine_label}");
    }
    let warm_dist = explore_partitioned_in_process(
        workload.system,
        workload.config,
        &DistOptions {
            partitions: 2,
            depth: 1,
            attempts: 3,
            scratch_dir: None,
            replay: ExploreOptions::serial(),
            cache: cache(CacheMode::Read),
            steal: StealConfig::default(),
            faults: FaultPlan::none(),
            supervise: SuperviseConfig::default(),
        },
        ExploreOptions::serial(),
        (workload.initial)(),
        workload.proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &warm_dist, "cross-engine partitioned");
    assert_eq!(warm_dist.cache_hits, warm_dist.distinct_states);
}

/// Witness reconstruction runs over a fully-seeded memo on a warm run:
/// the violating LowestFirst ablation must yield the same witness warm
/// as cold.
#[test]
fn warm_witness_matches_cold_witness() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let procs = || -> Vec<Crw<WideValue>> {
        proposals
            .iter()
            .enumerate()
            .map(|(i, v)| Crw::with_order(ProcessId::from_idx(i), n, *v, CommitOrder::LowestFirst))
            .collect()
    };
    let config = ExploreConfig::for_crw(&system);
    let dir = TempDir::new("witness");
    let cached = || ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(dir.path())));
    let cold = explore_with(system, config, cached(), procs(), proposals.clone()).unwrap();
    assert!(cold.root.violating, "ablation must violate the bound");
    let warm = explore_with(system, config, cached(), procs(), proposals.clone()).unwrap();
    assert_eq!(warm.cache_hits, warm.distinct_states);
    let wc = cold.witness.expect("cold witness");
    let ww = warm.witness.expect("warm witness");
    assert_eq!(format!("{:?}", wc.schedule), format!("{:?}", ww.schedule));
    assert_eq!(wc.decisions, ww.decisions);
    assert_eq!(wc.violations.len(), ww.violations.len());
}

/// A changed fingerprint (different proposals here) ignores the cache —
/// the run matches its own cold report, reports zero hits, and in
/// ReadWrite mode replaces the stale cache with its own image.
#[test]
fn stale_fingerprint_is_ignored_and_replaced() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let config = ExploreConfig::for_crw(&system);
    let dir = TempDir::new("stale");
    let cached = || Some(CacheConfig::read_write(dir.path()));

    // Prime under proposals A (alternating bits).
    let proposals_a = crw_proposals(n);
    explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(cached()),
        crw_processes(&system, &proposals_a),
        proposals_a.clone(),
    )
    .unwrap();
    // An unrelated segment-format file in the same directory (say, an
    // archived worker export) must survive every commit and GC below.
    let bystander = dir.path().join("archived-worker0.seg");
    std::fs::write(&bystander, b"not the cache's file").unwrap();

    // Run under proposals B (all the same bit): different fingerprint.
    let proposals_b: Vec<WideValue> = (0..n).map(|_| WideValue::new(1, 1)).collect();
    let baseline_b = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals_b),
        proposals_b.clone(),
    )
    .unwrap();
    let mismatched = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(cached()),
        crw_processes(&system, &proposals_b),
        proposals_b.clone(),
    )
    .unwrap();
    assert_identical(&baseline_b, &mismatched, "stale cache ignored");
    assert_eq!(
        mismatched.cache_hits, 0,
        "a stale cache contributes nothing"
    );

    // ...and the ReadWrite run replaced the stale cache: a further run
    // under B is now fully warm.
    let warm_b = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(cached()),
        crw_processes(&system, &proposals_b),
        proposals_b.clone(),
    )
    .unwrap();
    assert_identical(&baseline_b, &warm_b, "replaced cache warms B");
    assert_eq!(warm_b.cache_hits, warm_b.distinct_states);

    // The changed *options* fingerprint is also honored: same proposals,
    // different round cap → no hits, correct self-consistent result.
    let tighter = ExploreConfig {
        max_rounds: config.max_rounds + 1,
        ..config
    };
    let other_config = explore_with(
        system,
        tighter,
        ExploreOptions::serial().with_cache(cached()),
        crw_processes(&system, &proposals_b),
        proposals_b.clone(),
    )
    .unwrap();
    assert_eq!(
        other_config.cache_hits, 0,
        "config changes invalidate the cache"
    );
    assert_eq!(
        std::fs::read(&bystander).unwrap(),
        b"not the cache's file",
        "cache GC must never delete files it did not write"
    );
}

/// The symmetry mode is part of the run fingerprint: a cache committed
/// under `Symmetry::Full` must be **loudly replaced** — never silently
/// reused — by a `Symmetry::Off` run, and vice versa.  The two modes
/// memoize different key spaces (orbit representatives vs raw
/// configurations), so reusing either image for the other would corrupt
/// `distinct_states` and the census even where the verdicts agree.
#[test]
fn symmetry_mode_changes_the_cache_fingerprint() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = |symmetry: Symmetry| ExploreConfig {
        symmetry,
        ..ExploreConfig::for_crw(&system)
    };
    let dir = TempDir::new("symmetry-mode");
    let cached = || Some(CacheConfig::read_write(dir.path()));
    let run = |symmetry: Symmetry, cache: Option<CacheConfig>| {
        explore_with(
            system,
            config(symmetry),
            ExploreOptions::serial().with_cache(cache),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap()
    };

    // Prime the cache under Full.
    let full_baseline = run(Symmetry::Full, None);
    let full_cold = run(Symmetry::Full, cached());
    assert_identical(&full_baseline, &full_cold, "full cold");
    assert_eq!(full_cold.cache_hits, 0);

    // An Off run sees a foreign fingerprint: zero hits, its own correct
    // cold report, and (ReadWrite) it replaces the Full image.
    let off_baseline = run(Symmetry::Off, None);
    assert!(
        full_baseline.distinct_states < off_baseline.distinct_states,
        "the two modes must actually key different state spaces here"
    );
    let off_over_full = run(Symmetry::Off, cached());
    assert_identical(&off_baseline, &off_over_full, "off over full cache");
    assert_eq!(
        off_over_full.cache_hits, 0,
        "a Full-mode cache must never warm an Off-mode run"
    );
    let off_warm = run(Symmetry::Off, cached());
    assert_identical(&off_baseline, &off_warm, "off warm");
    assert_eq!(
        off_warm.cache_hits, off_warm.distinct_states,
        "the replacement image warms its own mode"
    );

    // And the other direction: the Off image is foreign to Full.
    let full_over_off = run(Symmetry::Full, cached());
    assert_identical(&full_baseline, &full_over_off, "full over off cache");
    assert_eq!(
        full_over_off.cache_hits, 0,
        "an Off-mode cache must never warm a Full-mode run"
    );
    let full_warm = run(Symmetry::Full, cached());
    assert_identical(&full_baseline, &full_warm, "full warm");
    assert_eq!(full_warm.cache_hits, full_warm.distinct_states);
}

/// Strength, not mode, is what the fingerprint records: two *non-Off*
/// modes that resolve to different canonicalization strengths
/// (`Full` → the settled tier, `PartialValue` → the rank-inert tier
/// with the value quotient for CRW's binary proposals) memoize
/// different orbit spaces, so a cache written at one strength must be
/// loudly replaced — zero hits, correct cold report — when read at the
/// other, in both directions.
#[test]
fn symmetry_strength_changes_the_cache_fingerprint() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = |symmetry: Symmetry| ExploreConfig {
        symmetry,
        ..ExploreConfig::for_crw(&system)
    };
    let dir = TempDir::new("symmetry-strength");
    let cached = || Some(CacheConfig::read_write(dir.path()));
    let run = |symmetry: Symmetry, cache: Option<CacheConfig>| {
        explore_with(
            system,
            config(symmetry),
            ExploreOptions::serial().with_cache(cache),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap()
    };

    let full_baseline = run(Symmetry::Full, None);
    let pv_baseline = run(Symmetry::PartialValue, None);
    assert!(
        pv_baseline.distinct_states < full_baseline.distinct_states,
        "the deeper strength must actually key a smaller orbit space here \
         ({} vs {})",
        pv_baseline.distinct_states,
        full_baseline.distinct_states
    );

    // Prime under the deeper strength; a Full run must not warm from it.
    let pv_cold = run(Symmetry::PartialValue, cached());
    assert_identical(&pv_baseline, &pv_cold, "partial+value cold");
    assert_eq!(pv_cold.cache_hits, 0);
    let full_over_pv = run(Symmetry::Full, cached());
    assert_identical(
        &full_baseline,
        &full_over_pv,
        "full over partial+value cache",
    );
    assert_eq!(
        full_over_pv.cache_hits, 0,
        "a partial+value cache must never warm a Full run"
    );

    // The Full run replaced the image; partial+value is foreign again,
    // replaces it back, and then warms itself completely.
    let pv_over_full = run(Symmetry::PartialValue, cached());
    assert_identical(&pv_baseline, &pv_over_full, "partial+value over full cache");
    assert_eq!(
        pv_over_full.cache_hits, 0,
        "a Full cache must never warm a partial+value run"
    );
    let pv_warm = run(Symmetry::PartialValue, cached());
    assert_identical(&pv_baseline, &pv_warm, "partial+value warm");
    assert_eq!(pv_warm.cache_hits, pv_warm.distinct_states);
}

/// A damaged cache segment is detected (CRC / decompression / framing),
/// classified as Corrupt by the standalone validator, and the
/// exploration **discards the whole seed** and runs cold — a partial
/// image must never shrink the report's aggregates (a seeded parent
/// would hide its missing descendants from `distinct_states`).  A
/// ReadWrite run then heals the cache with its own full image.
#[test]
fn corrupted_cache_segment_degrades_to_cold_run() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let config = ExploreConfig::for_crw(&system);
    let proposals = crw_proposals(n);
    let baseline = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();

    // Flip a byte at several positions through the segment body; each
    // damaged copy must classify as Corrupt and still explore correctly.
    let pristine_dir = TempDir::new("corrupt-src");
    explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(pristine_dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let segment = std::fs::read_dir(pristine_dir.path())
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("committed cache holds one segment");
    let pristine = std::fs::read(&segment).unwrap();
    assert!(
        validate_segment_file(&segment).is_ok(),
        "pristine validates"
    );

    for position in [24usize, 40, pristine.len() / 2, pristine.len() - 2] {
        let mut damaged = pristine.clone();
        damaged[position] ^= 0x10;
        std::fs::write(&segment, &damaged).unwrap();
        let err =
            validate_segment_file(&segment).expect_err("a flipped body byte must not validate");
        assert!(
            matches!(err, SpillError::Corrupt { .. }),
            "flip at {position}: expected Corrupt, got {err:?}"
        );

        let report = explore_with(
            system,
            config,
            ExploreOptions::serial().with_cache(Some(CacheConfig::read(pristine_dir.path()))),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        assert_identical(
            &baseline,
            &report,
            &format!("corrupt cache, flip at {position}"),
        );
        assert_eq!(
            report.cache_hits, 0,
            "flip at {position}: a broken cache is discarded whole, not partially used"
        );
    }

    // A ReadWrite run on the (still damaged) cache explores cold and
    // replaces the broken image; the next run is fully warm again.
    let healing = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(pristine_dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &healing, "healing run");
    assert_eq!(healing.cache_hits, 0);
    let healed = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(pristine_dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &healed, "healed cache warms again");
    assert_eq!(healed.cache_hits, healed.distinct_states);
}

/// Satellite regression for the v4 format bump: a cache whose segment is
/// a **v3-era file** (the pre-byte-key record layout) must be classified
/// foreign and discarded whole — never silently reused — and a ReadWrite
/// run must loudly replace it with a fresh v4 image.
#[test]
fn v3_segment_cache_is_foreign_and_replaced() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let config = ExploreConfig::for_crw(&system);
    let proposals = crw_proposals(n);
    let baseline = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();

    // Prime a valid cache, then rewrite its segment as a sealed, empty
    // v3 file: 8-byte magic, version 3, zero records, compression flag.
    // The manifest still matches this run's fingerprint, so the segment
    // itself is what the seed import must reject.
    let dir = TempDir::new("v3-cache");
    explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let segment = std::fs::read_dir(dir.path())
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("committed cache holds one segment");
    let mut v3_header = Vec::new();
    v3_header.extend_from_slice(b"TWOSPILL");
    v3_header.extend_from_slice(&3u32.to_le_bytes());
    v3_header.extend_from_slice(&0u64.to_le_bytes());
    v3_header.push(1); // FLAG_COMPRESSED
    v3_header.extend_from_slice(&[0u8; 3]);
    assert_eq!(v3_header.len(), 24, "segment header is 24 bytes");
    std::fs::write(&segment, &v3_header).unwrap();
    let err = validate_segment_file(&segment).expect_err("v3 must not validate under v4");
    assert!(
        matches!(err, SpillError::Foreign { .. }),
        "expected Foreign, got {err:?}"
    );

    // Read-only: the v3 cache is ignored, the run is cold and correct.
    let cold = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read(dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &cold, "v3 cache ignored");
    assert_eq!(
        cold.cache_hits, 0,
        "no record of a v3 segment is ever reused"
    );

    // ReadWrite: the broken cache is replaced; the next run warms fully
    // from the fresh v4 image.
    let replacing = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &replacing, "replacing run");
    assert_eq!(replacing.cache_hits, 0);
    let warmed = explore_with(
        system,
        config,
        ExploreOptions::serial().with_cache(Some(CacheConfig::read_write(dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&baseline, &warmed, "replaced cache warms again");
    assert_eq!(warmed.cache_hits, warmed.distinct_states);
}
