//! Exhaustive verification of the classic-model baselines over the
//! complete crash-adversary space for small systems.  The early-stopping
//! algorithm in particular has a subtle early-decision rule; checking all
//! executions is the only test that really settles it.

use twostep_baselines::{earlystop_processes, floodset_processes};
use twostep_model::SystemConfig;
use twostep_modelcheck::{
    explore_with, ExploreConfig, ExploreOptions, RoundBound, SpecMode, Symmetry,
};

/// All exhaustive suites run through the parallel default engine; the
/// differential suite (`parallel_differential.rs`) pins its equivalence
/// to the serial walk.
fn explore<P>(
    system: twostep_model::SystemConfig,
    config: ExploreConfig,
    initial: Vec<P>,
    proposals: Vec<P::Output>,
) -> Result<twostep_modelcheck::ExploreReport<P::Output>, twostep_modelcheck::ExploreError>
where
    P: twostep_modelcheck::CheckableProtocol,
    P::Output: std::hash::Hash + twostep_modelcheck::SpillCodec,
{
    explore_with(
        system,
        config,
        ExploreOptions::default(),
        initial,
        proposals,
    )
}

use twostep_sim::ModelKind;

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 10 + i).collect()
}

#[test]
fn floodset_exhaustive_n3_t2() {
    let system = SystemConfig::new(3, 2).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: 4,
        max_states: 5_000_000,
        round_bound: Some(RoundBound::Fixed(3)), // t + 1
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(
        system,
        options,
        floodset_processes(3, 2, &proposals(3)),
        proposals(3),
    )
    .unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
    assert!(report.root.terminals > 100);
}

#[test]
fn floodset_exhaustive_n4_t1() {
    let system = SystemConfig::new(4, 1).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: 3,
        max_states: 5_000_000,
        round_bound: Some(RoundBound::Fixed(2)),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(
        system,
        options,
        floodset_processes(4, 1, &proposals(4)),
        proposals(4),
    )
    .unwrap();
    assert!(!report.root.violating);
}

#[test]
fn earlystop_exhaustive_n3_t2() {
    let system = SystemConfig::new(3, 2).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: 4,
        max_states: 10_000_000,
        round_bound: Some(RoundBound::ClassicEarly { t: 2 }),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(
        system,
        options,
        earlystop_processes(3, 2, &proposals(3)),
        proposals(3),
    )
    .unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
    // Early decision really happens: with f = 0 the worst round is 2
    // (min(f+2, t+1) = 2), not the flooding t+1 = 3.
    assert_eq!(report.root.worst_round_by_f[0], Some(2));
}

#[test]
fn earlystop_exhaustive_n4_t2() {
    let system = SystemConfig::new(4, 2).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: 4,
        max_states: 20_000_000,
        round_bound: Some(RoundBound::ClassicEarly { t: 2 }),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(
        system,
        options,
        earlystop_processes(4, 2, &proposals(4)),
        proposals(4),
    )
    .unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
    // The min(f+2, t+1) shape over the full space: f=0 ⇒ 2, f=1 ⇒ 3,
    // f=2 ⇒ 3 (capped by t+1).
    assert_eq!(report.root.worst_round_by_f[0], Some(2));
    assert_eq!(report.root.worst_round_by_f[1], Some(3));
    assert_eq!(report.root.worst_round_by_f[2], Some(3));
}
