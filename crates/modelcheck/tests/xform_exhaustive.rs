//! Exhaustive verification of the §2.2 block simulation under a *stronger*
//! adversary than schedule translation produces: the explorer crashes the
//! wrapped protocol at **any classic sub-round with any stage**, i.e. at a
//! finer granularity than the extended model's own crash points.  Every
//! such classic behaviour corresponds to *some* extended-model behaviour
//! (a single-message "subset" is a prefix), so uniform consensus must
//! still hold, with decisions within `(f+1)·n` classic rounds.

use twostep_core::{crw_processes, Crw, ExtendedOnClassic};
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_with, ExploreConfig, ExploreOptions, RoundBound, SpecMode, Symmetry,
};

/// All exhaustive suites run through the parallel default engine; the
/// differential suite (`parallel_differential.rs`) pins its equivalence
/// to the serial walk.
fn explore<P>(
    system: twostep_model::SystemConfig,
    config: ExploreConfig,
    initial: Vec<P>,
    proposals: Vec<P::Output>,
) -> Result<twostep_modelcheck::ExploreReport<P::Output>, twostep_modelcheck::ExploreError>
where
    P: twostep_modelcheck::CheckableProtocol,
    P::Output: std::hash::Hash + twostep_modelcheck::SpillCodec,
{
    explore_with(
        system,
        config,
        ExploreOptions::default(),
        initial,
        proposals,
    )
}

use twostep_sim::ModelKind;

#[test]
fn wrapped_crw_survives_arbitrary_classic_crashes_n3() {
    let n = 3;
    let system = SystemConfig::new(n, 2).unwrap();
    let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
    let wrapped: Vec<ExtendedOnClassic<Crw<WideValue>>> = crw_processes(&system, &proposals)
        .into_iter()
        .map(|p| ExtendedOnClassic::new(p, n))
        .collect();

    let options = ExploreConfig {
        model: ModelKind::Classic,
        // (t+1)+1 extended rounds' worth of blocks as a safety cap.
        max_rounds: (n as u32 + 2) * n as u32,
        max_states: 20_000_000,
        round_bound: Some(RoundBound::Scaled {
            base: n as u32,
            per_f: n as u32,
        }),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(system, options, wrapped, proposals).unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
    assert!(report.root.terminals > 50, "space is non-trivial");
    // The simulation preserves bivalence of the initial configuration.
    assert!(report.root.is_bivalent());
}

#[test]
fn scaled_bound_evaluates() {
    let b = RoundBound::Scaled { base: 3, per_f: 3 };
    assert_eq!(b.bound(0), 3);
    assert_eq!(b.bound(2), 9);
}
