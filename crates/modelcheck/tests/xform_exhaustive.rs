//! Exhaustive verification of the §2.2 block simulation under a *stronger*
//! adversary than schedule translation produces: the explorer crashes the
//! wrapped protocol at **any classic sub-round with any stage**, i.e. at a
//! finer granularity than the extended model's own crash points.  Every
//! such classic behaviour corresponds to *some* extended-model behaviour
//! (a single-message "subset" is a prefix), so uniform consensus must
//! still hold, with decisions within `(f+1)·n` classic rounds.

use twostep_core::{crw_processes, Crw, ExtendedOnClassic};
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{explore, ExploreConfig, RoundBound, SpecMode};
use twostep_sim::ModelKind;

#[test]
fn wrapped_crw_survives_arbitrary_classic_crashes_n3() {
    let n = 3;
    let system = SystemConfig::new(n, 2).unwrap();
    let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
    let wrapped: Vec<ExtendedOnClassic<Crw<WideValue>>> = crw_processes(&system, &proposals)
        .into_iter()
        .map(|p| ExtendedOnClassic::new(p, n))
        .collect();

    let options = ExploreConfig {
        model: ModelKind::Classic,
        // (t+1)+1 extended rounds' worth of blocks as a safety cap.
        max_rounds: (n as u32 + 2) * n as u32,
        max_states: 20_000_000,
        round_bound: Some(RoundBound::Scaled {
            base: n as u32,
            per_f: n as u32,
        }),
        max_crashes_per_round: None,
        spec: SpecMode::Uniform,
    };
    let report = explore(system, options, wrapped, proposals).unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
    assert!(report.root.terminals > 50, "space is non-trivial");
    // The simulation preserves bivalence of the initial configuration.
    assert!(report.root.is_bivalent());
}

#[test]
fn scaled_bound_evaluates() {
    let b = RoundBound::Scaled { base: 3, per_f: 3 };
    assert_eq!(b.bound(0), 3);
    assert_eq!(b.bound(2), 9);
}
