//! Statistical model checking at sizes exhaustive enumeration cannot
//! reach: spec confidence sweeps, tight reproduction of the `f+1` worst
//! case via the coordinator-hunting adversary, and violation *discovery*
//! on the broken commit-order ablation.

use twostep_core::{crw_processes, CommitOrder, Crw};
use twostep_model::{ProcessId, SystemConfig, WideValue};
use twostep_modelcheck::{sample, RoundBound, SampleConfig, SampleStrategy};
use twostep_sim::ModelKind;

fn binary_proposals(n: usize) -> Vec<WideValue> {
    (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect()
}

#[test]
fn uniform_random_sampling_finds_no_violation_n8() {
    let n = 8;
    let system = SystemConfig::max_resilience(n).unwrap();
    let proposals = binary_proposals(n);
    let config = SampleConfig {
        model: ModelKind::Extended,
        max_rounds: n as u32 + 1,
        runs: 3000,
        seed: 0x5A_5A,
        strategy: SampleStrategy::UniformRandom { crash_prob: 0.15 },
        round_bound: Some(RoundBound::FPlus(1)),
    };
    let report = sample(
        system,
        config,
        || crw_processes(&system, &proposals),
        &proposals,
    )
    .unwrap();
    assert!(
        report.ok(),
        "violation: {:?}",
        report.violation.map(|v| (v.seed, v.schedule, v.violations))
    );
    assert_eq!(report.runs, 3000);
    // Coverage: several distinct f values must have been exercised.
    let covered = report.runs_by_f.iter().filter(|c| **c > 0).count();
    assert!(
        covered >= 3,
        "crash-count coverage too thin: {:?}",
        report.runs_by_f
    );
}

#[test]
fn coordinator_hunter_realizes_f_plus_1_at_n8() {
    // Exhaustive checking tops out around n = 4; the biased sampler
    // reproduces the tight worst case well beyond that.
    let n = 8;
    let system = SystemConfig::max_resilience(n).unwrap();
    let proposals = binary_proposals(n);
    let config = SampleConfig {
        model: ModelKind::Extended,
        max_rounds: n as u32 + 1,
        runs: 4000,
        seed: 0xC0FFEE,
        strategy: SampleStrategy::CoordinatorHunter { hunt_prob: 0.8 },
        round_bound: Some(RoundBound::FPlus(1)),
    };
    let report = sample(
        system,
        config,
        || crw_processes(&system, &proposals),
        &proposals,
    )
    .unwrap();
    assert!(report.ok());
    // The hunter must achieve worst = f+1 for a solid range of f.
    for f in 0..=4usize {
        assert_eq!(
            report.worst_round_by_f[f],
            Some(f as u32 + 1),
            "hunter failed to realize the bound at f={f}: {:?}",
            report.worst_round_by_f
        );
    }
}

#[test]
fn sampler_discovers_the_ablation_violation_beyond_exhaustive_reach() {
    // n = 6 with ascending commits: too big to enumerate, but the hunter
    // trips the Theorem 1 violation quickly (it decides a low-ranked
    // process early and orphans its coordination round).
    let n = 6;
    let system = SystemConfig::new(n, 3).unwrap();
    let proposals = binary_proposals(n);
    let config = SampleConfig {
        model: ModelKind::Extended,
        max_rounds: n as u32 + 2,
        runs: 4000,
        seed: 7,
        strategy: SampleStrategy::CoordinatorHunter { hunt_prob: 0.8 },
        round_bound: Some(RoundBound::FPlus(1)),
    };
    let report = sample(
        system,
        config,
        || {
            proposals
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    Crw::with_order(ProcessId::from_idx(i), n, *v, CommitOrder::LowestFirst)
                })
                .collect::<Vec<_>>()
        },
        &proposals,
    )
    .unwrap();
    let v = report
        .violation
        .expect("the broken order must be caught statistically too");
    assert!(!v.violations.is_empty());
    assert!(v.schedule.f() >= 1, "a crash is needed to trigger it");
}

#[test]
fn sampling_is_seed_deterministic() {
    let n = 5;
    let system = SystemConfig::new(n, 2).unwrap();
    let proposals = binary_proposals(n);
    let config = SampleConfig {
        model: ModelKind::Extended,
        max_rounds: n as u32 + 1,
        runs: 200,
        seed: 99,
        strategy: SampleStrategy::UniformRandom { crash_prob: 0.2 },
        round_bound: None,
    };
    let a = sample(
        system,
        config,
        || crw_processes(&system, &proposals),
        &proposals,
    )
    .unwrap();
    let b = sample(
        system,
        config,
        || crw_processes(&system, &proposals),
        &proposals,
    )
    .unwrap();
    assert_eq!(a.worst_round_by_f, b.worst_round_by_f);
    assert_eq!(a.runs_by_f, b.runs_by_f);
}
