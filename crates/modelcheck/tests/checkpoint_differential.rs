//! Differential suite for the frame-stepped core's checkpoint/resume
//! path: an exploration interrupted by *any* budget — step counts of
//! {0, 1, prime strides}, an already-expired deadline, the `max_states`
//! valve — and resumed from its checkpoint must converge to a final
//! report **bit-identical** to the uninterrupted walk, across engines
//! {serial, parallel-4, spill, partitioned-2} and both symmetry modes.
//! Every intermediate error must be `ExploreError::Interrupted` carrying
//! the checkpoint directory, each session must make progress (the resume
//! chain is bounded by the distinct-state count), and the successful
//! final session must consume the checkpoint artifact.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use twostep_core::crw_processes;
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_partitioned_in_process, explore_with, BudgetKind, CheckpointConfig, DistOptions,
    ExploreConfig, ExploreError, ExploreOptions, ExploreReport, FaultPlan, MemoConfig, StealConfig,
    SuperviseConfig, Symmetry, WalkBudget,
};

/// A unique temp directory removed on drop (checkpoint roots).
struct TempDir {
    path: PathBuf,
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    fn new(label: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "twostep-ckpt-test-{label}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn assert_identical(a: &ExploreReport<WideValue>, b: &ExploreReport<WideValue>, label: &str) {
    assert_eq!(a.root, b.root, "{label}: root summary");
    assert_eq!(a.distinct_states, b.distinct_states, "{label}: states");
    assert_eq!(
        a.bivalency_by_round, b.bivalency_by_round,
        "{label}: bivalency census"
    );
}

fn crw_config(system: &SystemConfig, symmetry: Symmetry) -> ExploreConfig {
    ExploreConfig {
        symmetry,
        ..ExploreConfig::for_crw(system)
    }
}

fn crw_proposals(n: usize) -> Vec<WideValue> {
    (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect()
}

/// The single-process engine matrix (partitioned-2 goes through the
/// distributed entry point).
fn engines() -> Vec<(&'static str, ExploreOptions)> {
    vec![
        ("serial", ExploreOptions::serial()),
        (
            "parallel-4",
            ExploreOptions {
                threads: 4,
                shards: 8,
                memo: MemoConfig::all_ram(),
                donate_depth: None,
                cache: None,
                budget: WalkBudget::unlimited(),
                checkpoint: None,
            },
        ),
        (
            "spill",
            ExploreOptions::serial().with_memo(MemoConfig::spill(16)),
        ),
    ]
}

/// Runs one budgeted exploration to completion by resuming from its
/// checkpoint after every interruption.  Asserts every intermediate
/// error is a checkpoint-carrying `Interrupted` and that the chain
/// terminates (min-progress: each session memoizes at least one fresh
/// configuration, so `distinct_states + 2` sessions is a safe ceiling).
fn run_resumable(
    system: SystemConfig,
    config: ExploreConfig,
    engine: &ExploreOptions,
    budget: WalkBudget,
    proposals: &[WideValue],
    dir: &Path,
    label: &str,
) -> (ExploreReport<WideValue>, usize) {
    let mut sessions = 0usize;
    loop {
        sessions += 1;
        assert!(
            sessions <= 100_000,
            "{label}: resume chain does not converge"
        );
        let options = engine
            .clone()
            .with_budget(budget.clone())
            .with_checkpoint(Some(CheckpointConfig::at(dir)));
        match explore_with(
            system,
            config,
            options,
            crw_processes(&system, proposals),
            proposals.to_vec(),
        ) {
            Ok(report) => return (report, sessions),
            Err(ExploreError::Interrupted {
                checkpoint, states, ..
            }) => {
                assert_eq!(
                    checkpoint.as_deref(),
                    Some(dir),
                    "{label}: interruption must leave a resumable artifact"
                );
                assert!(states > 0, "{label}: min-progress before suspending");
            }
            Err(other) => panic!("{label}: unexpected error {other:?}"),
        }
    }
}

/// Step-budget matrix: pause every step (`max_steps: 0` and `1`) and at
/// prime strides, across every single-process engine and both symmetry
/// modes; the resumed report is bit-identical to the uninterrupted one
/// and the artifact is consumed on success.
#[test]
fn interrupted_and_resumed_matches_uninterrupted() {
    let system = SystemConfig::new(3, 2).unwrap();
    let proposals = crw_proposals(3);
    for symmetry in [Symmetry::Off, Symmetry::Full] {
        let config = crw_config(&system, symmetry);
        let baseline = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for (engine_label, engine) in engines() {
            for max_steps in [0u64, 1, 7, 13] {
                let label = format!("crw(3,2) {symmetry:?} {engine_label} max_steps={max_steps}");
                let dir = TempDir::new(engine_label);
                let (resumed, sessions) = run_resumable(
                    system,
                    config,
                    &engine,
                    WalkBudget {
                        max_steps: Some(max_steps),
                        ..WalkBudget::unlimited()
                    },
                    &proposals,
                    dir.path(),
                    &label,
                );
                assert_identical(&baseline, &resumed, &label);
                assert!(
                    sessions > 1,
                    "{label}: a {max_steps}-step budget must actually interrupt"
                );
                assert!(
                    !dir.path().join("manifest.twockpt").exists(),
                    "{label}: success consumes the checkpoint"
                );
            }
        }
    }
}

/// An already-expired wall-clock deadline still converges: every
/// session suspends as soon as it has made minimum progress, and the
/// chain composes to the uninterrupted report.
#[test]
fn expired_deadline_resume_chain_converges() {
    let system = SystemConfig::new(3, 1).unwrap();
    let proposals = crw_proposals(3);
    let config = crw_config(&system, Symmetry::Off);
    let baseline = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let dir = TempDir::new("deadline");
    let (resumed, sessions) = run_resumable(
        system,
        config,
        &ExploreOptions::serial(),
        WalkBudget {
            deadline: Some(Duration::ZERO),
            ..WalkBudget::unlimited()
        },
        &proposals,
        dir.path(),
        "deadline-zero",
    );
    assert_identical(&baseline, &resumed, "deadline-zero");
    assert!(sessions > 1, "an expired deadline must interrupt");
}

/// Satellite fix: a `StateLimit` abort with a checkpoint configured now
/// leaves a resumable artifact (`Interrupted` with `BudgetKind::States`)
/// instead of only an error; resuming with a raised valve completes to
/// the uninterrupted report (`max_states` is deliberately outside the
/// run fingerprint).
#[test]
fn state_limit_leaves_a_resumable_checkpoint() {
    let system = SystemConfig::new(3, 2).unwrap();
    let proposals = crw_proposals(3);
    let roomy = crw_config(&system, Symmetry::Off);
    let baseline = explore_with(
        system,
        roomy,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let starved = ExploreConfig {
        max_states: baseline.distinct_states / 2,
        ..roomy
    };

    let dir = TempDir::new("statelimit");
    let err = explore_with(
        system,
        starved,
        ExploreOptions::serial().with_checkpoint(Some(CheckpointConfig::at(dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap_err();
    match err {
        ExploreError::Interrupted {
            reason,
            checkpoint,
            states,
        } => {
            assert_eq!(reason, BudgetKind::States);
            assert_eq!(checkpoint.as_deref(), Some(dir.path()));
            assert!(states > 0);
        }
        other => panic!("expected a rerouted StateLimit, got {other:?}"),
    }

    // Without a checkpoint the historical error is unchanged.
    let bare = explore_with(
        system,
        starved,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap_err();
    assert!(
        matches!(bare, ExploreError::StateLimit { .. }),
        "no checkpoint keeps the historical StateLimit error, got {bare:?}"
    );

    // Resume with the valve raised: completes, identical, consumed.
    let resumed = explore_with(
        system,
        roomy,
        ExploreOptions::serial().with_checkpoint(Some(CheckpointConfig::at(dir.path()))),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    // Checkpointed records deliberately import as *fresh* (so a final
    // cache commit exports them), so `fresh_states` can't witness the
    // fast-forward; report identity and artifact consumption do.
    assert_identical(&baseline, &resumed, "statelimit resume");
    assert!(!dir.path().join("manifest.twockpt").exists());
}

/// The partitioned-2 engine: budgets govern the whole pipeline.  An
/// expired deadline suspends at a phase boundary (checkpointing the
/// merged worker results) or inside the replay, and resuming converges
/// to the uninterrupted distributed report; a step budget bounds the
/// replay walk the same way.
#[test]
fn partitioned_interrupted_and_resumed_matches_uninterrupted() {
    let system = SystemConfig::new(3, 2).unwrap();
    let proposals = crw_proposals(3);
    for symmetry in [Symmetry::Off, Symmetry::Full] {
        let config = crw_config(&system, symmetry);
        // Depth 2 keeps a real interior region (root + depth-1 configs)
        // for the replay to compute fresh: at depth 1 the only interior
        // insert is the root pop, which *is* walk completion, so a step
        // budget could never observe an interruptible replay.
        let dist = |replay: ExploreOptions| DistOptions {
            partitions: 2,
            depth: 2,
            attempts: 3,
            scratch_dir: None,
            replay,
            cache: None,
            steal: StealConfig::default(),
            faults: FaultPlan::none(),
            supervise: SuperviseConfig::default(),
        };
        let baseline = explore_partitioned_in_process(
            system,
            config,
            &dist(ExploreOptions::serial()),
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();

        let budgets = [
            (
                "deadline-zero",
                WalkBudget {
                    deadline: Some(Duration::ZERO),
                    ..WalkBudget::unlimited()
                },
            ),
            (
                "max-steps-1",
                WalkBudget {
                    max_steps: Some(1),
                    ..WalkBudget::unlimited()
                },
            ),
            (
                "max-steps-7",
                WalkBudget {
                    max_steps: Some(7),
                    ..WalkBudget::unlimited()
                },
            ),
        ];
        for (budget_label, budget) in budgets {
            let label = format!("partitioned-2 {symmetry:?} {budget_label}");
            let dir = TempDir::new("partitioned");
            let mut sessions = 0usize;
            let resumed = loop {
                sessions += 1;
                assert!(sessions <= 100_000, "{label}: does not converge");
                let replay = ExploreOptions::serial()
                    .with_budget(budget.clone())
                    .with_checkpoint(Some(CheckpointConfig::at(dir.path())));
                match explore_partitioned_in_process(
                    system,
                    config,
                    &dist(replay),
                    ExploreOptions::serial(),
                    crw_processes(&system, &proposals),
                    proposals.clone(),
                ) {
                    Ok(report) => break report,
                    Err(ExploreError::Interrupted { checkpoint, .. }) => {
                        assert_eq!(
                            checkpoint.as_deref(),
                            Some(dir.path()),
                            "{label}: interruption must leave an artifact"
                        );
                    }
                    Err(other) => panic!("{label}: unexpected error {other:?}"),
                }
            };
            assert_identical(&baseline, &resumed, &label);
            assert!(sessions > 1, "{label}: the budget must actually interrupt");
            assert!(
                !dir.path().join("manifest.twockpt").exists(),
                "{label}: success consumes the checkpoint"
            );
        }
    }
}

/// A stale checkpoint from a *different* run (other proposals → other
/// fingerprint) is loudly ignored, never imported: the run completes
/// cold and matches its own baseline.
#[test]
fn foreign_checkpoint_is_ignored_not_imported() {
    let system = SystemConfig::new(3, 1).unwrap();
    let config = crw_config(&system, Symmetry::Off);
    let dir = TempDir::new("foreign");

    // Suspend run A (proposals 0,1,0) to populate the checkpoint.
    let a_proposals = crw_proposals(3);
    let err = explore_with(
        system,
        config,
        ExploreOptions::serial()
            .with_budget(WalkBudget {
                max_steps: Some(1),
                ..WalkBudget::unlimited()
            })
            .with_checkpoint(Some(CheckpointConfig::at(dir.path()))),
        crw_processes(&system, &a_proposals),
        a_proposals.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::Interrupted { .. }));

    // Run B (all-same proposals) sees A's checkpoint but must not use it.
    let b_proposals = vec![WideValue::new(1, 1); 3];
    let baseline = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &b_proposals),
        b_proposals.clone(),
    )
    .unwrap();
    let with_stale = explore_with(
        system,
        config,
        ExploreOptions::serial().with_checkpoint(Some(CheckpointConfig::at(dir.path()))),
        crw_processes(&system, &b_proposals),
        b_proposals.clone(),
    )
    .unwrap();
    // A foreign import would inflate `distinct_states` with run A's
    // configurations; bit-identity to the cold baseline rules it out.
    assert_identical(&baseline, &with_stale, "foreign checkpoint");
}
