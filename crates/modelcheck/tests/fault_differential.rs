//! Differential suite for the fault-injection harness: a distributed
//! exploration running under any **survivable** fault plan — crashes,
//! hangs, corrupted/truncated exports, slow IO, lying progress pulses —
//! must produce a report **bit-identical** to the serial walk.  Retry
//! exhaustion with graceful degradation enabled must *also* converge to
//! the identical report (the coordinator walks the orphaned slices
//! locally), and a torn coordinator write at *any* ordinal must never
//! leave a cache directory a later run would wrongly trust.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use twostep_baselines::floodset_processes;
use twostep_core::crw_processes;
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_elastic_timed, explore_partitioned_in_process, explore_partitioned_timed, explore_with,
    run_worker, run_worker_elastic, CacheConfig, CacheMode, DistOptions, ElasticTask,
    ExploreConfig, ExploreOptions, ExploreReport, FaultPlan, RoundBound, SpecMode, StealConfig,
    SuperviseConfig, Symmetry, WorkerPulse, WorkerTask,
};
use twostep_sim::ModelKind;

/// A unique temp directory removed on drop (cache roots for the suite).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "twostep-fault-{label}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }

    fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn assert_identical<O: std::fmt::Debug + Eq>(
    serial: &ExploreReport<O>,
    dist: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(serial.root, dist.root, "{label}: root summary");
    assert_eq!(
        serial.distinct_states, dist.distinct_states,
        "{label}: distinct states"
    );
    assert_eq!(
        serial.bivalency_by_round, dist.bivalency_by_round,
        "{label}: bivalency census"
    );
}

/// Fast supervision for tests: millisecond backoff, no timeouts unless a
/// test sets them.
fn fast_supervise() -> SuperviseConfig {
    SuperviseConfig {
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        attempt_timeout: None,
        watchdog: None,
        degrade: true,
    }
}

fn dist_options(partitions: usize, plan: FaultPlan) -> DistOptions {
    DistOptions {
        partitions,
        depth: 1,
        attempts: 3,
        scratch_dir: None,
        cache: None,
        replay: ExploreOptions::serial(),
        steal: StealConfig::default(),
        faults: plan,
        supervise: fast_supervise(),
    }
}

fn crw_proposals(n: usize) -> Vec<WideValue> {
    (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect()
}

fn crw_serial(system: SystemConfig, config: ExploreConfig) -> ExploreReport<WideValue> {
    let proposals = crw_proposals(system.n());
    explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals,
    )
    .unwrap()
}

/// Every single-shot worker fault the plan grammar can inject, applied
/// to the first attempt of partition 0: the retry (or, for the two
/// non-fatal faults, the attempt itself) must still converge to the
/// serial report — across both partition counts and both model kinds.
#[test]
fn survivable_fault_matrix_is_bit_identical() {
    let fault_tokens = [
        "crash@seed",
        "crash@frontier",
        "crash@walk",
        "crash@export",
        "corrupt-export",
        "truncate-export",
        "slow-io(1)",
        "lying-progress",
    ];

    // Extended-model CRW.
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    for partitions in [2usize, 4] {
        for token in fault_tokens {
            // A primary first-attempt fault plus a second-attempt fault
            // on another partition: retries of different partitions must
            // not interfere.
            let plan = FaultPlan::parse(&format!("p0a0={token};p1a1=crash@walk")).unwrap();
            assert!(plan.survivable(partitions as u64, 3), "{token}");
            let dist = explore_partitioned_in_process(
                system,
                config,
                &dist_options(partitions, plan),
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &serial,
                &dist,
                &format!("crw partitions={partitions} fault={token}"),
            );
        }
    }

    // Classic-model floodset.
    let (n, t) = (3usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
    let config = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: t as u32 + 2,
        max_states: 10_000_000,
        round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
        spec: SpecMode::Uniform,
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
    };
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        floodset_processes(n, t, &proposals),
        proposals.clone(),
    )
    .unwrap();
    for token in fault_tokens {
        let plan = FaultPlan::parse(&format!("p1a0={token}")).unwrap();
        let dist = explore_partitioned_in_process(
            system,
            config,
            &dist_options(2, plan),
            ExploreOptions::serial(),
            floodset_processes(n, t, &proposals),
            proposals.clone(),
        )
        .unwrap();
        assert_identical(&serial, &dist, &format!("floodset fault={token}"));
    }
}

/// An injected hang is detected by the per-attempt timeout — the
/// supervisor cancels the attempt, the worker's hang loop observes the
/// token and aborts, and the retry converges — long before the worker's
/// own 60s in-process hang cap would fire.
#[test]
fn hung_worker_is_cancelled_by_attempt_timeout_and_retried() {
    let (n, t) = (3usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    let mut options = dist_options(2, FaultPlan::parse("p0a0=hang@walk").unwrap());
    options.supervise.attempt_timeout = Some(Duration::from_millis(150));
    let started = Instant::now();
    let launch = |task: &WorkerTask| {
        run_worker(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
            task,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    };
    let (dist, timings) = explore_partitioned_timed(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the watchdog, not the 60s hang cap, must end the hang (took {:?})",
        started.elapsed()
    );
    assert_eq!(
        timings.degraded_partitions, 0,
        "retry succeeded, no degradation"
    );
    assert_identical(&serial, &dist, "hang detected and retried");
}

/// A partition whose worker crashes on *every* attempt is walked locally
/// by the coordinator — the run degrades instead of failing, the
/// degradation is reported in the timings, and the report is still
/// bit-identical to the serial walk.
#[test]
fn retry_exhaustion_degrades_to_local_walk_with_identical_report() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    let plan = FaultPlan::parse("p0a0=crash@walk;p0a1=crash@export;p0a2=crash@seed").unwrap();
    assert!(
        !plan.survivable(2, 3),
        "every attempt of partition 0 is fatal"
    );
    let launch = |task: &WorkerTask| {
        run_worker(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
            task,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    };
    let (dist, timings) = explore_partitioned_timed(
        system,
        config,
        &dist_options(2, plan),
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert_eq!(
        timings.degraded_partitions, 1,
        "exactly partition 0 degraded"
    );
    assert!(timings.degraded_seconds >= 0.0);
    assert_identical(&serial, &dist, "retry exhaustion degraded");
}

/// Every partition exhausting every attempt degrades the *whole* run to
/// a coordinator-local walk — the distributed engine's worst case is the
/// serial engine, not a failure.
#[test]
fn total_worker_loss_degrades_whole_run_to_local_walk() {
    let (n, t) = (3usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    let launch = |_task: &WorkerTask| Err("cluster is on fire".to_string());
    let (dist, timings) = explore_partitioned_timed(
        system,
        config,
        &dist_options(2, FaultPlan::none()),
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert_eq!(timings.degraded_partitions, 2, "both partitions degraded");
    assert_identical(&serial, &dist, "total worker loss");
}

/// The elastic scheduler quarantines a worker slot that exhausts its
/// launch budget, walks its slice locally, and keeps going with reduced
/// capacity — stats reporting both, report identical.
#[test]
fn elastic_exhausted_worker_is_quarantined_and_walked_locally() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    let plan = FaultPlan::parse("p0a0=crash@walk;p0a1=crash@walk;p0a2=crash@walk").unwrap();
    let mut options = dist_options(2, plan);
    options.steal = StealConfig {
        enabled: true,
        min_frontier: 1,
        poll_interval: Duration::ZERO,
        yield_every: 16,
    };
    let launch = |task: &ElasticTask, pulse: &(dyn Fn(WorkerPulse) + Sync)| {
        run_worker_elastic(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
            task,
            pulse,
        )
        .map_err(|e| e.to_string())
    };
    let (dist, _timings, stats) = explore_elastic_timed(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert!(
        stats.degraded >= 1,
        "worker 0's slice must be walked locally (stats: {stats:?})"
    );
    assert!(
        stats.quarantined >= 1,
        "worker 0's slot must be quarantined (stats: {stats:?})"
    );
    assert_identical(&serial, &dist, "elastic quarantine");
}

/// An elastic worker that hangs (and therefore stops pulsing) is caught
/// by the pulse-liveness watchdog, cancelled, and relaunched — the run
/// converges to the identical report well inside the in-process hang
/// cap.
#[test]
fn elastic_hung_worker_is_caught_by_pulse_watchdog() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    let mut options = dist_options(2, FaultPlan::parse("p0a0=hang@walk").unwrap());
    options.supervise.watchdog = Some(Duration::from_millis(200));
    options.steal = StealConfig {
        enabled: true,
        min_frontier: 1,
        poll_interval: Duration::ZERO,
        yield_every: 16,
    };
    let started = Instant::now();
    let launch = |task: &ElasticTask, pulse: &(dyn Fn(WorkerPulse) + Sync)| {
        run_worker_elastic(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
            task,
            pulse,
        )
        .map_err(|e| e.to_string())
    };
    let (dist, _timings, stats) = explore_elastic_timed(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the pulse watchdog must end the hang (took {:?})",
        started.elapsed()
    );
    assert_eq!(stats.degraded, 0, "the relaunch succeeded");
    assert_identical(&serial, &dist, "elastic hang caught by watchdog");
}

/// A torn coordinator write at **any** ordinal — wherever it lands in
/// the run's write sequence — must leave the cache directory in a state
/// a later clean run either rebuilds or validly reuses, never wrongly
/// trusts: the write-then-rename manifest protocol makes every commit
/// all-or-nothing, and segment validation catches the rest.
#[test]
fn any_single_torn_write_leaves_cache_trustworthy() {
    let (n, t) = (3usize, 1usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = crw_serial(system, config);
    for io_fault in ["torn-write", "fail-write", "enospc"] {
        // Dense over the run's first writes (frontier, seed, exports),
        // geometric tail so late writes (cache segment, manifest) land
        // in range too.
        for nth in [1u64, 2, 3, 4, 5, 6, 7, 8, 16, 64, 256] {
            let dir = TempDir::new(&format!("{io_fault}-{nth}"));
            let cache = Some(CacheConfig {
                dir: dir.path().to_path_buf(),
                mode: CacheMode::ReadWrite,
            });
            let plan = FaultPlan::parse(&format!("io={io_fault}({nth})")).unwrap();
            let mut options = dist_options(2, plan);
            options.cache = cache.clone();
            let label = format!("io={io_fault}({nth})");
            // The faulted run either succeeds (the torn write hit a
            // warn-and-continue path, or never fired) or fails loudly —
            // a success must already be bit-identical.
            match explore_partitioned_in_process(
                system,
                config,
                &options,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            ) {
                Ok(report) => assert_identical(&serial, &report, &label),
                Err(e) => {
                    let msg = e.to_string();
                    assert!(!msg.is_empty(), "{label}: error must carry detail");
                }
            }
            // Whatever the torn write left behind, a clean run over the
            // same cache directory must converge to the serial report —
            // rebuilding (loud-replace) rather than trusting damage.
            let mut clean = dist_options(2, FaultPlan::none());
            clean.cache = cache;
            let recovered = explore_partitioned_in_process(
                system,
                config,
                &clean,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap_or_else(|e| panic!("{label}: clean rerun failed: {e}"));
            assert_identical(&serial, &recovered, &format!("{label} clean rerun"));
        }
    }
}

// ---------------------------------------------------------------------
// Property: any survivable plan is invisible in the report
// ---------------------------------------------------------------------

mod fault_props {
    use super::*;
    use proptest::prelude::*;
    use twostep_modelcheck::{WorkerFault, WorkerPhase};

    fn arb_fault() -> impl Strategy<Value = WorkerFault> {
        let phases = [
            WorkerPhase::Seed,
            WorkerPhase::Frontier,
            WorkerPhase::Walk,
            WorkerPhase::Export,
        ];
        prop_oneof![
            (0usize..4).prop_map(move |i| WorkerFault::CrashAt(phases[i])),
            (0usize..4).prop_map(move |i| WorkerFault::HangAt(phases[i])),
            Just(WorkerFault::CorruptExport),
            Just(WorkerFault::TruncateExport),
            (1u64..3).prop_map(WorkerFault::SlowIo),
            Just(WorkerFault::LyingProgress),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any survivable assignment of faults to `(partition, attempt)`
        /// slots — made survivable by construction: final attempts keep
        /// only non-fatal faults — yields the bit-identical report.
        #[test]
        fn any_survivable_plan_is_report_invisible(
            entries in prop::collection::vec(
                ((0u64..4, 0usize..3), arb_fault()),
                0..6,
            ),
            partitions in 2usize..=4,
        ) {
            // Hangs are survivable but slow (they wait out a timeout);
            // give every hang a fast attempt timeout and drop fatal
            // faults from final attempts so the plan is survivable with
            // the suite's 3-attempt budget.  Duplicate slots keep the
            // last fault (the plan grammar itself rejects duplicates).
            let assignment: std::collections::BTreeMap<(u64, usize), WorkerFault> =
                entries.into_iter().collect();
            let tokens: Vec<String> = assignment
                .iter()
                .filter(|((_, attempt), fault)| !(*attempt == 2 && fault.is_fatal()))
                .map(|((p, a), fault)| format!("p{p}a{a}={}", fault.token()))
                .collect();
            let plan = FaultPlan::parse(&tokens.join(";")).unwrap();
            prop_assert!(plan.survivable(partitions as u64, 3));

            let (n, t) = (3usize, 2usize);
            let system = SystemConfig::new(n, t).unwrap();
            let proposals = crw_proposals(n);
            let config = ExploreConfig::for_crw(&system);
            let serial = crw_serial(system, config);
            let mut options = dist_options(partitions, plan);
            options.supervise.attempt_timeout = Some(Duration::from_millis(200));
            let dist = explore_partitioned_in_process(
                system,
                config,
                &options,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &serial,
                &dist,
                &format!("plan [{}] partitions={partitions}", tokens.join(";")),
            );
        }
    }
}
