//! Differential property test for symmetry reduction: for every `(n, t)`
//! with `n ≤ 5`, both model kinds, and every engine (serial, parallel,
//! spilling, partitioned), exploring with `Symmetry::Full` must agree
//! with `Symmetry::Off` on everything the checker *verifies* — the
//! violation flag, worst decision round per `f`, execution count,
//! reachable decision values, and the per-round bivalency *presence* —
//! while `distinct_states` (the work metric the reduction exists to
//! shrink) only ever drops.
//!
//! Both bench protocols are rank-dependent (CRW's rotating coordinator,
//! FloodSet's identified senders), so they exercise the universally
//! sound **settled-record** canonicalization tier: decided and crashed
//! processes are interchangeable once only their decisions matter, and
//! the quotient is summary-*exact* — the root summary, `decided` order
//! included, is asserted equal bit for bit.  (The stronger full-orbit
//! tier for `pid_symmetric` protocols is covered by the explorer's unit
//! suite, which owns a genuinely symmetric protocol.)
//!
//! Census semantics under the quotient: identical round list, per-round
//! counts become orbit counts (`≤` the raw counts), and a round has a
//! bivalent configuration after reduction iff it had one before.
//!
//! The **deeper tiers** (`Symmetry::Partial`, `Symmetry::PartialValue`)
//! additionally pool rank-inert actives and (for CRW's binary
//! proposals) quotient by the value involution.  Merged orbit members
//! enumerate their children in different orders, so those tiers
//! guarantee the verdict fields — violation flag, terminal count
//! (exact under effect-pruned adversary enumeration), per-`f` worst
//! rounds — bit for bit but the `decided` *set* rather than its
//! discovery order; [`assert_quotient_set`] pins exactly that.  Every
//! engine (serial, parallel, spill, partitioned, elastic steal) must
//! still agree bit-for-bit *within* one strength.

use std::time::Duration;

use twostep_baselines::floodset_processes;
use twostep_core::crw_processes;
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_elastic_in_process, explore_partitioned_in_process, explore_with, DistOptions,
    ExploreConfig, ExploreOptions, ExploreReport, MemoConfig, RoundBound, SpecMode, StealConfig,
    Symmetry,
};
use twostep_sim::ModelKind;

/// Largest `n` explored at every `t`; larger `n` only with `t ≤ 2`
/// (same budget policy as `parallel_differential.rs`).
const FULL_DEPTH_N: usize = 4;

fn systems() -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for n in 2..=5usize {
        for t in 1..n {
            if n <= FULL_DEPTH_N || t <= 2 {
                out.push((n, t));
            }
        }
    }
    out
}

/// The engines the reduction must commute with.  Partitioned is run
/// separately (its entry point differs).
fn engines() -> Vec<(&'static str, ExploreOptions)> {
    vec![
        ("serial", ExploreOptions::serial()),
        (
            "parallel4",
            ExploreOptions::with_threads(4)
                .with_donate_depth(None)
                .with_cache(None),
        ),
        (
            "spill",
            ExploreOptions::serial()
                .with_memo(MemoConfig::spill(64))
                .with_cache(None),
        ),
    ]
}

/// Byte-for-byte identity of two reports (the determinism contract every
/// engine already honors, now required *per symmetry mode* too).
fn assert_identical<O: std::fmt::Debug + Eq>(
    a: &ExploreReport<O>,
    b: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(a.root, b.root, "{label}: root summary");
    assert_eq!(a.distinct_states, b.distinct_states, "{label}: states");
    assert_eq!(
        a.bivalency_by_round, b.bivalency_by_round,
        "{label}: census"
    );
}

/// The settled-tier quotient contract: verdict summary exactly equal,
/// state count never up, census shrunk but round-shape and bivalency
/// presence preserved.
fn assert_quotient<O: std::fmt::Debug + Eq>(
    off: &ExploreReport<O>,
    full: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(off.root, full.root, "{label}: verdict summary must match");
    assert!(
        full.distinct_states <= off.distinct_states,
        "{label}: reduction must never add states ({} > {})",
        full.distinct_states,
        off.distinct_states
    );
    assert_eq!(
        off.bivalency_by_round.len(),
        full.bivalency_by_round.len(),
        "{label}: census rounds"
    );
    for ((r_off, c_off, b_off), (r_full, c_full, b_full)) in
        off.bivalency_by_round.iter().zip(&full.bivalency_by_round)
    {
        assert_eq!(r_off, r_full, "{label}: census round order");
        assert!(
            c_full <= c_off,
            "{label}: round {r_off} orbit count {c_full} > raw count {c_off}"
        );
        assert!(b_full <= b_off, "{label}: round {r_off} bivalent counts");
        assert_eq!(
            *b_off > 0,
            *b_full > 0,
            "{label}: round {r_off} bivalency presence"
        );
    }
    // A violating space must still yield a concrete, checkable witness
    // after reduction (reconstruction re-drives from the true initial
    // configuration, not from a canonical representative).
    assert_eq!(
        off.witness.is_some(),
        full.witness.is_some(),
        "{label}: witness presence"
    );
}

/// The deeper-tier quotient contract: everything [`assert_quotient`]
/// pins, except that `decided` is compared as a *set* — the partial
/// tiers merge orbits whose members enumerate children in different
/// orders, so discovery order is not preserved (the memo sorts decided
/// vectors into a normal form instead).  Terminal counts stay exact:
/// effect-pruned adversary enumeration keeps one transition per
/// live-effect class at every strength, so pooled-orbit members
/// contribute identical terminal counts.
fn assert_quotient_set<O: std::fmt::Debug + Eq + Ord + Clone>(
    off: &ExploreReport<O>,
    deep: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(
        off.root.violating, deep.root.violating,
        "{label}: violation verdict"
    );
    assert_eq!(
        off.root.terminals, deep.root.terminals,
        "{label}: terminal count must be exact"
    );
    assert_eq!(
        off.root.worst_round_by_f, deep.root.worst_round_by_f,
        "{label}: per-f worst rounds"
    );
    let sorted = |v: &[O]| {
        let mut v = v.to_vec();
        v.sort_unstable();
        v
    };
    assert_eq!(
        sorted(&off.root.decided),
        sorted(&deep.root.decided),
        "{label}: decided set"
    );
    assert!(
        deep.distinct_states <= off.distinct_states,
        "{label}: reduction must never add states ({} > {})",
        deep.distinct_states,
        off.distinct_states
    );
    assert_eq!(
        off.bivalency_by_round.len(),
        deep.bivalency_by_round.len(),
        "{label}: census rounds"
    );
    for ((r_off, c_off, b_off), (r_deep, c_deep, b_deep)) in
        off.bivalency_by_round.iter().zip(&deep.bivalency_by_round)
    {
        assert_eq!(r_off, r_deep, "{label}: census round order");
        assert!(
            c_deep <= c_off,
            "{label}: round {r_off} orbit count {c_deep} > raw count {c_off}"
        );
        assert!(b_deep <= b_off, "{label}: round {r_off} bivalent counts");
        assert_eq!(
            *b_off > 0,
            *b_deep > 0,
            "{label}: round {r_off} bivalency presence"
        );
    }
    assert_eq!(
        off.witness.is_some(),
        deep.witness.is_some(),
        "{label}: witness presence"
    );
}

fn crw_config(system: &SystemConfig, symmetry: Symmetry) -> ExploreConfig {
    ExploreConfig {
        symmetry,
        ..ExploreConfig::for_crw(system)
    }
}

fn floodset_config(t: usize, symmetry: Symmetry) -> ExploreConfig {
    ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: t as u32 + 2,
        max_states: 10_000_000,
        round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
        spec: SpecMode::Uniform,
        max_crashes_per_round: None,
        symmetry,
    }
}

#[test]
fn extended_model_crw_full_agrees_with_off_on_every_engine() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
        let run = |symmetry: Symmetry, options: ExploreOptions| {
            explore_with(
                system,
                crw_config(&system, symmetry),
                options,
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap()
        };
        let off = run(Symmetry::Off, ExploreOptions::serial());
        let full = run(Symmetry::Full, ExploreOptions::serial());
        assert_quotient(&off, &full, &format!("crw n={n} t={t}"));
        for (engine, options) in engines() {
            let engine_full = run(Symmetry::Full, options);
            assert_identical(
                &full,
                &engine_full,
                &format!("crw n={n} t={t} engine={engine} (Full)"),
            );
        }
    }
}

#[test]
fn extended_model_crw_deeper_tiers_agree_on_every_engine() {
    // The rank-inert partial tier and its value-composed variant: the
    // quotient must stay verdict-exact (decided as a set) against Off,
    // monotonically coarser than Full, and every engine must agree
    // bit-for-bit within one strength.
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
        let run = |symmetry: Symmetry, options: ExploreOptions| {
            explore_with(
                system,
                crw_config(&system, symmetry),
                options,
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap()
        };
        let off = run(Symmetry::Off, ExploreOptions::serial());
        let full = run(Symmetry::Full, ExploreOptions::serial());
        let mut prev_distinct = full.distinct_states;
        for symmetry in [Symmetry::Partial, Symmetry::PartialValue] {
            let label = format!("crw n={n} t={t} {symmetry:?}");
            let deep = run(symmetry, ExploreOptions::serial());
            assert_quotient_set(&off, &deep, &label);
            assert!(
                deep.distinct_states <= prev_distinct,
                "{label}: deeper tier must be at least as coarse \
                 ({} orbits vs {prev_distinct} at the previous strength)",
                deep.distinct_states
            );
            prev_distinct = deep.distinct_states;
            for (engine, options) in engines() {
                let engine_deep = run(symmetry, options);
                assert_identical(&deep, &engine_deep, &format!("{label} engine={engine}"));
            }
        }
    }
}

#[test]
fn classic_model_floodset_full_agrees_with_off_on_every_engine() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        let run = |symmetry: Symmetry, options: ExploreOptions| {
            explore_with(
                system,
                floodset_config(t, symmetry),
                options,
                floodset_processes(n, t, &proposals),
                proposals.clone(),
            )
            .unwrap()
        };
        let off = run(Symmetry::Off, ExploreOptions::serial());
        let full = run(Symmetry::Full, ExploreOptions::serial());
        assert_quotient(&off, &full, &format!("floodset n={n} t={t}"));
        for (engine, options) in engines() {
            let engine_full = run(Symmetry::Full, options);
            assert_identical(
                &full,
                &engine_full,
                &format!("floodset n={n} t={t} engine={engine} (Full)"),
            );
        }
    }
}

#[test]
fn classic_model_floodset_deeper_tiers_degrade_soundly() {
    // FloodSet opts out of both deeper quotients (`rank_inert` is
    // always false — every active broadcasts — and `min(W)` does not
    // commute with the value involution), so Partial degrades to
    // exactly the settled tier's orbit count and PartialValue must not
    // activate the value quotient.  The verdict contract still holds.
    for (n, t) in [(4usize, 2usize), (4, 3), (5, 2)] {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        let run = |symmetry: Symmetry| {
            explore_with(
                system,
                floodset_config(t, symmetry),
                ExploreOptions::serial(),
                floodset_processes(n, t, &proposals),
                proposals.clone(),
            )
            .unwrap()
        };
        let off = run(Symmetry::Off);
        let full = run(Symmetry::Full);
        for symmetry in [Symmetry::Partial, Symmetry::PartialValue] {
            let deep = run(symmetry);
            let label = format!("floodset n={n} t={t} {symmetry:?}");
            assert_quotient_set(&off, &deep, &label);
            assert_eq!(
                deep.distinct_states, full.distinct_states,
                "{label}: with every deeper hook opted out, the orbit \
                 count must equal the settled tier's"
            );
        }
    }
}

#[test]
fn elastic_steal_engine_commutes_with_symmetry() {
    // The elastic engine under a policy that always fires: offload,
    // preempt handshake, frontier re-split, and seeded relaunch all
    // happen at every strength, and the merged report must still be
    // bit-identical to the same-strength serial walk.
    let (n, t) = (4usize, 3usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
    let forced_steal = StealConfig {
        enabled: true,
        min_frontier: 1,
        poll_interval: Duration::ZERO,
        yield_every: 64,
    };
    let options = DistOptions {
        steal: forced_steal,
        ..DistOptions::new(2)
    };
    for symmetry in [
        Symmetry::Off,
        Symmetry::Full,
        Symmetry::Partial,
        Symmetry::PartialValue,
    ] {
        let config = crw_config(&system, symmetry);
        let serial = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        let elastic = explore_elastic_in_process(
            system,
            config,
            &options,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        assert_identical(
            &serial,
            &elastic,
            &format!("elastic crw n={n} t={t} {symmetry:?}"),
        );
    }
}

#[test]
fn partitioned_engine_commutes_with_symmetry() {
    // The distributed engine keys its frontier partition with the same
    // canonical bytes the walkers use, so a symmetric run must merge to
    // the same report as the symmetric serial walk — at any partition
    // count, here 2 (and its report must in turn be the exact quotient
    // of the Off run).
    for (n, t) in [(4usize, 2usize), (4, 3), (5, 2)] {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
        for symmetry in [
            Symmetry::Off,
            Symmetry::Full,
            Symmetry::Partial,
            Symmetry::PartialValue,
        ] {
            let config = crw_config(&system, symmetry);
            let serial = explore_with(
                system,
                config,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            let partitioned = explore_partitioned_in_process(
                system,
                config,
                &DistOptions::new(2),
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &serial,
                &partitioned,
                &format!("partitioned crw n={n} t={t} {symmetry:?}"),
            );
        }
    }
}

#[test]
fn reduction_is_strict_for_a_pinned_system() {
    // The quotient theorems above allow `≤`; this pin proves the
    // machinery actually fires on the bench protocol — at `(5, 4)` CRW
    // reaches configurations whose settled records differ only by which
    // slots hold them, and those must merge.
    let (n, t) = (5usize, 4usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
    let run = |symmetry: Symmetry| {
        explore_with(
            system,
            crw_config(&system, symmetry),
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap()
    };
    let off = run(Symmetry::Off);
    let full = run(Symmetry::Full);
    let partial = run(Symmetry::Partial);
    let pv = run(Symmetry::PartialValue);
    assert_quotient(&off, &full, "crw n=5 t=4");
    assert_quotient_set(&off, &partial, "crw n=5 t=4 partial");
    assert_quotient_set(&off, &pv, "crw n=5 t=4 partial+value");
    assert!(
        full.distinct_states < off.distinct_states,
        "expected a strict reduction at (5, 4): {} orbits vs {} raw states",
        full.distinct_states,
        off.distinct_states
    );
    // The strength ladder must actually be a ladder at (5, 4), and the
    // exact rung heights are pinned: the exploration is deterministic,
    // so any drift in these counts is a semantic change to the quotient
    // (or to the adversary enumeration) that must be reviewed, not a
    // flaky measurement.
    assert!(
        pv.distinct_states <= partial.distinct_states
            && partial.distinct_states <= full.distinct_states,
        "strength ladder violated: {} (partial+value) vs {} (partial) vs {} (full)",
        pv.distinct_states,
        partial.distinct_states,
        full.distinct_states
    );
    eprintln!(
        "symmetry_differential: crw (5, 4) {} raw -> {} full -> {} partial -> {} partial+value",
        off.distinct_states, full.distinct_states, partial.distinct_states, pv.distinct_states
    );
    assert_eq!(
        (
            off.distinct_states,
            full.distinct_states,
            partial.distinct_states,
            pv.distinct_states,
        ),
        PINNED_54_COUNTS,
        "pinned (5, 4) distinct-state counts drifted"
    );
}

/// The committed `(off, full, partial, partial+value)` distinct-state
/// counts at CRW `(5, 4)` — see `reduction_is_strict_for_a_pinned_system`.
/// Partial equals Full here by arithmetic, not by accident: at
/// `t = n - 1` an active process can never see more actives below it
/// than the remaining crash budget, so rank-inertness cannot fire (it
/// pays off at small `t`, where the budget runs out before the ranks
/// do); the extra 314 → 235 step is the binary value quotient.
const PINNED_54_COUNTS: (usize, usize, usize, usize) = (815, 314, 314, 235);
