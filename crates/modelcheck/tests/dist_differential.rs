//! Differential suite for the frontier-split distributed engine: a
//! partitioned exploration — workers expanding the depth-`d` frontier,
//! exploring their key-hash partition, exporting memo segments, and a
//! coordinator merging them and replaying the canonical root walk — must
//! produce a report **bit-identical** to the serial walk (`threads = 1`)
//! in every aggregate, for `n ≤ 5`, both model kinds, partition counts
//! {2, 4}, and workers with and without a spilling memo.  A worker that
//! is killed (leaving a truncated export) or that lies about success
//! (leaving a damaged export) must be retried and still yield the
//! identical report; a worker that fails every attempt must surface as
//! [`ExploreError::Worker`], never as a silently-degraded result.

use std::sync::atomic::{AtomicUsize, Ordering};

use twostep_baselines::floodset_processes;
use twostep_core::{crw_processes, CommitOrder, Crw};
use twostep_model::{ProcessId, SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_elastic, explore_elastic_in_process, explore_partitioned,
    explore_partitioned_in_process, explore_with, run_worker, run_worker_elastic, DistOptions,
    ElasticTask, ExploreConfig, ExploreError, ExploreOptions, ExploreReport, FaultPlan, MemoConfig,
    RoundBound, SpecMode, StealConfig, SuperviseConfig, Symmetry, WorkerPulse, WorkerTask,
};
use twostep_sim::ModelKind;

/// Largest `n` explored at every `t`; larger `n` only with `t ≤ 2` (same
/// budget policy as the other differential suites).
const FULL_DEPTH_N: usize = 4;

fn systems() -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for n in 2..=5usize {
        for t in 1..n {
            if n <= FULL_DEPTH_N || t <= 2 {
                out.push((n, t));
            }
        }
    }
    out
}

fn assert_identical<O: std::fmt::Debug + Eq>(
    serial: &ExploreReport<O>,
    dist: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(serial.root, dist.root, "{label}: root summary");
    assert_eq!(
        serial.distinct_states, dist.distinct_states,
        "{label}: distinct states"
    );
    assert_eq!(
        serial.bivalency_by_round, dist.bivalency_by_round,
        "{label}: bivalency census"
    );
}

/// Worker engine variants of the acceptance matrix: an all-RAM serial
/// worker and a spilling two-thread worker.
fn worker_engines() -> Vec<(&'static str, ExploreOptions)> {
    vec![
        ("ram-serial", ExploreOptions::serial()),
        (
            "spill-2t",
            ExploreOptions::with_threads(2).with_memo(MemoConfig::spill(16)),
        ),
    ]
}

fn dist_options(partitions: usize) -> DistOptions {
    DistOptions {
        partitions,
        depth: 1,
        attempts: 3,
        scratch_dir: None,
        cache: None,
        replay: ExploreOptions::serial(),
        steal: StealConfig::default(),
        faults: FaultPlan::none(),
        supervise: SuperviseConfig::default(),
    }
}

/// Supervision with graceful degradation turned *off*: retry exhaustion
/// must surface as [`ExploreError::Worker`], which the loud-failure
/// tests below assert.
fn no_degrade() -> SuperviseConfig {
    SuperviseConfig {
        degrade: false,
        ..SuperviseConfig::default()
    }
}

/// A steal policy that *always* fires: zero warm-up, any frontier worth
/// one root, pulses every few steps — the elastic machinery (preempt,
/// harvest, re-split, seeded relaunch) exercised on even the smallest
/// systems, where the lazy defaults would never offload.
fn forced_steal(yield_every: u64) -> StealConfig {
    StealConfig {
        enabled: true,
        min_frontier: 1,
        poll_interval: std::time::Duration::ZERO,
        yield_every,
    }
}

fn crw_proposals(n: usize) -> Vec<WideValue> {
    (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect()
}

#[test]
fn extended_model_crw_partitioned_equals_serial() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals = crw_proposals(n);
        let config = ExploreConfig::for_crw(&system);
        let serial = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for partitions in [2usize, 4] {
            for (engine_label, engine) in worker_engines() {
                let dist = explore_partitioned_in_process(
                    system,
                    config,
                    &dist_options(partitions),
                    engine,
                    crw_processes(&system, &proposals),
                    proposals.clone(),
                )
                .unwrap();
                assert_identical(
                    &serial,
                    &dist,
                    &format!("extended crw n={n} t={t} partitions={partitions} {engine_label}"),
                );
            }
        }
    }
}

#[test]
fn classic_model_floodset_partitioned_equals_serial() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        let config = ExploreConfig {
            model: ModelKind::Classic,
            max_rounds: t as u32 + 2,
            max_states: 10_000_000,
            round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
            spec: SpecMode::Uniform,
            max_crashes_per_round: None,
            symmetry: Symmetry::Off,
        };
        let serial = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            floodset_processes(n, t, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for partitions in [2usize, 4] {
            for (engine_label, engine) in worker_engines() {
                let dist = explore_partitioned_in_process(
                    system,
                    config,
                    &dist_options(partitions),
                    engine,
                    floodset_processes(n, t, &proposals),
                    proposals.clone(),
                )
                .unwrap();
                assert_identical(
                    &serial,
                    &dist,
                    &format!("classic floodset n={n} t={t} partitions={partitions} {engine_label}"),
                );
            }
        }
    }
}

/// Deeper frontiers change which subtrees workers own, never the report.
#[test]
fn deeper_frontier_is_result_invisible() {
    let (n, t) = (4usize, 3usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    for depth in [0u32, 1, 2, 3] {
        let options = DistOptions {
            depth,
            ..dist_options(3)
        };
        let dist = explore_partitioned_in_process(
            system,
            config,
            &options,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        assert_identical(&serial, &dist, &format!("depth={depth}"));
    }
}

/// Witness reconstruction runs over the merged memo: a violating space
/// (the LowestFirst commit-order ablation breaks the Theorem 1 bound)
/// must yield the same witness partitioned as serially.
#[test]
fn partitioned_witness_matches_serial() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let procs: Vec<Crw<WideValue>> = proposals
        .iter()
        .enumerate()
        .map(|(i, v)| Crw::with_order(ProcessId::from_idx(i), n, *v, CommitOrder::LowestFirst))
        .collect();
    let config = ExploreConfig {
        round_bound: Some(RoundBound::FPlus(1)),
        ..ExploreConfig::for_crw(&system)
    };
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        procs.clone(),
        proposals.clone(),
    )
    .unwrap();
    let dist = explore_partitioned_in_process(
        system,
        config,
        &dist_options(2),
        ExploreOptions::serial(),
        procs,
        proposals,
    )
    .unwrap();
    assert!(serial.root.violating, "ablation must violate the bound");
    let ws = serial.witness.expect("serial witness");
    let wd = dist.witness.expect("partitioned witness");
    assert_eq!(format!("{:?}", ws.schedule), format!("{:?}", wd.schedule));
    assert_eq!(ws.decisions, wd.decisions);
    assert_eq!(ws.violations.len(), wd.violations.len());
}

/// A worker killed mid-export (truncated, unsealed segment on disk plus
/// a failure report) is retried, and the retry's overwrite yields the
/// identical report.
#[test]
fn killed_worker_is_retried_to_identical_report() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();

    let kills = AtomicUsize::new(0);
    let launch = |task: &WorkerTask| {
        let run = || {
            run_worker(
                system,
                config,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
                task,
            )
            .map(|_| ())
            .map_err(|e| e.to_string())
        };
        if task.partition == 0 && kills.fetch_add(1, Ordering::Relaxed) == 0 {
            // First attempt of partition 0 "dies": it runs, but its
            // export is cut short and the process exits non-zero.
            run()?;
            let bytes = std::fs::read(&task.export_path).expect("export exists");
            std::fs::write(&task.export_path, &bytes[..bytes.len() / 2]).expect("truncate");
            return Err("worker killed mid-export".to_string());
        }
        run()
    };
    let dist = explore_partitioned(
        system,
        config,
        &dist_options(2),
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert_eq!(kills.load(Ordering::Relaxed), 2, "partition 0 ran twice");
    assert_identical(&serial, &dist, "killed worker retried");
}

/// A worker that *claims* success but leaves a damaged export is caught
/// by the coordinator's validation and retried.
#[test]
fn lying_worker_is_caught_by_validation_and_retried() {
    let (n, t) = (3usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();

    let lies = AtomicUsize::new(0);
    let launch = |task: &WorkerTask| {
        if task.partition == 1 && lies.fetch_add(1, Ordering::Relaxed) == 0 {
            // Claims success, delivers garbage.
            std::fs::write(&task.export_path, b"trust me, all the states are in here").unwrap();
            return Ok(());
        }
        run_worker(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
            task,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    };
    let dist = explore_partitioned(
        system,
        config,
        &dist_options(2),
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap();
    assert_eq!(lies.load(Ordering::Relaxed), 2, "partition 1 ran twice");
    assert_identical(&serial, &dist, "lying worker retried");
}

/// A worker that fails every attempt surfaces as `ExploreError::Worker`
/// with its partition — the coordinator never silently degrades.
#[test]
fn exhausted_worker_attempts_fail_loudly() {
    let (n, t) = (3usize, 1usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let launch = |task: &WorkerTask| {
        if task.partition == 1 {
            return Err("this worker never comes up".to_string());
        }
        run_worker(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
            task,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    };
    let options = DistOptions {
        attempts: 2,
        supervise: no_degrade(),
        ..dist_options(2)
    };
    let err = explore_partitioned(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        launch,
    )
    .unwrap_err();
    match err {
        ExploreError::Worker { partition, detail } => {
            assert_eq!(partition, 1);
            assert!(detail.contains("never comes up"), "{detail}");
        }
        other => panic!("expected Worker error, got {other:?}"),
    }
}

/// Satellite audit: the coordinator's shared scratch directory (worker
/// export segments, the seed segment) is removed on **every** outcome —
/// success, worker-retry exhaustion, and validation failure — because
/// `explore_partitioned` owns it as a drop-cleaned `SpillDir`.  Only the
/// caller-provided root must survive.
#[test]
fn scratch_dir_is_removed_on_every_coordinator_outcome() {
    let (n, t) = (3usize, 1usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let root = std::env::temp_dir().join(format!("twostep-scratch-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let options = DistOptions {
        scratch_dir: Some(root.clone()),
        attempts: 2,
        supervise: no_degrade(),
        ..dist_options(2)
    };
    let assert_scratch_empty = |label: &str| {
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .expect("caller-provided scratch root must survive")
            .flatten()
            .map(|e| e.path())
            .collect();
        assert!(
            leftovers.is_empty(),
            "{label}: scratch root must be empty, found {leftovers:?}"
        );
    };

    // Success path.
    explore_partitioned_in_process(
        system,
        config,
        &options,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_scratch_empty("success");

    // Worker-retry exhaustion: a worker that never comes up.
    let err = explore_partitioned(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |_task: &WorkerTask| Err("never comes up".to_string()),
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::Worker { .. }), "{err:?}");
    assert_scratch_empty("retry exhaustion");

    // Validation failure: a worker that always claims success but leaves
    // a damaged export, exhausting every attempt.
    let err = explore_partitioned(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |task: &WorkerTask| {
            std::fs::write(&task.export_path, b"damaged beyond repair").unwrap();
            Ok(())
        },
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::Worker { .. }), "{err:?}");
    assert_scratch_empty("validation failure");

    // Graceful degradation: with the default supervision, the same
    // never-comes-up launch *succeeds* (the coordinator walks the
    // orphaned partitions locally) — and the scratch dir is still
    // removed on this outcome too.
    let degrading = DistOptions {
        supervise: SuperviseConfig::default(),
        ..options.clone()
    };
    let report = explore_partitioned(
        system,
        config,
        &degrading,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |_task: &WorkerTask| Err("never comes up".to_string()),
    )
    .unwrap();
    assert!(report.distinct_states > 0, "degraded run still explores");
    assert_scratch_empty("degraded success");

    std::fs::remove_dir_all(&root).unwrap();
}

/// Partition counts far beyond the frontier size leave some workers with
/// zero subtrees; their (valid, empty) exports merge fine.
#[test]
fn more_partitions_than_frontier_configs_is_fine() {
    let (n, t) = (2usize, 1usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let dist = explore_partitioned_in_process(
        system,
        config,
        &dist_options(16),
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_identical(&serial, &dist, "16 partitions on a tiny frontier");
}

// ---------------------------------------------------------------------
// Elastic engine (work stealing)
// ---------------------------------------------------------------------

/// Forced stealing over the extended-model CRW matrix: every run
/// offloads immediately, preempts aggressively, and must still be
/// bit-identical to the serial walk for both worker engines and both
/// partition counts.
#[test]
fn extended_model_crw_elastic_steal_equals_serial() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals = crw_proposals(n);
        let config = ExploreConfig::for_crw(&system);
        let serial = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for partitions in [2usize, 4] {
            for (engine_label, engine) in worker_engines() {
                let options = DistOptions {
                    steal: forced_steal(32),
                    ..dist_options(partitions)
                };
                let dist = explore_elastic_in_process(
                    system,
                    config,
                    &options,
                    engine,
                    crw_processes(&system, &proposals),
                    proposals.clone(),
                )
                .unwrap();
                assert_identical(
                    &serial,
                    &dist,
                    &format!("elastic crw n={n} t={t} partitions={partitions} {engine_label}"),
                );
            }
        }
    }
}

/// The classic-model floodset matrix under forced stealing.
#[test]
fn classic_model_floodset_elastic_steal_equals_serial() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        let config = ExploreConfig {
            model: ModelKind::Classic,
            max_rounds: t as u32 + 2,
            max_states: 10_000_000,
            round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
            spec: SpecMode::Uniform,
            max_crashes_per_round: None,
            symmetry: Symmetry::Off,
        };
        let serial = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            floodset_processes(n, t, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for partitions in [2usize, 4] {
            for (engine_label, engine) in worker_engines() {
                let options = DistOptions {
                    steal: forced_steal(32),
                    ..dist_options(partitions)
                };
                let dist = explore_elastic_in_process(
                    system,
                    config,
                    &options,
                    engine,
                    floodset_processes(n, t, &proposals),
                    proposals.clone(),
                )
                .unwrap();
                assert_identical(
                    &serial,
                    &dist,
                    &format!("elastic floodset n={n} t={t} partitions={partitions} {engine_label}"),
                );
            }
        }
    }
}

/// Steal-enabled run whose policy never fires (lazy defaults on a small
/// system): the elastic engine must degrade to a plain local walk and
/// still match serially — the quick-bench configuration in miniature.
#[test]
fn elastic_with_lazy_policy_never_offloads_and_matches_serial() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let launches = AtomicUsize::new(0);
    let options = DistOptions {
        steal: StealConfig::on(), // default thresholds: 250ms warm-up
        ..dist_options(2)
    };
    let dist = explore_elastic(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |task: &ElasticTask, pulse: &(dyn Fn(WorkerPulse) + Sync)| {
            launches.fetch_add(1, Ordering::Relaxed);
            run_worker_elastic(
                system,
                config,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
                task,
                pulse,
            )
            .map_err(|e| e.to_string())
        },
    )
    .unwrap();
    assert_eq!(
        launches.load(Ordering::Relaxed),
        0,
        "a sub-250ms run must never leave the coordinator"
    );
    assert_identical(&serial, &dist, "lazy elastic == serial");
}

/// A worker killed mid-steal — it preempted (or finished), but its
/// export segment is truncated on disk and its launch reports failure —
/// is relaunched with refreshed seeds and the run still converges to the
/// identical report.
#[test]
fn killed_elastic_worker_mid_steal_is_retried_to_identical_report() {
    let (n, t) = (4usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let kills = AtomicUsize::new(0);
    let options = DistOptions {
        steal: forced_steal(16),
        ..dist_options(2)
    };
    let dist = explore_elastic(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |task: &ElasticTask, pulse: &(dyn Fn(WorkerPulse) + Sync)| {
            let exit = run_worker_elastic(
                system,
                config,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
                task,
                pulse,
            )
            .map_err(|e| e.to_string())?;
            if task.worker == 0 && kills.fetch_add(1, Ordering::Relaxed) == 0 {
                // The worker ran — steal handshake included — but "dies"
                // before its export is sealed.
                let bytes = std::fs::read(&task.export_path).expect("export exists");
                std::fs::write(&task.export_path, &bytes[..bytes.len() / 2]).expect("truncate");
                return Err("worker killed mid-steal".to_string());
            }
            Ok(exit)
        },
    )
    .unwrap();
    assert_eq!(kills.load(Ordering::Relaxed), 2, "worker 0 ran twice");
    assert_identical(&serial, &dist, "killed elastic worker retried");
}

/// A steal request racing a natural finish: workers that never observe
/// their steal flag (redirected to a path nobody writes) finish whole
/// slices even while flagged as victims — the coordinator must absorb a
/// `Finished` from a flagged worker without waiting for a preempt
/// segment that will never appear.
#[test]
fn steal_raced_with_natural_finish_is_identical() {
    let (n, t) = (4usize, 3usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let serial = explore_with(
        system,
        config,
        ExploreOptions::serial(),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let options = DistOptions {
        steal: forced_steal(8),
        ..dist_options(2)
    };
    let dist = explore_elastic(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |task: &ElasticTask, pulse: &(dyn Fn(WorkerPulse) + Sync)| {
            // Same assignment, but the worker polls a flag file the
            // coordinator never writes — every steal request loses the
            // race with the worker's own completion.
            let deaf = ElasticTask {
                steal_flag: task.steal_flag.with_extension("never"),
                ..task.clone()
            };
            run_worker_elastic(
                system,
                config,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
                &deaf,
                pulse,
            )
            .map_err(|e| e.to_string())
        },
    )
    .unwrap();
    assert_identical(&serial, &dist, "steal raced with natural finish");
}

/// An elastic worker that fails every attempt surfaces as
/// [`ExploreError::Worker`] — stealing never silently degrades either.
#[test]
fn exhausted_elastic_worker_attempts_fail_loudly() {
    let (n, t) = (3usize, 2usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals = crw_proposals(n);
    let config = ExploreConfig::for_crw(&system);
    let options = DistOptions {
        attempts: 2,
        steal: forced_steal(16),
        supervise: no_degrade(),
        ..dist_options(2)
    };
    let err = explore_elastic(
        system,
        config,
        &options,
        crw_processes(&system, &proposals),
        proposals.clone(),
        |_task: &ElasticTask, _pulse: &(dyn Fn(WorkerPulse) + Sync)| {
            Err("this worker never comes up".to_string())
        },
    )
    .unwrap_err();
    match err {
        ExploreError::Worker { detail, .. } => {
            assert!(detail.contains("never comes up"), "{detail}");
        }
        other => panic!("expected Worker error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Property: re-splits compose
// ---------------------------------------------------------------------

mod resplit_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any re-split of a suspended frontier composes back to the
        /// uninterrupted report: whatever preempt cadence and partition
        /// count the scheduler happens to pick, the merged deltas plus
        /// the final replay equal the serial walk bit for bit.
        #[test]
        fn any_resplit_composes_to_serial_report(
            yield_every in 16u64..512,
            partitions in 2usize..=4,
            min_frontier in 1usize..8,
            seed in 0usize..2,
        ) {
            let (n, t) = [(3usize, 2usize), (4, 2)][seed];
            let system = SystemConfig::new(n, t).unwrap();
            let proposals = crw_proposals(n);
            let config = ExploreConfig::for_crw(&system);
            let serial = explore_with(
                system,
                config,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            let options = DistOptions {
                steal: StealConfig {
                    enabled: true,
                    min_frontier,
                    poll_interval: std::time::Duration::ZERO,
                    yield_every,
                },
                ..dist_options(partitions)
            };
            let dist = explore_elastic_in_process(
                system,
                config,
                &options,
                ExploreOptions::serial(),
                crw_processes(&system, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &serial,
                &dist,
                &format!(
                    "resplit n={n} t={t} partitions={partitions} \
                     yield_every={yield_every} min_frontier={min_frontier}"
                ),
            );
        }
    }
}
