//! Exhaustive verification of the paper's algorithm over the complete
//! adversary space for small systems — the mechanical counterpart of
//! Theorems 1–5.

use twostep_core::{crw_processes, CommitOrder, Crw};
use twostep_model::{ProcessId, SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_with, ExploreConfig, ExploreError, ExploreOptions, RoundBound, SpecMode, Symmetry,
};

/// All exhaustive suites run through the parallel default engine; the
/// differential suite (`parallel_differential.rs`) pins its equivalence
/// to the serial walk.
fn explore<P>(
    system: twostep_model::SystemConfig,
    config: ExploreConfig,
    initial: Vec<P>,
    proposals: Vec<P::Output>,
) -> Result<twostep_modelcheck::ExploreReport<P::Output>, twostep_modelcheck::ExploreError>
where
    P: twostep_modelcheck::CheckableProtocol,
    P::Output: std::hash::Hash + twostep_modelcheck::SpillCodec,
{
    explore_with(
        system,
        config,
        ExploreOptions::default(),
        initial,
        proposals,
    )
}

use twostep_sim::ModelKind;

/// Binary proposals 0/1 alternating — the bivalency argument's input space.
fn binary_proposals(n: usize) -> Vec<WideValue> {
    (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect()
}

fn explore_crw(
    n: usize,
    t: usize,
    proposals: &[WideValue],
) -> twostep_modelcheck::ExploreReport<WideValue> {
    let system = SystemConfig::new(n, t).unwrap();
    let options = ExploreConfig::for_crw(&system);
    explore(
        system,
        options,
        crw_processes(&system, proposals),
        proposals.to_vec(),
    )
    .unwrap()
}

#[test]
fn crw_satisfies_spec_on_every_execution_n3() {
    let report = explore_crw(3, 2, &binary_proposals(3));
    assert!(!report.root.violating, "spec holds on all executions");
    assert!(report.witness.is_none());
    assert!(report.root.terminals > 20, "space is non-trivial");
}

#[test]
fn crw_satisfies_spec_on_every_execution_n4() {
    let report = explore_crw(4, 3, &binary_proposals(4));
    assert!(!report.root.violating);
    assert!(report.root.terminals > 1_000);
}

#[test]
fn crw_satisfies_spec_at_intermediate_resilience_n4_t2() {
    // A different corner: budget below n-1.  The adversary can no longer
    // kill every coordinator, and the bound tightens accordingly.
    let report = explore_crw(4, 2, &binary_proposals(4));
    assert!(!report.root.violating);
    for f in 0..=2usize {
        assert_eq!(report.root.worst_round_by_f[f], Some(f as u32 + 1));
    }
}

#[test]
fn crw_satisfies_spec_wide_system_thin_budget_n5_t1() {
    // Wide system, a single allowed crash: every one-crash behaviour
    // (all data subsets over four destinations, all commit prefixes,
    // decide-then-die) is enumerated.
    let report = explore_crw(5, 1, &binary_proposals(5));
    assert!(!report.root.violating);
    assert_eq!(report.root.worst_round_by_f[0], Some(1));
    assert_eq!(report.root.worst_round_by_f[1], Some(2));
    // With ≤ 1 crash and mixed binary inputs, the adversary can still
    // steer: the initial configuration is bivalent.
    assert!(report.root.is_bivalent());
}

#[test]
fn crw_worst_round_is_exactly_f_plus_1() {
    // Theorem 1 (upper bound) + Theorem 4 (matching lower bound), checked
    // over *every* execution: for each actual crash count f, the worst
    // last-decision round equals f + 1 exactly.
    for (n, t) in [(3usize, 2usize), (4, 3)] {
        let report = explore_crw(n, t, &binary_proposals(n));
        for f in 0..=t {
            let worst = report.root.worst_round_by_f[f]
                .unwrap_or_else(|| panic!("no terminal with f={f}?"));
            assert_eq!(worst, f as u32 + 1, "n={n}: worst decision round for f={f}");
        }
    }
}

#[test]
fn crw_initial_configuration_is_bivalent_with_mixed_proposals() {
    // Both 0 and 1 are decidable from the initial configuration (the
    // adversary steers by killing coordinators) — the starting point of
    // the bivalency lower-bound argument.
    let report = explore_crw(3, 2, &binary_proposals(3));
    assert!(report.root.is_bivalent());
    // And bivalent configurations exist beyond round 1: the census must
    // show at least one bivalent configuration at rounds 1 and 2.
    let r1 = report
        .bivalency_by_round
        .iter()
        .find(|(r, _, _)| *r == 1)
        .unwrap();
    let r2 = report
        .bivalency_by_round
        .iter()
        .find(|(r, _, _)| *r == 2)
        .unwrap();
    assert!(r1.2 >= 1, "round-1 bivalent configs: {r1:?}");
    assert!(r2.2 >= 1, "round-2 bivalent configs: {r2:?}");
}

#[test]
fn crw_univalent_with_unanimous_proposals() {
    // Validity forces univalence when everyone proposes the same value.
    let unanimous: Vec<WideValue> = (0..3).map(|_| WideValue::new(1, 1)).collect();
    let report = explore_crw(3, 2, &unanimous);
    assert!(!report.root.violating);
    assert_eq!(report.root.decided.len(), 1);
    assert_eq!(report.root.decided[0].ident(), 1);
}

#[test]
fn ablation_ascending_commits_violate_theorem1_exhaustively() {
    // The commit-order reconstruction (see twostep-core docs): with
    // ascending commits the f+1 bound fails somewhere in the execution
    // space, and the explorer both flags it and reconstructs a concrete
    // schedule.  Uniform agreement itself still holds (checked by running
    // again without the round bound).
    let n = 4;
    let system = SystemConfig::new(n, 2).unwrap();
    let proposals = binary_proposals(n);
    let procs: Vec<Crw<WideValue>> = proposals
        .iter()
        .enumerate()
        .map(|(i, v)| Crw::with_order(ProcessId::from_idx(i), n, *v, CommitOrder::LowestFirst))
        .collect();

    let with_bound = ExploreConfig {
        model: ModelKind::Extended,
        max_rounds: n as u32 + 1,
        max_states: 5_000_000,
        round_bound: Some(RoundBound::FPlus(1)),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(system, with_bound, procs.clone(), proposals.clone()).unwrap();
    assert!(
        report.root.violating,
        "ascending commit order must break the f+1 bound somewhere"
    );
    let witness = report.witness.expect("counterexample schedule");
    assert!(
        !witness.violations.is_empty(),
        "witness carries the violations"
    );

    let no_bound = ExploreConfig {
        round_bound: None,
        ..with_bound
    };
    let report = explore(system, no_bound, procs, proposals).unwrap();
    assert!(
        !report.root.violating,
        "agreement/validity/termination still hold without the bound"
    );
}

#[test]
fn state_budget_error_is_reported_not_panicked() {
    let system = SystemConfig::new(4, 3).unwrap();
    let options = ExploreConfig {
        max_states: 10,
        ..ExploreConfig::for_crw(&system)
    };
    let proposals = binary_proposals(4);
    let err = explore(
        system,
        options,
        crw_processes(&system, &proposals),
        proposals,
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::StateLimit { budget: 10 }));
}

/// Theorem 3's restricted adversary (at most one crash per round) still
/// forces the `f+1` worst case — the §5 proof does not need crash bursts
/// — while exploring a strictly smaller execution space.
#[test]
fn theorem3_one_crash_per_round_adversary_still_forces_f_plus_1() {
    let proposals = binary_proposals(4);
    let system = SystemConfig::new(4, 3).unwrap();

    let full = explore(
        system,
        ExploreConfig::for_crw(&system),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    let restricted = explore(
        system,
        ExploreConfig::theorem3(&system),
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();

    assert!(
        !restricted.root.violating,
        "spec holds under the restriction"
    );
    for f in 0..=3usize {
        assert_eq!(
            restricted.root.worst_round_by_f[f],
            Some(f as u32 + 1),
            "restricted worst at f={f}"
        );
        assert_eq!(
            full.root.worst_round_by_f[f],
            Some(f as u32 + 1),
            "unrestricted worst at f={f}"
        );
    }
    assert!(
        restricted.root.terminals < full.root.terminals,
        "one-per-round is a strict subset of the adversary space: {} vs {}",
        restricted.root.terminals,
        full.root.terminals
    );
    // The initial configuration stays bivalent under the restriction —
    // the starting point of the Theorem 3 bivalency argument.
    assert!(restricted.root.is_bivalent());
}

/// With the per-round cap at 0 the adversary is impotent: every run is
/// failure-free and decides in round 1.
#[test]
fn zero_crashes_per_round_cap_means_failure_free_space() {
    let proposals = binary_proposals(3);
    let system = SystemConfig::new(3, 2).unwrap();
    let report = explore(
        system,
        ExploreConfig {
            max_crashes_per_round: Some(0),
            ..ExploreConfig::for_crw(&system)
        },
        crw_processes(&system, &proposals),
        proposals.clone(),
    )
    .unwrap();
    assert_eq!(report.root.terminals, 1, "exactly the failure-free run");
    assert_eq!(report.root.worst_round_by_f[0], Some(1));
    assert!(!report.root.is_bivalent(), "p1 always wins: univalent");
}
