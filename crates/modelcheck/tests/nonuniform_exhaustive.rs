//! Exhaustive verification of the non-uniform early-deciding baseline —
//! the Charron-Bost–Schiper landscape, mechanized:
//!
//! * under **plain** agreement, the algorithm is correct on every
//!   execution and decides by round `f+1` — matching the paper's extended-
//!   model bound, but in the classic model;
//! * under **uniform** agreement it provably fails, and the checker
//!   produces the concrete decide-then-crash counterexample — the very
//!   scenario the paper's commit messages eliminate.

use twostep_baselines::nonuniform_processes;
use twostep_model::SystemConfig;
use twostep_modelcheck::{
    explore_with, ExploreConfig, ExploreOptions, RoundBound, SpecMode, Symmetry,
};

/// All exhaustive suites run through the parallel default engine; the
/// differential suite (`parallel_differential.rs`) pins its equivalence
/// to the serial walk.
fn explore<P>(
    system: twostep_model::SystemConfig,
    config: ExploreConfig,
    initial: Vec<P>,
    proposals: Vec<P::Output>,
) -> Result<twostep_modelcheck::ExploreReport<P::Output>, twostep_modelcheck::ExploreError>
where
    P: twostep_modelcheck::CheckableProtocol,
    P::Output: std::hash::Hash + twostep_modelcheck::SpillCodec,
{
    explore_with(
        system,
        config,
        ExploreOptions::default(),
        initial,
        proposals,
    )
}

use twostep_sim::{ModelKind, SpecViolation};

fn proposals(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 10 + i).collect()
}

#[test]
fn plain_agreement_holds_and_decides_by_f_plus_1_n3() {
    let n = 3;
    let t = 2;
    let system = SystemConfig::new(n, t).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: t as u32 + 2,
        max_states: 10_000_000,
        round_bound: Some(RoundBound::FPlus(1)),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::NonUniform,
    };
    let report = explore(
        system,
        options,
        nonuniform_processes(n, t, &proposals(n)),
        proposals(n),
    )
    .unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
    // Decision-by-f+1, over the whole space: f=0 ⇒ 1 (vs the uniform
    // algorithm's 2), f=1 ⇒ 2, f=2 ⇒ 3.
    for f in 0..=t {
        assert_eq!(report.root.worst_round_by_f[f], Some(f as u32 + 1), "f={f}");
    }
}

#[test]
fn plain_agreement_holds_n4_t2() {
    let n = 4;
    let t = 2;
    let system = SystemConfig::new(n, t).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: t as u32 + 2,
        max_states: 30_000_000,
        round_bound: Some(RoundBound::FPlus(1)),
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::NonUniform,
    };
    let report = explore(
        system,
        options,
        nonuniform_processes(n, t, &proposals(n)),
        proposals(n),
    )
    .unwrap();
    assert!(
        !report.root.violating,
        "witness: {:?}",
        report.witness.map(|w| (w.schedule, w.violations))
    );
}

#[test]
fn uniformity_provably_fails_with_witness() {
    // The CBS separation, found mechanically: checking the SAME algorithm
    // against UNIFORM agreement must produce a counterexample — a process
    // that decides on a clean-looking view and crashes, while survivors
    // settle on a different value.
    let n = 3;
    let t = 2;
    let system = SystemConfig::new(n, t).unwrap();
    let options = ExploreConfig {
        model: ModelKind::Classic,
        max_rounds: t as u32 + 2,
        max_states: 10_000_000,
        round_bound: None, // isolate the agreement property
        max_crashes_per_round: None,
        symmetry: Symmetry::Off,
        spec: SpecMode::Uniform,
    };
    let report = explore(
        system,
        options,
        nonuniform_processes(n, t, &proposals(n)),
        proposals(n),
    )
    .unwrap();
    assert!(report.root.violating, "uniformity must fail somewhere");
    let witness = report.witness.expect("counterexample");
    assert!(
        witness
            .violations
            .iter()
            .any(|v| matches!(v, SpecViolation::UniformAgreement { .. })),
        "the failure is specifically uniform agreement: {:?}",
        witness.violations
    );
    // And the deviating decider is faulty in the witness schedule (plain
    // agreement among correct processes still holds).
    assert!(
        !witness
            .violations
            .iter()
            .any(|v| matches!(v, SpecViolation::Agreement { .. })),
        "correct processes never disagree: {:?}",
        witness.violations
    );
}
