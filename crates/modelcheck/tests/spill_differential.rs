//! Differential suite for the two-tier (RAM + disk) memo: exploring with
//! a spilling memo (`hot_capacity = 16`, far below the distinct-state
//! count of every non-trivial system here) must produce reports identical
//! to the all-RAM engine in every aggregate, for `n ≤ 5`, both model
//! kinds, and both the serial and the work-sharing parallel engine
//! (threads 1 and 4) — the bit-identical spill-vs-no-spill claim of the
//! explorer module docs.
//!
//! Spilling runs twice per system: once into an explicit caller-provided
//! root (the system temp dir) and once into the automatic temp dir, which
//! also exercises the spill-directory lifecycle under concurrent
//! explorations.

use twostep_baselines::floodset_processes;
use twostep_core::crw_processes;
use twostep_model::{SystemConfig, WideValue};
use twostep_modelcheck::{
    explore_with, ExploreConfig, ExploreOptions, ExploreReport, MemoConfig, RoundBound, SpecMode,
    Symmetry, WalkBudget,
};
use twostep_sim::ModelKind;

/// Largest `n` explored at every `t`; larger `n` only with `t ≤ 2` (same
/// budget policy as `parallel_differential.rs`).
const FULL_DEPTH_N: usize = 4;

const HOT_CAPACITY: usize = 16;

fn systems() -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for n in 2..=5usize {
        for t in 1..n {
            if n <= FULL_DEPTH_N || t <= 2 {
                out.push((n, t));
            }
        }
    }
    out
}

fn assert_identical<O: std::fmt::Debug + Eq>(
    ram: &ExploreReport<O>,
    spilled: &ExploreReport<O>,
    label: &str,
) {
    assert_eq!(ram.root, spilled.root, "{label}: root summary");
    assert_eq!(
        ram.distinct_states, spilled.distinct_states,
        "{label}: distinct states"
    );
    assert_eq!(
        ram.bivalency_by_round, spilled.bivalency_by_round,
        "{label}: bivalency census"
    );
}

fn spill_configs() -> Vec<(&'static str, MemoConfig)> {
    vec![
        ("temp-dir", MemoConfig::spill(HOT_CAPACITY)),
        (
            "explicit-dir",
            MemoConfig::spill_to(HOT_CAPACITY, std::env::temp_dir()),
        ),
    ]
}

#[test]
fn extended_model_crw_spill_equals_ram() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
        let config = ExploreConfig::for_crw(&system);
        let ram = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            crw_processes(&system, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for threads in [1usize, 4] {
            for (dir_label, memo) in spill_configs() {
                let spilled = explore_with(
                    system,
                    config,
                    ExploreOptions {
                        threads,
                        shards: 8,
                        memo,
                        donate_depth: None,
                        cache: None,
                        budget: WalkBudget::unlimited(),
                        checkpoint: None,
                    },
                    crw_processes(&system, &proposals),
                    proposals.clone(),
                )
                .unwrap();
                assert_identical(
                    &ram,
                    &spilled,
                    &format!("extended crw n={n} t={t} threads={threads} {dir_label}"),
                );
            }
        }
    }
}

#[test]
fn classic_model_floodset_spill_equals_ram() {
    for (n, t) in systems() {
        let system = SystemConfig::new(n, t).unwrap();
        let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
        let config = ExploreConfig {
            model: ModelKind::Classic,
            max_rounds: t as u32 + 2,
            max_states: 10_000_000,
            round_bound: Some(RoundBound::Fixed(t as u32 + 1)),
            spec: SpecMode::Uniform,
            max_crashes_per_round: None,
            symmetry: Symmetry::Off,
        };
        let ram = explore_with(
            system,
            config,
            ExploreOptions::serial(),
            floodset_processes(n, t, &proposals),
            proposals.clone(),
        )
        .unwrap();
        for threads in [1usize, 4] {
            let spilled = explore_with(
                system,
                config,
                ExploreOptions {
                    threads,
                    shards: 8,
                    memo: MemoConfig::spill(HOT_CAPACITY),
                    donate_depth: None,
                    cache: None,
                    budget: WalkBudget::unlimited(),
                    checkpoint: None,
                },
                floodset_processes(n, t, &proposals),
                proposals.clone(),
            )
            .unwrap();
            assert_identical(
                &ram,
                &spilled,
                &format!("classic floodset n={n} t={t} threads={threads}"),
            );
        }
    }
}

/// The acceptance shape from the roadmap: a hot capacity orders of
/// magnitude below the distinct-state count completes (no `StateLimit`),
/// proving `max_states` now budgets disk-backed distinct states, not
/// resident RAM.
#[test]
fn hot_capacity_far_below_state_count_completes() {
    let (n, t) = (5usize, 4usize);
    let system = SystemConfig::new(n, t).unwrap();
    let proposals: Vec<WideValue> = (0..n).map(|i| WideValue::new(1, (i % 2) as u64)).collect();
    let report = explore_with(
        system,
        ExploreConfig::for_crw(&system),
        ExploreOptions::with_threads(2).with_memo(MemoConfig::spill(HOT_CAPACITY)),
        crw_processes(&system, &proposals),
        proposals,
    )
    .expect("spilling exploration must not trip StateLimit");
    assert!(
        report.distinct_states > 20 * HOT_CAPACITY,
        "distinct states ({}) must dwarf hot_capacity ({HOT_CAPACITY})",
        report.distinct_states
    );
    assert!(!report.root.violating);
    assert_eq!(report.root.worst_round_by_f[t], Some(t as u32 + 1));
}
