//! Property tests for the spill tier's binary `Summary` encoding:
//! encode → decode must be the identity across generated census shapes,
//! valency sets, and value types (`u64` and width-carrying `WideValue`).

use proptest::prelude::*;
use twostep_model::WideValue;
use twostep_modelcheck::{decode_summary, encode_summary, SpillCodec, Summary};

fn option_round() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![
        Just(None),
        (0u32..100_000).prop_map(Some),
        Just(Some(u32::MAX)),
    ]
}

fn roundtrip<O: SpillCodec + Clone + Eq + std::fmt::Debug>(
    summary: &Summary<O>,
) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    encode_summary(summary, &mut buf);
    let back: Summary<O> = match decode_summary(&buf) {
        Some(back) => back,
        None => return Err(TestCaseError::fail("encoding failed to decode")),
    };
    prop_assert_eq!(&back, summary);
    Ok(())
}

proptest! {
    #[test]
    fn u64_summaries_roundtrip(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=9),
        decided in prop::collection::vec(any::<u64>(), 0..=6),
        violating in any::<bool>(),
    ) {
        roundtrip(&Summary { terminals, worst_round_by_f: rounds, decided, violating })?;
    }

    #[test]
    fn wide_value_summaries_roundtrip(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=9),
        raw in prop::collection::vec((1u32..=130, any::<u64>()), 0..=6),
        violating in any::<bool>(),
    ) {
        // Valency sets carry *distinct* values, but the codec must not
        // care; feed it whatever the generator produced.
        let decided: Vec<WideValue> =
            raw.into_iter().map(|(bits, ident)| WideValue::new(bits, ident)).collect();
        roundtrip(&Summary { terminals, worst_round_by_f: rounds, decided, violating })?;
    }

    #[test]
    fn truncation_never_decodes(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=5),
        decided in prop::collection::vec(any::<u64>(), 0..=4),
        violating in any::<bool>(),
        cut in any::<u64>(),
    ) {
        let summary = Summary { terminals, worst_round_by_f: rounds, decided, violating };
        let mut buf = Vec::new();
        encode_summary(&summary, &mut buf);
        // Any strict prefix must be rejected, as must trailing garbage.
        let cut = (cut as usize) % buf.len();
        prop_assert!(decode_summary::<u64>(&buf[..cut]).is_none());
        buf.push(0xAB);
        prop_assert!(decode_summary::<u64>(&buf).is_none());
    }
}
