//! Property tests for the spill tier's binary `Summary` encoding:
//! encode → decode must be the identity across generated census shapes,
//! valency sets, and value types (`u64` and width-carrying `WideValue`);
//! the segment-record compressor (`twostep_model::codec::{compress,
//! decompress}`) must be the identity around it, and corrupt or
//! truncated compressed payloads must never panic, never allocate past
//! the caller's bound, and never round-trip to a *different* summary.

use proptest::prelude::*;
use twostep_model::codec::{compress, decompress};
use twostep_model::WideValue;
use twostep_modelcheck::{decode_summary, encode_summary, SpillCodec, Summary};

fn option_round() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![
        Just(None),
        (0u32..100_000).prop_map(Some),
        Just(Some(u32::MAX)),
    ]
}

fn roundtrip<O: SpillCodec + Clone + Eq + std::fmt::Debug>(
    summary: &Summary<O>,
) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    encode_summary(summary, &mut buf);
    let back: Summary<O> = match decode_summary(&buf) {
        Some(back) => back,
        None => return Err(TestCaseError::fail("encoding failed to decode")),
    };
    prop_assert_eq!(&back, summary);
    Ok(())
}

proptest! {
    #[test]
    fn u64_summaries_roundtrip(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=9),
        decided in prop::collection::vec(any::<u64>(), 0..=6),
        violating in any::<bool>(),
    ) {
        roundtrip(&Summary { terminals, worst_round_by_f: rounds, decided, violating })?;
    }

    #[test]
    fn wide_value_summaries_roundtrip(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=9),
        raw in prop::collection::vec((1u32..=130, any::<u64>()), 0..=6),
        violating in any::<bool>(),
    ) {
        // Valency sets carry *distinct* values, but the codec must not
        // care; feed it whatever the generator produced.
        let decided: Vec<WideValue> =
            raw.into_iter().map(|(bits, ident)| WideValue::new(bits, ident)).collect();
        roundtrip(&Summary { terminals, worst_round_by_f: rounds, decided, violating })?;
    }

    #[test]
    fn truncation_never_decodes(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=5),
        decided in prop::collection::vec(any::<u64>(), 0..=4),
        violating in any::<bool>(),
        cut in any::<u64>(),
    ) {
        let summary = Summary { terminals, worst_round_by_f: rounds, decided, violating };
        let mut buf = Vec::new();
        encode_summary(&summary, &mut buf);
        // Any strict prefix must be rejected, as must trailing garbage.
        let cut = (cut as usize) % buf.len();
        prop_assert!(decode_summary::<u64>(&buf[..cut]).is_none());
        buf.push(0xAB);
        prop_assert!(decode_summary::<u64>(&buf).is_none());
    }

    /// Compressed `Summary` records (the on-disk form since segment
    /// format v3): compress → decompress → decode is the identity.
    #[test]
    fn compressed_summaries_roundtrip(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=9),
        raw in prop::collection::vec((1u32..=130, any::<u64>()), 0..=6),
        violating in any::<bool>(),
    ) {
        let decided: Vec<WideValue> =
            raw.into_iter().map(|(bits, ident)| WideValue::new(bits, ident)).collect();
        let summary = Summary { terminals, worst_round_by_f: rounds, decided, violating };
        let mut buf = Vec::new();
        encode_summary(&summary, &mut buf);
        let packed = compress(&buf);
        let unpacked = match decompress(&packed, buf.len().max(1)) {
            Some(bytes) => bytes,
            None => return Err(TestCaseError::fail("compressed record failed to decompress")),
        };
        prop_assert_eq!(&unpacked, &buf, "decompression inverts compression");
        let back: Summary<WideValue> = match decode_summary(&unpacked) {
            Some(back) => back,
            None => return Err(TestCaseError::fail("decompressed record failed to decode")),
        };
        prop_assert_eq!(&back, &summary);
    }

    /// Corrupt or truncated compressed payloads: `decompress` either
    /// rejects them (`None`) or yields bytes that are *not* the original
    /// record — never a panic, never an allocation past the bound.  (At
    /// the segment-file layer the per-record CRC catches these first and
    /// classifies them as `SpillError::Corrupt`; this pins the layer
    /// below, for payloads whose CRC was forged or also damaged.)
    #[test]
    fn mangled_compressed_summaries_never_panic(
        terminals in any::<u64>(),
        rounds in prop::collection::vec(option_round(), 0..=5),
        decided in prop::collection::vec(any::<u64>(), 0..=4),
        violating in any::<bool>(),
        flip_at in any::<u64>(),
        flip_mask in 1u8..=255,
        cut in any::<u64>(),
    ) {
        let summary = Summary { terminals, worst_round_by_f: rounds, decided, violating };
        let mut buf = Vec::new();
        encode_summary(&summary, &mut buf);
        let packed = compress(&buf);

        // Truncation: any strict prefix must decompress to None.
        let cut = (cut as usize) % packed.len();
        prop_assert!(
            decompress(&packed[..cut], buf.len()).is_none(),
            "a truncated compressed payload must not decompress"
        );

        // Bit rot: must not panic, and any output respects the caller's
        // allocation bound.  (Equality with the original is possible for
        // a lucky flip — e.g. a match distance redirected into an equal
        // byte run — which is exactly why the segment layer CRCs the
        // stored payload and classifies mismatches as Corrupt before
        // decompression is attempted.)
        let mut damaged = packed.clone();
        let position = (flip_at as usize) % damaged.len();
        damaged[position] ^= flip_mask;
        if let Some(bytes) = decompress(&damaged, buf.len()) {
            prop_assert!(
                bytes.len() <= buf.len(),
                "decompression of damaged input exceeded the caller's bound"
            );
        }
    }
}
